//! The paper's §4.3 count() extension: "if we change the scalar aggregate
//! ... from max() to count(), we can further control how many reads by
//! readerX should be observed before taking an action."
//!
//! A single forklift (readerX) ping might be a stray reflection; this
//! application only treats a read as spurious when at least TWO forklift
//! reads follow it within five minutes.
//!
//! Run with: `cargo run --example count_extension`

use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::DeferredCleansingSystem;
use std::sync::Arc;

fn main() -> Result<()> {
    let catalog = Arc::new(Catalog::new());
    let schema = schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("reader", DataType::Str),
    ]));
    let rows: &[(&str, i64, &str)] = &[
        // e1: two forklift reads follow within 5 min -> the t=0 read goes.
        ("e1", 0, "dock"),
        ("e1", 100, "readerX"),
        ("e1", 200, "readerX"),
        // e2: only one forklift read follows -> kept under the >=2 rule,
        // would be deleted under the plain existential rule.
        ("e2", 0, "dock"),
        ("e2", 100, "readerX"),
    ];
    let data: Vec<Vec<Value>> = rows
        .iter()
        .map(|(e, t, r)| vec![Value::str(*e), Value::Int(*t), Value::str(*r)])
        .collect();
    catalog.register(Table::new("caser", Batch::from_rows(schema, &data)?));
    let system = DeferredCleansingSystem::with_catalog(catalog);

    // The plain existential rule (paper Example 2)...
    system.define_rule(
        "strict",
        "DEFINE reader ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
         WHERE B.reader = 'readerX' and B.rtime - A.rtime < 5 mins \
         ACTION DELETE A",
    )?;
    // ... and the count-thresholded variant (§4.3 extension).
    system.define_rule(
        "lenient",
        "DEFINE reader2 ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
         WHERE count(B.reader = 'readerX') >= 2 and B.rtime - A.rtime < 5 mins \
         ACTION DELETE A",
    )?;

    let sql = "select epc, rtime, reader from caser order by epc, rtime";
    let strict = system.query("strict", sql)?;
    let lenient = system.query("lenient", sql)?;
    println!(
        "-- strict (any readerX read) --\n{}",
        strict.to_pretty_string(10)
    );
    println!(
        "-- lenient (count(readerX) >= 2) --\n{}",
        lenient.to_pretty_string(10)
    );

    // strict deletes both dock reads — and e1's first readerX read too,
    // since another readerX read follows it; lenient only deletes e1's dock
    // read (the single anchor with two readerX reads after it).
    assert_eq!(strict.num_rows(), 2);
    assert_eq!(lenient.num_rows(), 4);

    // The extension composes with the rewrites: the inner predicate feeds
    // the context condition, so an expanded rewrite still exists.
    let explain = system.explain(
        "lenient",
        "select epc from caser where rtime <= 50",
        deferred_cleansing::core::Strategy::Expanded,
    )?;
    println!("expanded rewrite for the thresholded rule:\n{explain}");
    assert!(explain.contains("expanded condition"));
    println!("ok: one read is noise, two reads are a forklift.");
    Ok(())
}
