//! Dwell analysis (the paper's q1) over generated supply-chain data.
//!
//! Generates an RFIDGen database with injected anomalies, registers the
//! reader rule, and runs the dwell-time analysis — average time shipments
//! spend between consecutive locations — comparing the dirty baseline with
//! the expanded and join-back rewrites.
//!
//! Run with: `cargo run --release --example dwell_analysis`

use deferred_cleansing::core::Strategy;
use deferred_cleansing::relational::table::Catalog;
use deferred_cleansing::rfidgen::{generate_into, GenConfig};
use deferred_cleansing::DeferredCleansingSystem;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Arc::new(Catalog::new());
    let cfg = GenConfig {
        scale: 10,
        anomaly_pct: 10.0,
        seed: 42,
        ..GenConfig::default()
    };
    let ds = generate_into(&catalog, cfg)?;
    println!(
        "generated {} case reads ({} pallets), anomalies: {:?}",
        ds.case_reads, ds.config.scale, ds.counts
    );

    let system = DeferredCleansingSystem::with_catalog(catalog);
    // The reader rule: reads recorded shortly before a forklift (readerX)
    // read are spurious — the forklift carried the case past other readers.
    for rule in ds.benchmark_rules(1) {
        system.define_rule("dwell", &rule)?;
    }

    // q1 at 10% selectivity.
    let t1 = ds.rtime_quantile(0.10);
    let q1 = ds.q1(t1);
    println!("\nq1 (T1 = {t1}):\n{q1}\n");

    let (dirty, dirty_report) = system.query_dirty_with_report(&q1)?;
    println!(
        "dirty     : {:>6} dwell pairs in {:>6.1?} (rows sorted: {})",
        dirty.num_rows(),
        dirty_report.elapsed,
        dirty_report.stats.rows_sorted
    );

    for strategy in [Strategy::Expanded, Strategy::JoinBack, Strategy::Naive] {
        let (clean, report) = system.query_with_strategy("dwell", &q1, strategy)?;
        println!(
            "{:<10}: {:>6} dwell pairs in {:>6.1?} (rows sorted: {}, chosen: {})",
            format!("{strategy:?}"),
            clean.num_rows(),
            report.elapsed,
            report.stats.rows_sorted,
            report.chosen
        );
    }

    // Show the order-sharing effect: the expanded plan computes the
    // cleansing windows AND the dwell windows after a single sort.
    let explain = system.explain("dwell", &q1, Strategy::Expanded)?;
    println!("\nexpanded plan (note the 'order shared' windows):\n{explain}");
    Ok(())
}
