//! Site analysis (the paper's q2): a star-style analytical query joining
//! the reads table with four reference tables, under a three-rule cleansing
//! chain — and the expanded-vs-join-back tradeoff as selectivity changes.
//!
//! Run with: `cargo run --release --example site_analysis`

use deferred_cleansing::core::Strategy;
use deferred_cleansing::relational::table::Catalog;
use deferred_cleansing::rfidgen::{generate_into, GenConfig};
use deferred_cleansing::DeferredCleansingSystem;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Arc::new(Catalog::new());
    let ds = generate_into(
        &catalog,
        GenConfig {
            scale: 15,
            anomaly_pct: 10.0,
            seed: 7,
            ..GenConfig::default()
        },
    )?;
    let system = DeferredCleansingSystem::with_catalog(catalog);
    // Three rules: reader, duplicate, replacing (the paper's Fig. 9 set at
    // the last point where the expanded rewrite is still feasible).
    for rule in ds.benchmark_rules(3) {
        system.define_rule("site", &rule)?;
    }

    for sel in [0.05, 0.40] {
        let t2 = ds.rtime_quantile(1.0 - sel);
        let q2 = ds.q2(t2, 2);
        println!("\n== q2 at {:.0}% selectivity (T2 = {t2}) ==", sel * 100.0);
        let (result, auto) = system.query_with_strategy("site", &q2, Strategy::Auto)?;
        println!(
            "cost-based choice: {} ({} manufacturer groups, {:?})",
            auto.chosen,
            result.num_rows(),
            auto.elapsed
        );
        for c in &auto.candidates {
            println!("  candidate {:<35} est. cost {:>12.0}", c.label, c.cost);
        }
        for strategy in [Strategy::Expanded, Strategy::JoinBack] {
            match system.query_with_strategy("site", &q2, strategy) {
                Ok((batch, report)) => {
                    assert_eq!(batch.sorted_rows(), result.sorted_rows());
                    println!(
                        "{:<10}: {:?} (rows sorted {}, scanned {})",
                        format!("{strategy:?}"),
                        report.elapsed,
                        report.stats.rows_sorted,
                        report.stats.rows_scanned
                    );
                }
                Err(e) => println!("{strategy:?}: infeasible ({e})"),
            }
        }
    }

    // Show a result sample.
    let t2 = ds.rtime_quantile(0.90);
    let (batch, _) = system.query_with_strategy("site", &ds.q2(t2, 2), Strategy::Auto)?;
    println!("\nsample output:\n{}", batch.to_pretty_string(8));
    Ok(())
}
