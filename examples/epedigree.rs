//! E-pedigree: the paper's motivating case for *deferred* cleansing.
//!
//! Pharmaceutical pedigree laws require preserving every raw tracking
//! record, which rules out eager (destructive) cleansing. With deferred
//! cleansing the raw reads stay untouched while different applications see
//! differently-cleansed views of the same table:
//!
//! * `compliance` must see every read, including back-and-forth cycles;
//! * `logistics` wants cycles collapsed and forklift cross-reads removed;
//! * `shelf-planning` wants to see the cycles (they indicate shelf-space
//!   churn) but not duplicate reads.
//!
//! Run with: `cargo run --example epedigree`

use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::DeferredCleansingSystem;
use std::sync::Arc;

fn main() -> Result<()> {
    let catalog = Arc::new(Catalog::new());
    let schema = schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
        Field::new("reader", DataType::Str),
    ]));
    // A lot of drug packages moving between back-room and store floor, with
    // a duplicate read and a forklift cross-read mixed in.
    let rows: &[(&str, i64, &str, &str)] = &[
        ("drug1", 0, "backroom", "r1"),
        ("drug1", 60, "backroom", "r1"), // duplicate read
        ("drug1", 3600, "floor", "r2"),
        ("drug1", 7200, "backroom", "r1"), // cycle: floor -> backroom -> floor
        ("drug1", 10800, "floor", "r2"),
        ("drug2", 0, "dock", "r3"), // cross-read while on forklift
        ("drug2", 120, "vault", "readerX"),
    ];
    let data: Vec<Vec<Value>> = rows
        .iter()
        .map(|(e, t, l, r)| {
            vec![
                Value::str(*e),
                Value::Int(*t),
                Value::str(*l),
                Value::str(*r),
            ]
        })
        .collect();
    catalog.register(Table::new("caser", Batch::from_rows(schema, &data)?));

    let system = DeferredCleansingSystem::with_catalog(catalog);

    // logistics: remove duplicates, forklift cross-reads, and cycles.
    for rule in [
        "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
         WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B",
        "DEFINE forklift ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
         WHERE B.reader = 'readerX' and B.rtime - A.rtime < 5 mins ACTION DELETE A",
        "DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B, C) \
         WHERE A.biz_loc = C.biz_loc and A.biz_loc != B.biz_loc ACTION DELETE B",
    ] {
        system.define_rule("logistics", rule)?;
    }
    // shelf-planning: only duplicates are noise; cycles are signal.
    system.define_rule(
        "shelf-planning",
        "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
         WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B",
    )?;

    let sql = "select epc, rtime, biz_loc from caser order by epc, rtime";

    // compliance has no rules: the full, legally mandated pedigree.
    let pedigree = system.query("compliance", sql)?;
    println!(
        "-- compliance (raw pedigree, {} rows) --\n{}",
        pedigree.num_rows(),
        pedigree.to_pretty_string(20)
    );

    let logistics = system.query("logistics", sql)?;
    println!(
        "-- logistics ({} rows) --\n{}",
        logistics.num_rows(),
        logistics.to_pretty_string(20)
    );

    let shelf = system.query("shelf-planning", sql)?;
    println!(
        "-- shelf-planning ({} rows) --\n{}",
        shelf.num_rows(),
        shelf.to_pretty_string(20)
    );

    // The raw table is never modified: compliance always sees everything.
    assert_eq!(pedigree.num_rows(), 7);
    assert!(logistics.num_rows() < shelf.num_rows());
    assert!(shelf.num_rows() < pedigree.num_rows());
    println!("ok: three applications, three views, one untouched pedigree table.");
    Ok(())
}
