//! Quickstart: deferred cleansing in five minutes.
//!
//! Build a tiny RFID reads table, define one cleansing rule in extended
//! SQL-TS, and watch the same SQL return different answers on dirty vs.
//! cleansed data — without the stored data ever changing.
//!
//! Run with: `cargo run --example quickstart`

use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::DeferredCleansingSystem;
use std::sync::Arc;

fn main() -> Result<()> {
    // 1. A reads table: tag e1 is read twice at the shelf (a duplicate
    //    read — the reader saw it twice within a minute), then at checkout.
    let catalog = Arc::new(Catalog::new());
    let schema = schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
    ]));
    let reads = Batch::from_rows(
        schema,
        &[
            vec![Value::str("e1"), Value::Int(1000), Value::str("shelf")],
            vec![Value::str("e1"), Value::Int(1060), Value::str("shelf")], // dup!
            vec![Value::str("e1"), Value::Int(5000), Value::str("checkout")],
            vec![Value::str("e2"), Value::Int(1200), Value::str("shelf")],
        ],
    )?;
    let mut table = Table::new("caser", reads);
    table.create_index("rtime")?;
    table.create_index("epc")?;
    catalog.register(table);

    let system = DeferredCleansingSystem::with_catalog(catalog);

    // 2. The application declares what a duplicate is — two adjacent reads
    //    of the same tag at the same location within five minutes — and how
    //    to fix it: keep the first, delete the second.
    system.define_rule(
        "shelf-analytics",
        "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime \
         AS (A, B) \
         WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins \
         ACTION DELETE B",
    )?;

    // 3. Same SQL, two views of the data.
    let sql = "select epc, count(*) as reads from caser group by epc order by epc";

    let dirty = system.query_dirty(sql)?;
    println!(
        "-- dirty (what is stored) --\n{}",
        dirty.to_pretty_string(10)
    );

    let (clean, report) = system.query_with_strategy(
        "shelf-analytics",
        sql,
        deferred_cleansing::core::Strategy::Auto,
    )?;
    println!(
        "-- cleansed (what shelf-analytics sees) --\n{}",
        clean.to_pretty_string(10)
    );

    // 4. The rewrite machinery at work.
    println!("rewrite chosen : {}", report.chosen);
    for c in &report.candidates {
        println!(
            "  candidate    : {} (estimated cost {:.0})",
            c.label, c.cost
        );
    }
    println!("executed plan  :\n{}", report.plan);

    assert_eq!(dirty.row(0)[1], Value::Int(3)); // e1: 3 raw reads
    assert_eq!(clean.row(0)[1], Value::Int(2)); // e1: duplicate removed
    println!("ok: the duplicate was removed at query time; the table is unchanged.");
    Ok(())
}
