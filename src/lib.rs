//! # deferred-cleansing
//!
//! A Rust reproduction of *"A Deferred Cleansing Method for RFID Data
//! Analytics"* (VLDB 2006): application-specific, query-time cleansing of
//! RFID read data through declarative sequence rules and automatic query
//! rewriting.
//!
//! This root crate re-exports the public API of the workspace crates:
//!
//! * [`relational`] — the in-memory DBMS substrate (SQL subset, SQL/OLAP
//!   window functions, indexes, optimizer, cost model),
//! * [`sqlts`] — the extended SQL-TS cleansing-rule language,
//! * [`rules`] — rule compilation to SQL/OLAP templates and Φ execution,
//! * [`rewrite`] — the expanded and join-back query rewrites,
//! * [`rfidgen`] — the RFIDGen synthetic workload generator,
//! * [`core`] — the [`core::DeferredCleansingSystem`] facade tying it all
//!   together,
//! * [`service`] — the concurrent snapshot query service
//!   ([`service::QueryService`]): worker pool over epoch-stamped catalog
//!   snapshots, live append ingest, deadlines and cancellation,
//! * [`log`] — the fault-injectable durable log primitives backing
//!   [`service::QueryService::start_durable`]: crash-safe appends,
//!   recovery, and `AS OF epoch` time travel.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use dc_core as core;
pub use dc_log as log;
pub use dc_relational as relational;
pub use dc_rewrite as rewrite;
pub use dc_rfidgen as rfidgen;
pub use dc_rules as rules;
pub use dc_service as service;
pub use dc_sqlts as sqlts;

pub use dc_core::DeferredCleansingSystem;
