//! SQL tokenizer.

use crate::error::{Error, Result};
use std::fmt;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (case preserved; comparison is case-insensitive).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Eof,
}

impl Token {
    /// Is this token the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("!="),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// Tokenize SQL text. Supports `--` line comments.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    let n = chars.len();
    let mut out = Vec::new();
    while i < n {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < n && chars[i + 1] == '-' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' if !(i + 1 < n
                && chars[i + 1].is_ascii_digit()
                && matches!(out.last(), Some(Token::Word(_)))) =>
            {
                // `.5` after a non-word starts a float; `a.b` is a dot.
                if i + 1 < n
                    && chars[i + 1].is_ascii_digit()
                    && !matches!(out.last(), Some(Token::Word(_)) | Some(Token::Int(_)))
                {
                    let (tok, next) = lex_number(&chars, i)?;
                    out.push(tok);
                    i = next;
                } else {
                    out.push(Token::Dot);
                    i += 1;
                }
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(Error::Parse(format!("unexpected '!' at offset {i}")));
                }
            }
            '<' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < n && chars[i + 1] == '>' {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= n {
                        return Err(Error::Parse("unterminated string literal".into()));
                    }
                    if chars[i] == '\'' {
                        if i + 1 < n && chars[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                out.push(Token::Str(s));
            }
            '"' => {
                // Quoted identifier.
                let mut s = String::new();
                i += 1;
                while i < n && chars[i] != '"' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= n {
                    return Err(Error::Parse("unterminated quoted identifier".into()));
                }
                i += 1;
                out.push(Token::Word(s));
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(&chars, i)?;
                out.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    i += 1;
                }
                out.push(Token::Word(s));
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character '{other}' at offset {i}"
                )))
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

fn lex_number(chars: &[char], mut i: usize) -> Result<(Token, usize)> {
    let start = i;
    let n = chars.len();
    while i < n && chars[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < n && chars[i] == '.' && i + 1 < n && chars[i + 1].is_ascii_digit() {
        is_float = true;
        i += 1;
        while i < n && chars[i].is_ascii_digit() {
            i += 1;
        }
    }
    let text: String = chars[start..i].iter().collect();
    if is_float {
        text.parse::<f64>()
            .map(|v| (Token::Float(v), i))
            .map_err(|e| Error::Parse(format!("bad float literal '{text}': {e}")))
    } else {
        text.parse::<i64>()
            .map(|v| (Token::Int(v), i))
            .map_err(|e| Error::Parse(format!("bad integer literal '{text}': {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("select a.b, 'it''s' from t where x >= 1.5 and y <> 2").unwrap();
        assert!(toks.contains(&Token::Word("select".into())));
        assert!(toks.contains(&Token::Str("it's".into())));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::NotEq));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("select 1 -- comment\n, 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("select".into()),
                Token::Int(1),
                Token::Comma,
                Token::Int(2),
                Token::Eof
            ]
        );
    }

    #[test]
    fn qualified_name_is_word_dot_word() {
        let toks = tokenize("a.b").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("a".into()),
                Token::Dot,
                Token::Word("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a ; b").is_err());
    }

    #[test]
    fn keyword_check_case_insensitive() {
        let toks = tokenize("SELECT").unwrap();
        assert!(toks[0].is_kw("select"));
    }

    #[test]
    fn negative_handled_as_minus() {
        let toks = tokenize("-5").unwrap();
        assert_eq!(toks, vec![Token::Minus, Token::Int(5), Token::Eof]);
    }
}
