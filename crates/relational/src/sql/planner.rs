//! SQL-to-plan translation.
//!
//! Clause order follows SQL semantics: FROM (comma joins resolved into an
//! equi-join tree) → WHERE → window functions → GROUP BY/aggregates →
//! SELECT projection → DISTINCT → ORDER BY → LIMIT.

use super::ast::{AstExpr, Query, Select, SelectItem};
use crate::agg::{AggExpr, AggFunc};
use crate::error::{Error, Result};
use crate::expr::{conjoin, split_conjuncts, BinaryOp, ColumnRef, Expr};
use crate::plan::LogicalPlan;
use crate::schema::{Schema, SchemaRef};
use crate::sort::SortKey;
use crate::table::Catalog;
use crate::window::{Frame, FrameBound, WindowExpr, WindowFuncKind};
use std::collections::HashMap;

/// Plan a parsed query against a catalog.
pub fn plan_query(query: &Query, catalog: &Catalog) -> Result<LogicalPlan> {
    reject_as_of(query)?;
    let mut ctes: HashMap<String, LogicalPlan> = HashMap::new();
    for (name, q) in &query.ctes {
        let plan = plan_query_with_ctes(q, catalog, &ctes)?;
        ctes.insert(name.clone(), plan);
    }
    plan_select(&query.body, catalog, &ctes)
}

/// `AS OF EPOCH` never reaches the planner: the durable query service
/// resolves it by materializing a historical snapshot and stripping the
/// clause. Anywhere else (direct engine execution, CTE bodies) it would
/// silently run against current data, so fail loudly instead.
fn reject_as_of(query: &Query) -> Result<()> {
    if let Some(epoch) = query.as_of {
        return Err(Error::Plan(format!(
            "as of epoch {epoch} is only supported on the top-level query \
             of a durable query service"
        )));
    }
    for (_, q) in &query.ctes {
        reject_as_of(q)?;
    }
    Ok(())
}

fn plan_query_with_ctes(
    query: &Query,
    catalog: &Catalog,
    outer_ctes: &HashMap<String, LogicalPlan>,
) -> Result<LogicalPlan> {
    reject_as_of(query)?;
    let mut ctes = outer_ctes.clone();
    for (name, q) in &query.ctes {
        let plan = plan_query_with_ctes(q, catalog, &ctes)?;
        ctes.insert(name.clone(), plan);
    }
    plan_select(&query.body, catalog, &ctes)
}

/// Convert a scalar AST expression (no aggregates, no windows) to an [`Expr`].
pub fn to_scalar_expr(ast: &AstExpr) -> Result<Expr> {
    match ast {
        AstExpr::Column(q, n) => Ok(Expr::Column(ColumnRef {
            qualifier: q.clone(),
            name: n.clone(),
        })),
        AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
        AstExpr::Binary { left, op, right } => Ok(Expr::Binary {
            left: Box::new(to_scalar_expr(left)?),
            op: *op,
            right: Box::new(to_scalar_expr(right)?),
        }),
        AstExpr::Not(e) => Ok(Expr::Not(Box::new(to_scalar_expr(e)?))),
        AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(to_scalar_expr(expr)?),
            negated: *negated,
        }),
        AstExpr::InList {
            expr,
            list,
            negated,
        } => Ok(Expr::InList {
            expr: Box::new(to_scalar_expr(expr)?),
            list: list.clone(),
            negated: *negated,
        }),
        AstExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let e = to_scalar_expr(expr)?;
            let range = e
                .clone()
                .gt_eq(to_scalar_expr(low)?)
                .and(e.lt_eq(to_scalar_expr(high)?));
            Ok(if *negated {
                Expr::Not(Box::new(range))
            } else {
                range
            })
        }
        AstExpr::Case {
            branches,
            else_expr,
        } => Ok(Expr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| Ok((to_scalar_expr(c)?, to_scalar_expr(r)?)))
                .collect::<Result<_>>()?,
            else_expr: else_expr
                .as_ref()
                .map(|e| to_scalar_expr(e).map(Box::new))
                .transpose()?,
        }),
        AstExpr::Function { name, .. } => Err(Error::Plan(format!(
            "function '{name}' is not valid in a scalar context"
        ))),
    }
}

fn agg_func_kind(name: &str) -> Option<&'static str> {
    match name {
        "count" | "sum" | "avg" | "min" | "max" => Some("agg"),
        _ => None,
    }
}

fn window_func_kind(name: &str) -> Result<WindowFuncKind> {
    Ok(match name {
        "max" => WindowFuncKind::Max,
        "min" => WindowFuncKind::Min,
        "sum" => WindowFuncKind::Sum,
        "count" => WindowFuncKind::Count,
        "avg" => WindowFuncKind::Avg,
        other => {
            return Err(Error::Plan(format!(
                "unsupported window function '{other}'"
            )))
        }
    })
}

/// Planned window group: one Window node per distinct (partition, order).
struct WindowGroup {
    partition_by: Vec<Expr>,
    order_by: Vec<SortKey>,
    exprs: Vec<WindowExpr>,
}

/// Walk an AST expression, extracting windowed function calls into groups
/// and replacing them with references to their generated output columns.
fn extract_windows(
    ast: &AstExpr,
    groups: &mut Vec<WindowGroup>,
    counter: &mut usize,
) -> Result<AstExpr> {
    match ast {
        AstExpr::Function {
            name,
            args,
            distinct,
            over: Some(spec),
        } => {
            if *distinct {
                return Err(Error::Plan(
                    "DISTINCT in window functions unsupported".into(),
                ));
            }
            let func = window_func_kind(name)?;
            let arg = match args {
                None => None, // count(*)
                Some(a) if a.len() == 1 => Some(to_scalar_expr(&a[0])?),
                Some(a) if a.is_empty() => None,
                Some(_) => {
                    return Err(Error::Plan(format!(
                        "window function '{name}' takes one argument"
                    )))
                }
            };
            if arg.is_none() && func != WindowFuncKind::Count {
                return Err(Error::Plan(format!("{name}(*) is not a valid window call")));
            }
            let partition_by: Vec<Expr> = spec
                .partition_by
                .iter()
                .map(to_scalar_expr)
                .collect::<Result<_>>()?;
            let order_by: Vec<SortKey> = spec
                .order_by
                .iter()
                .map(|(e, asc)| {
                    to_scalar_expr(e).map(|expr| {
                        if *asc {
                            SortKey::asc(expr)
                        } else {
                            SortKey::desc(expr)
                        }
                    })
                })
                .collect::<Result<_>>()?;
            let frame = match &spec.frame {
                Some(f) => Frame {
                    units: f.units,
                    start: f.start,
                    end: f.end,
                },
                // SQL default frame.
                None => Frame::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow),
            };
            let alias = format!("__w{}", *counter);
            *counter += 1;
            let wexpr = WindowExpr {
                func,
                arg,
                frame,
                alias: alias.clone(),
            };
            // Find a group with the same (partition, order) — that group
            // shares one sort (the paper's order-sharing within a query).
            match groups
                .iter_mut()
                .find(|g| g.partition_by == partition_by && g.order_by == order_by)
            {
                Some(g) => g.exprs.push(wexpr),
                None => groups.push(WindowGroup {
                    partition_by,
                    order_by,
                    exprs: vec![wexpr],
                }),
            }
            Ok(AstExpr::Column(None, alias))
        }
        AstExpr::Binary { left, op, right } => Ok(AstExpr::Binary {
            left: Box::new(extract_windows(left, groups, counter)?),
            op: *op,
            right: Box::new(extract_windows(right, groups, counter)?),
        }),
        AstExpr::Not(e) => Ok(AstExpr::Not(Box::new(extract_windows(e, groups, counter)?))),
        AstExpr::IsNull { expr, negated } => Ok(AstExpr::IsNull {
            expr: Box::new(extract_windows(expr, groups, counter)?),
            negated: *negated,
        }),
        AstExpr::Case {
            branches,
            else_expr,
        } => Ok(AstExpr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| {
                    Ok((
                        extract_windows(c, groups, counter)?,
                        extract_windows(r, groups, counter)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_expr: else_expr
                .as_ref()
                .map(|e| extract_windows(e, groups, counter).map(Box::new))
                .transpose()?,
        }),
        other => Ok(other.clone()),
    }
}

/// Walk an AST expression, extracting aggregate calls (no OVER) into `aggs`
/// and replacing them with references to generated columns.
fn extract_aggregates(
    ast: &AstExpr,
    aggs: &mut Vec<AggExpr>,
    counter: &mut usize,
) -> Result<AstExpr> {
    match ast {
        AstExpr::Function {
            name,
            args,
            distinct,
            over: None,
        } if agg_func_kind(name).is_some() => {
            let alias = format!("__a{}", *counter);
            *counter += 1;
            let func = match (name.as_str(), args, distinct) {
                ("count", None, false) => AggFunc::CountStar,
                ("count", Some(a), false) if a.len() == 1 => AggFunc::Count(to_scalar_expr(&a[0])?),
                ("count", Some(a), true) if a.len() == 1 => {
                    AggFunc::CountDistinct(to_scalar_expr(&a[0])?)
                }
                ("sum", Some(a), false) if a.len() == 1 => AggFunc::Sum(to_scalar_expr(&a[0])?),
                ("avg", Some(a), false) if a.len() == 1 => AggFunc::Avg(to_scalar_expr(&a[0])?),
                ("min", Some(a), false) if a.len() == 1 => AggFunc::Min(to_scalar_expr(&a[0])?),
                ("max", Some(a), false) if a.len() == 1 => AggFunc::Max(to_scalar_expr(&a[0])?),
                _ => return Err(Error::Plan(format!("unsupported aggregate call '{name}'"))),
            };
            aggs.push(AggExpr {
                func,
                alias: alias.clone(),
            });
            Ok(AstExpr::Column(None, alias))
        }
        AstExpr::Binary { left, op, right } => Ok(AstExpr::Binary {
            left: Box::new(extract_aggregates(left, aggs, counter)?),
            op: *op,
            right: Box::new(extract_aggregates(right, aggs, counter)?),
        }),
        AstExpr::Case {
            branches,
            else_expr,
        } => Ok(AstExpr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| {
                    Ok((
                        extract_aggregates(c, aggs, counter)?,
                        extract_aggregates(r, aggs, counter)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_expr: else_expr
                .as_ref()
                .map(|e| extract_aggregates(e, aggs, counter).map(Box::new))
                .transpose()?,
        }),
        other => Ok(other.clone()),
    }
}

fn contains_function(ast: &AstExpr) -> bool {
    match ast {
        AstExpr::Function { .. } => true,
        AstExpr::Binary { left, right, .. } => contains_function(left) || contains_function(right),
        AstExpr::Not(e) => contains_function(e),
        AstExpr::IsNull { expr, .. } => contains_function(expr),
        AstExpr::InList { expr, .. } => contains_function(expr),
        AstExpr::Between {
            expr, low, high, ..
        } => contains_function(expr) || contains_function(low) || contains_function(high),
        AstExpr::Case {
            branches,
            else_expr,
        } => {
            branches
                .iter()
                .any(|(c, r)| contains_function(c) || contains_function(r))
                || else_expr.as_deref().is_some_and(contains_function)
        }
        _ => false,
    }
}

/// Does `expr` resolve entirely within `schema`?
fn resolves_in(expr: &Expr, schema: &Schema) -> bool {
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    cols.iter()
        .all(|c| schema.index_of(c.qualifier.as_deref(), &c.name).is_ok())
}

fn plan_select(
    select: &Select,
    catalog: &Catalog,
    ctes: &HashMap<String, LogicalPlan>,
) -> Result<LogicalPlan> {
    if select.from.is_empty() {
        return Err(Error::Plan("FROM clause is required".into()));
    }

    // --- FROM: build factors ---
    let mut factors: Vec<(LogicalPlan, SchemaRef)> = Vec::new();
    for tref in &select.from {
        let alias = tref.effective_alias().to_string();
        let plan = if let Some(cte) = ctes.get(&tref.name) {
            cte.clone().alias(&alias)
        } else if catalog.contains(&tref.name) {
            LogicalPlan::scan_as(&tref.name, &alias)
        } else {
            return Err(Error::Plan(format!("unknown table or CTE '{}'", tref.name)));
        };
        let schema = plan.schema(catalog)?;
        factors.push((plan, schema));
    }

    // --- WHERE: classify conjuncts ---
    let mut single: Vec<Vec<Expr>> = vec![Vec::new(); factors.len()];
    let mut join_conds: Vec<(usize, usize, Expr, Expr)> = Vec::new(); // (fi, fj, key_i, key_j)
    let mut leftover: Vec<Expr> = Vec::new();
    if let Some(w) = &select.where_clause {
        if contains_function(w) {
            return Err(Error::Plan("aggregates are not allowed in WHERE".into()));
        }
        let pred = to_scalar_expr(w)?;
        for conj in split_conjuncts(&pred) {
            // Single-factor?
            let homes: Vec<usize> = factors
                .iter()
                .enumerate()
                .filter(|(_, (_, s))| resolves_in(&conj, s))
                .map(|(i, _)| i)
                .collect();
            if homes.len() == 1 {
                single[homes[0]].push(conj);
                continue;
            }
            if homes.len() > 1 {
                // Ambiguous but self-contained (e.g. literal-only) — keep above.
                leftover.push(conj);
                continue;
            }
            // Equi-join conjunct?
            if let Expr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            } = &conj
            {
                let find_home = |e: &Expr| -> Option<usize> {
                    factors
                        .iter()
                        .enumerate()
                        .find(|(_, (_, s))| resolves_in(e, s))
                        .map(|(i, _)| i)
                };
                if let (Some(li), Some(ri)) = (find_home(left), find_home(right)) {
                    if li != ri {
                        join_conds.push((li, ri, (**left).clone(), (**right).clone()));
                        continue;
                    }
                }
            }
            leftover.push(conj);
        }
    }

    // Apply single-factor filters (the optimizer merges them into scans).
    let mut nodes: Vec<Option<LogicalPlan>> = factors
        .iter()
        .zip(single)
        .map(|((p, _), preds)| {
            Some(match conjoin(preds) {
                Some(pred) => p.clone().filter(pred),
                None => p.clone(),
            })
        })
        .collect();
    let schemas: Vec<SchemaRef> = factors.iter().map(|(_, s)| s.clone()).collect();

    // --- Join tree: greedy, starting from factor 0 ---
    let mut current = nodes[0]
        .take()
        .ok_or_else(|| Error::Internal("factor 0 missing".into()))?;
    let mut joined: Vec<usize> = vec![0];
    let mut remaining_conds = join_conds;
    while joined.len() < factors.len() {
        // Find a condition connecting the joined set to a new factor.
        let pick = remaining_conds.iter().position(|(li, ri, _, _)| {
            (joined.contains(li) && !joined.contains(ri))
                || (joined.contains(ri) && !joined.contains(li))
        });
        let Some(pos) = pick else {
            let missing: Vec<&str> = (0..factors.len())
                .filter(|i| !joined.contains(i))
                .map(|i| select.from[i].effective_alias())
                .collect();
            return Err(Error::Plan(format!(
                "no join condition connects table(s) [{}] — cross joins are not supported",
                missing.join(", ")
            )));
        };
        let (li, ri, lk, rk) = remaining_conds.remove(pos);
        let (new_factor, cur_key, new_key) = if joined.contains(&li) {
            (ri, lk, rk)
        } else {
            (li, rk, lk)
        };
        // Collect all other conditions between the joined set ∪ {new} pairs
        // involving new_factor for a multi-key join.
        let mut cur_keys = vec![cur_key];
        let mut new_keys = vec![new_key];
        let mut rest = Vec::new();
        for (li, ri, lk, rk) in remaining_conds.drain(..) {
            if joined.contains(&li) && ri == new_factor {
                cur_keys.push(lk);
                new_keys.push(rk);
            } else if joined.contains(&ri) && li == new_factor {
                cur_keys.push(rk);
                new_keys.push(lk);
            } else {
                rest.push((li, ri, lk, rk));
            }
        }
        remaining_conds = rest;
        let right = nodes[new_factor]
            .take()
            .ok_or_else(|| Error::Internal("factor reused".into()))?;
        current = current.join(right, cur_keys, new_keys, crate::join::JoinType::Inner);
        joined.push(new_factor);
        let _ = &schemas; // schemas kept for potential diagnostics
    }
    // Unconsumed join conditions (cycles in the join graph) become filters.
    for (_, _, lk, rk) in remaining_conds {
        leftover.push(lk.eq(rk));
    }
    if let Some(pred) = conjoin(leftover) {
        current = current.filter(pred);
    }

    // --- Window extraction from the select list ---
    let mut wgroups: Vec<WindowGroup> = Vec::new();
    let mut wcounter = 0usize;
    let mut items_past_windows: Vec<(AstExpr, Option<String>)> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                // Expand to the current schema's columns.
                let schema = current.schema(catalog)?;
                for f in schema.fields().iter() {
                    items_past_windows.push((
                        AstExpr::Column(f.qualifier.clone(), f.name.clone()),
                        Some(f.name.clone()),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let replaced = extract_windows(expr, &mut wgroups, &mut wcounter)?;
                items_past_windows.push((replaced, alias.clone()));
            }
        }
    }
    for g in wgroups {
        current = current.window(g.partition_by, g.order_by, g.exprs);
    }

    // --- Aggregation ---
    let mut aggs: Vec<AggExpr> = Vec::new();
    let mut acounter = 0usize;
    let items_past_aggs: Vec<(AstExpr, Option<String>)> = items_past_windows
        .iter()
        .map(|(e, a)| Ok((extract_aggregates(e, &mut aggs, &mut acounter)?, a.clone())))
        .collect::<Result<_>>()?;

    let has_grouping = !aggs.is_empty() || !select.group_by.is_empty();
    let mut final_items: Vec<(Expr, String)> = Vec::new();
    if has_grouping {
        // Group keys: named after matching select aliases when possible,
        // de-duplicated so that e.g. GROUP BY l1.loc_desc, l2.loc_desc
        // produces two distinct output columns.
        let mut group_by: Vec<(Expr, String)> = Vec::new();
        let mut used_names: Vec<String> = Vec::new();
        for (gi, g) in select.group_by.iter().enumerate() {
            let gexpr = to_scalar_expr(g)?;
            // Find a select item that is exactly this expression.
            let mut name = select
                .items
                .iter()
                .find_map(|item| match item {
                    SelectItem::Expr { expr, alias } if expr == g => {
                        Some(alias.clone().unwrap_or_else(|| default_name(&gexpr, gi)))
                    }
                    _ => None,
                })
                .unwrap_or_else(|| default_name(&gexpr, gi));
            if used_names.iter().any(|u| u.eq_ignore_ascii_case(&name)) {
                name = format!("{name}_{gi}");
            }
            used_names.push(name.clone());
            group_by.push((gexpr, name));
        }
        current = current.aggregate(group_by.clone(), aggs);
        // Rewrite select items: group expressions become their output columns.
        for (i, (ast, alias)) in items_past_aggs.iter().enumerate() {
            let scalar = to_scalar_expr(ast)?;
            let rewritten = scalar.transform(&|e| {
                for (gexpr, gname) in &group_by {
                    if &e == gexpr {
                        return Expr::col(gname.clone());
                    }
                }
                e
            });
            let name = alias.clone().unwrap_or_else(|| default_name(&rewritten, i));
            final_items.push((rewritten, name));
        }
    } else {
        for (i, (ast, alias)) in items_past_aggs.iter().enumerate() {
            let scalar = to_scalar_expr(ast)?;
            let name = alias.clone().unwrap_or_else(|| default_name(&scalar, i));
            final_items.push((scalar, name));
        }
    }
    let pre_projection = current.clone();
    current = current.project(final_items);

    if select.distinct {
        current = current.distinct();
    }
    if !select.order_by.is_empty() {
        let keys: Vec<SortKey> = select
            .order_by
            .iter()
            .map(|(e, asc)| {
                to_scalar_expr(e).map(|expr| {
                    if *asc {
                        SortKey::asc(expr)
                    } else {
                        SortKey::desc(expr)
                    }
                })
            })
            .collect::<Result<_>>()?;
        // SQL permits ordering by columns that are not in the select list;
        // when a key only resolves against the pre-projection schema, sort
        // first and project afterwards (not valid under DISTINCT, where the
        // sort key must survive into the output).
        let out_schema = current.schema(catalog)?;
        let resolves_in_output = keys.iter().all(|k| resolves_in(&k.expr, &out_schema));
        if resolves_in_output {
            current = current.sort(keys);
        } else if select.distinct {
            return Err(Error::Plan(
                "ORDER BY column must appear in the select list when DISTINCT is used".into(),
            ));
        } else {
            let LogicalPlan::Project { exprs, .. } = &current else {
                return Err(Error::Internal("projection expected".into()));
            };
            let exprs = exprs.clone();
            current = pre_projection.sort(keys).project(exprs);
        }
    }
    if let Some(fetch) = select.limit {
        current = current.limit(fetch);
    }
    Ok(current)
}

fn default_name(expr: &Expr, i: usize) -> String {
    match expr {
        Expr::Column(c) => c.name.clone(),
        _ => format!("_c{i}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{schema_ref, Batch};
    use crate::exec::Executor;
    use crate::schema::Field;
    use crate::sql::parser::parse_query;
    use crate::table::Table;
    use crate::value::{DataType, Value};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
        ]));
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| {
                vec![
                    Value::str(format!("e{}", i % 4)),
                    Value::Int(i),
                    Value::str(format!("l{}", i % 3)),
                ]
            })
            .collect();
        cat.register(Table::new("r", Batch::from_rows(schema, &rows).unwrap()));
        let ls = schema_ref(Schema::new(vec![
            Field::new("gln", DataType::Str),
            Field::new("site", DataType::Str),
        ]));
        cat.register(Table::new(
            "locs",
            Batch::from_rows(
                ls,
                &[
                    vec![Value::str("l0"), Value::str("s0")],
                    vec![Value::str("l1"), Value::str("s1")],
                    vec![Value::str("l2"), Value::str("s2")],
                ],
            )
            .unwrap(),
        ));
        cat
    }

    fn run(sql: &str) -> Batch {
        let cat = catalog();
        let q = parse_query(sql).unwrap();
        let plan = plan_query(&q, &cat).unwrap();
        Executor::new(&cat).execute(&plan).unwrap()
    }

    #[test]
    fn select_where_project() {
        let out = run("select epc, rtime from r where rtime < 5");
        assert_eq!(out.num_rows(), 5);
        assert_eq!(out.schema().field(0).name, "epc");
    }

    #[test]
    fn select_star() {
        let out = run("select * from r where rtime = 0");
        assert_eq!(out.num_columns(), 3);
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn group_by_aggregates() {
        let out = run("select epc, count(*) as n, max(rtime) as mx from r group by epc");
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.column_by_name("n").unwrap().int_at(0), Some(5));
    }

    #[test]
    fn joins_by_where_equality() {
        let out = run("select c.epc, l.site from r c, locs l \
             where c.biz_loc = l.gln and l.site = 's1'");
        assert!(out.num_rows() > 0);
        for i in 0..out.num_rows() {
            assert_eq!(out.row(i)[1], Value::str("s1"));
        }
    }

    #[test]
    fn self_join_with_two_aliases() {
        let out = run("select a.epc from r a, r b \
             where a.epc = b.epc and a.rtime = 0 and b.rtime = 4");
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::str("e0"));
    }

    #[test]
    fn window_function_lag() {
        let out = run(
            "select epc, rtime, max(rtime) over (partition by epc order by rtime \
             rows between 1 preceding and 1 preceding) as prev from r where epc = 'e0'",
        );
        assert_eq!(out.num_rows(), 5);
        // Sorted inside window node; first row of partition has NULL prev.
        let prev = out.column_by_name("prev").unwrap();
        assert!(prev.is_null(0));
        assert_eq!(prev.int_at(1), Some(0));
    }

    #[test]
    fn cte_and_requalification() {
        let out = run("with v1 as (select epc, rtime from r where rtime < 10) \
             select v1.epc, count(*) as n from v1 group by v1.epc");
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn count_distinct() {
        let out = run("select count(distinct biz_loc) as d from r");
        assert_eq!(out.row(0)[0], Value::Int(3));
    }

    #[test]
    fn distinct_and_order_and_limit() {
        let out = run("select distinct epc from r order by epc desc limit 2");
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.row(0)[0], Value::str("e3"));
    }

    #[test]
    fn avg_of_difference_with_window_inside_cte() {
        // Shape of the paper's q1.
        let out = run(
            "with v1 as (select biz_loc as cur, rtime, \
               max(rtime) over (partition by epc order by rtime rows between 1 preceding and 1 preceding) as prev_time \
             from r) \
             select cur, avg(rtime - prev_time) as dwell from v1 where prev_time is not null group by cur",
        );
        assert!(out.num_rows() > 0);
    }

    #[test]
    fn cross_join_rejected() {
        let cat = catalog();
        let q = parse_query("select * from r, locs").unwrap();
        let err = plan_query(&q, &cat).unwrap_err();
        assert!(err.to_string().contains("cross join"));
    }

    #[test]
    fn unknown_table_rejected() {
        let cat = catalog();
        let q = parse_query("select * from nope").unwrap();
        assert!(plan_query(&q, &cat).is_err());
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let cat = catalog();
        let q = parse_query("select epc from r where count(*) > 1").unwrap();
        assert!(plan_query(&q, &cat).is_err());
    }

    #[test]
    fn or_predicate_stays_above_join_sides() {
        // An OR spanning two tables cannot be pushed to either side.
        let out = run("select c.epc from r c, locs l \
             where c.biz_loc = l.gln and (c.rtime < 2 or l.site = 's2')");
        assert!(out.num_rows() > 0);
    }
}
