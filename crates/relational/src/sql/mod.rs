//! SQL front end: lexer, parser, and planner for the subset used by the
//! paper's workloads (WITH, select-project-join, GROUP BY, OLAP windows).

pub mod ast;
pub mod display;
pub mod lexer;
pub mod parser;
pub mod planner;

use crate::batch::Batch;
use crate::error::Result;
use crate::exec::Executor;
use crate::optimizer::optimize_default;
use crate::plan::LogicalPlan;
use crate::table::Catalog;

pub use parser::{parse_expr, parse_query};
pub use planner::{plan_query, to_scalar_expr};

/// Parse and plan SQL, returning the optimized logical plan.
pub fn plan_sql(sql: &str, catalog: &Catalog) -> Result<LogicalPlan> {
    let query = parse_query(sql)?;
    let plan = plan_query(&query, catalog)?;
    Ok(optimize_default(plan, catalog))
}

/// Parse, plan, optimize, and execute SQL.
pub fn run_sql(sql: &str, catalog: &Catalog) -> Result<Batch> {
    let plan = plan_sql(sql, catalog)?;
    Executor::new(catalog).execute(&plan)
}

/// Like [`run_sql`], also returning the executor's work counters.
pub fn run_sql_with_stats(sql: &str, catalog: &Catalog) -> Result<(Batch, crate::exec::ExecStats)> {
    let plan = plan_sql(sql, catalog)?;
    let mut ex = Executor::new(catalog);
    let batch = ex.execute(&plan)?;
    Ok((batch, ex.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;
    use crate::schema::{Field, Schema};
    use crate::table::Table;
    use crate::value::{DataType, Value};

    #[test]
    fn run_sql_end_to_end() {
        let cat = Catalog::new();
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::str(format!("e{}", i % 2)), Value::Int(i)])
            .collect();
        let mut t = Table::new("r", Batch::from_rows(schema, &rows).unwrap());
        t.create_index("rtime").unwrap();
        cat.register(t);

        let (out, stats) = run_sql_with_stats(
            "select epc, count(*) as n from r where rtime < 4 group by epc",
            &cat,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        // Pushdown + index: only 4 rows fetched.
        assert_eq!(stats.rows_scanned, 4);
    }
}
