//! SQL pretty-printer: `Display` for the parsed AST.
//!
//! The printer is the inverse of the parser for every AST the parser can
//! produce: `parse_query(&q.to_string()) == q`. That round-trip property is
//! what the fuzz suite leans on, so the rules here mirror the grammar
//! exactly:
//!
//! * operands are parenthesized **by precedence** — a child at a lower
//!   binding level than its position requires is wrapped in `(...)`, so
//!   re-parsing re-associates to the identical tree (the grammar is
//!   left-associative, hence right operands demand one level more);
//! * string literals re-escape `'` as `''`;
//! * doubles print with a decimal point (`{:?}`), so `2.0` stays a
//!   `Double` instead of re-lexing as an `Int`;
//! * identifiers that would collide with a keyword or literal word
//!   (`select`, `null`, `true`, …) print as quoted identifiers `"..."`.

use super::ast::{
    AstBinaryOp, AstExpr, FrameSpec, Query, Select, SelectItem, TableRef, WindowSpec,
};
use super::parser::is_reserved;
use crate::value::Value;
use crate::window::FrameUnits;
use std::fmt;

/// Words the factor grammar treats as literals, not column names.
const LITERAL_WORDS: &[&str] = &["null", "true", "false"];

/// Can `s` be printed as a bare identifier and re-lex to the same word?
fn is_bare_ident(s: &str) -> bool {
    let mut chars = s.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !is_reserved(s)
        && !LITERAL_WORDS.iter().any(|w| s.eq_ignore_ascii_case(w))
}

fn fmt_ident(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    if is_bare_ident(s) {
        f.write_str(s)
    } else {
        // Quoted identifier; the lexer has no escape for an inner quote.
        write!(f, "\"{s}\"")
    }
}

fn fmt_literal(f: &mut fmt::Formatter<'_>, v: &Value) -> fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Int(i) => write!(f, "{i}"),
        // `{:?}` keeps the decimal point (`2.0`, not `2`), so the literal
        // re-lexes as a float. Non-finite values have no SQL spelling.
        Value::Double(d) => write!(f, "{d:?}"),
        Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
    }
}

/// Binding strength of an expression, mirroring the parser's descent:
/// `or`(1) < `and`(2) < `not`(3) < predicate(4) < additive(5) < term(6)
/// < factor(7).
fn prec(e: &AstExpr) -> u8 {
    match e {
        AstExpr::Binary { op, .. } => match op {
            AstBinaryOp::Or => 1,
            AstBinaryOp::And => 2,
            AstBinaryOp::Eq
            | AstBinaryOp::NotEq
            | AstBinaryOp::Lt
            | AstBinaryOp::LtEq
            | AstBinaryOp::Gt
            | AstBinaryOp::GtEq => 4,
            AstBinaryOp::Plus | AstBinaryOp::Minus => 5,
            AstBinaryOp::Multiply | AstBinaryOp::Divide => 6,
        },
        AstExpr::Not(_) => 3,
        AstExpr::IsNull { .. } | AstExpr::InList { .. } | AstExpr::Between { .. } => 4,
        AstExpr::Column(..)
        | AstExpr::Literal(_)
        | AstExpr::Case { .. }
        | AstExpr::Function { .. } => 7,
    }
}

/// Print `e`, parenthesizing when it binds looser than `min` requires.
fn fmt_expr(f: &mut fmt::Formatter<'_>, e: &AstExpr, min: u8) -> fmt::Result {
    if prec(e) < min {
        f.write_str("(")?;
        fmt_expr(f, e, 0)?;
        f.write_str(")")
    } else {
        fmt_expr_bare(f, e)
    }
}

fn fmt_expr_bare(f: &mut fmt::Formatter<'_>, e: &AstExpr) -> fmt::Result {
    match e {
        AstExpr::Column(qualifier, name) => {
            if let Some(q) = qualifier {
                fmt_ident(f, q)?;
                f.write_str(".")?;
            }
            fmt_ident(f, name)
        }
        AstExpr::Literal(v) => fmt_literal(f, v),
        AstExpr::Binary { left, op, right } => {
            // Left-associative grammar: the right operand needs one more
            // level of binding than the left, or it re-associates.
            let (lmin, rmin) = match op {
                AstBinaryOp::Or => (1, 2),
                AstBinaryOp::And => (2, 3),
                // The predicate level admits exactly one comparison:
                // a comparison operand must be parenthesized.
                AstBinaryOp::Eq
                | AstBinaryOp::NotEq
                | AstBinaryOp::Lt
                | AstBinaryOp::LtEq
                | AstBinaryOp::Gt
                | AstBinaryOp::GtEq => (5, 5),
                AstBinaryOp::Plus | AstBinaryOp::Minus => (5, 6),
                AstBinaryOp::Multiply | AstBinaryOp::Divide => (6, 7),
            };
            fmt_expr(f, left, lmin)?;
            write!(f, " {op} ")?;
            fmt_expr(f, right, rmin)
        }
        AstExpr::Not(inner) => {
            f.write_str("not ")?;
            fmt_expr(f, inner, 3)
        }
        AstExpr::IsNull { expr, negated } => {
            fmt_expr(f, expr, 5)?;
            f.write_str(if *negated { " is not null" } else { " is null" })
        }
        AstExpr::InList {
            expr,
            list,
            negated,
        } => {
            fmt_expr(f, expr, 5)?;
            f.write_str(if *negated { " not in (" } else { " in (" })?;
            for (i, v) in list.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_literal(f, v)?;
            }
            f.write_str(")")
        }
        AstExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            fmt_expr(f, expr, 5)?;
            f.write_str(if *negated {
                " not between "
            } else {
                " between "
            })?;
            fmt_expr(f, low, 5)?;
            f.write_str(" and ")?;
            fmt_expr(f, high, 5)
        }
        AstExpr::Case {
            branches,
            else_expr,
        } => {
            f.write_str("case")?;
            for (cond, result) in branches {
                f.write_str(" when ")?;
                fmt_expr(f, cond, 0)?;
                f.write_str(" then ")?;
                fmt_expr(f, result, 0)?;
            }
            if let Some(e) = else_expr {
                f.write_str(" else ")?;
                fmt_expr(f, e, 0)?;
            }
            f.write_str(" end")
        }
        AstExpr::Function {
            name,
            args,
            distinct,
            over,
        } => {
            // A word followed by `(` always parses as a function call, so
            // the name prints bare even when it collides with a keyword.
            write!(f, "{name}(")?;
            if *distinct {
                f.write_str("distinct ")?;
            }
            match args {
                None => f.write_str("*")?,
                Some(args) => {
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        fmt_expr(f, a, 0)?;
                    }
                }
            }
            f.write_str(")")?;
            if let Some(spec) = over {
                write!(f, " over ({spec})")?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for AstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(f, self, 0)
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut space = "";
        if !self.partition_by.is_empty() {
            f.write_str("partition by ")?;
            for (i, e) in self.partition_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_expr(f, e, 0)?;
            }
            space = " ";
        }
        if !self.order_by.is_empty() {
            write!(f, "{space}order by ")?;
            for (i, (e, asc)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_expr(f, e, 0)?;
                f.write_str(if *asc { " asc" } else { " desc" })?;
            }
            space = " ";
        }
        if let Some(frame) = &self.frame {
            write!(f, "{space}{frame}")?;
        }
        Ok(())
    }
}

impl fmt::Display for FrameSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let units = match self.units {
            FrameUnits::Rows => "rows",
            FrameUnits::Range => "range",
        };
        // Always the explicit BETWEEN form; the shorthand is parse-only.
        write!(f, "{units} between {} and {}", self.start, self.end)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ident(f, &self.name)?;
        if let Some(a) = &self.alias {
            f.write_str(" as ")?;
            fmt_ident(f, a)?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::Expr { expr, alias } => {
                fmt_expr(f, expr, 0)?;
                if let Some(a) = alias {
                    f.write_str(" as ")?;
                    fmt_ident(f, a)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("select ")?;
        if self.distinct {
            f.write_str("distinct ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        f.write_str(" from ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        if let Some(w) = &self.where_clause {
            f.write_str(" where ")?;
            fmt_expr(f, w, 0)?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" group by ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_expr(f, e, 0)?;
            }
        }
        if !self.order_by.is_empty() {
            f.write_str(" order by ")?;
            for (i, (e, asc)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_expr(f, e, 0)?;
                f.write_str(if *asc { " asc" } else { " desc" })?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " limit {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.ctes.is_empty() {
            f.write_str("with ")?;
            for (i, (name, q)) in self.ctes.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_ident(f, name)?;
                write!(f, " as ({q})")?;
            }
            f.write_str(" ")?;
        }
        write!(f, "{}", self.body)?;
        if let Some(epoch) = self.as_of {
            write!(f, " as of epoch {epoch}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::{parse_expr, parse_query};

    /// parse → print → parse must reproduce the AST byte-for-byte.
    fn roundtrip_query(sql: &str) {
        let q = parse_query(sql).unwrap();
        let printed = q.to_string();
        let q2 = parse_query(&printed).unwrap_or_else(|e| {
            panic!("printed SQL failed to re-parse: {e}\n  input:   {sql}\n  printed: {printed}")
        });
        assert_eq!(
            q, q2,
            "round-trip diverged\n  input:   {sql}\n  printed: {printed}"
        );
    }

    fn roundtrip_expr(sql: &str) {
        let e = parse_expr(sql).unwrap();
        let printed = e.to_string();
        let e2 = parse_expr(&printed).unwrap_or_else(|err| {
            panic!("printed expr failed to re-parse: {err}\n  input:   {sql}\n  printed: {printed}")
        });
        assert_eq!(
            e, e2,
            "round-trip diverged\n  input:   {sql}\n  printed: {printed}"
        );
    }

    #[test]
    fn roundtrip_basic_queries() {
        roundtrip_query("select a, b as bb from t where a > 1 and b = 'x' limit 5");
        roundtrip_query("select distinct * from t");
        roundtrip_query("select c.epc from caser c, locs l1, locs l2 where c.biz_loc = l1.gln");
        roundtrip_query("select epc, count(*) as n from r where rtime < 4 group by epc");
        roundtrip_query("select a from t order by a desc, b asc limit 3");
        roundtrip_query(
            "with v1 as (select * from r where rtime < 10) select * from v1 where rtime > 5",
        );
    }

    #[test]
    fn roundtrip_windows() {
        roundtrip_query(
            "select max(biz_loc) over (partition by epc order by rtime asc \
             rows between 1 preceding and 1 preceding) as prev_loc from r",
        );
        roundtrip_query(
            "select max(x) over (partition by epc order by rtime \
             range between 1 following and 300 following) as h from r",
        );
        roundtrip_query("select count(*) over () from r");
        roundtrip_query("select sum(x) over (order by y rows 2 preceding) from r");
    }

    #[test]
    fn roundtrip_predicates() {
        roundtrip_expr("a in (1, 2, 3)");
        roundtrip_expr("a not in ('x', 'it''s')");
        roundtrip_expr("a between 1 and 5");
        roundtrip_expr("a not between 1 + 1 and 5 * 2");
        roundtrip_expr("a is not null");
        roundtrip_expr("not a = 1");
        roundtrip_expr("case when reader = 'rX' then 1 else 0 end");
        roundtrip_expr("a = 1 or b = 2 and c = 3");
        roundtrip_expr("1 + 2 * 3 - 4 / 5");
        roundtrip_expr("a > -5");
        roundtrip_expr("count(distinct x)");
    }

    #[test]
    fn parenthesization_preserves_shape() {
        // Forced right-association must survive the round trip.
        roundtrip_expr("a - (b - c)");
        roundtrip_expr("a / (b * c)");
        roundtrip_expr("(a or b) and c");
        roundtrip_expr("not (a and b)");
        roundtrip_expr("(a = b) = (c = d)");
        roundtrip_expr("(a + b) * c");
    }

    #[test]
    fn literals_survive() {
        // 2.0 must stay a Double (not collapse to Int 2).
        roundtrip_expr("x = 2.0");
        roundtrip_expr("x = 2.5");
        roundtrip_expr("s = 'it''s'");
        roundtrip_expr("x = null");
        roundtrip_expr("x = true or x = false");
        roundtrip_expr("x = -5");
        roundtrip_expr("x - -5");
    }

    #[test]
    fn reserved_identifiers_are_quoted() {
        // A quoted identifier that collides with a keyword round-trips.
        roundtrip_query("select \"select\" from t");
        roundtrip_query("select \"null\", a from t as \"order\"");
    }
}
