//! Recursive-descent SQL parser for the subset the paper's workloads use:
//! `WITH`, `SELECT [DISTINCT]`, comma joins with aliases, `WHERE`,
//! `GROUP BY`, `ORDER BY`, `LIMIT`, aggregates (with `DISTINCT`), window
//! functions with `OVER (PARTITION BY ... ORDER BY ... ROWS|RANGE ...)`,
//! `CASE`, `[NOT] IN`, `[NOT] BETWEEN`, `IS [NOT] NULL`.

use super::ast::*;
use super::lexer::{tokenize, Token};
use crate::error::{Error, Result};
use crate::expr::BinaryOp;
use crate::value::Value;
use crate::window::{FrameBound, FrameUnits};

/// Words that terminate an expression / cannot be bare aliases.
const RESERVED: &[&str] = &[
    "select",
    "from",
    "where",
    "group",
    "order",
    "limit",
    "and",
    "or",
    "not",
    "as",
    "on",
    "by",
    "asc",
    "desc",
    "having",
    "union",
    "join",
    "inner",
    "with",
    "in",
    "is",
    "between",
    "case",
    "when",
    "then",
    "else",
    "end",
    "over",
    "partition",
    "rows",
    "range",
    "distinct",
];

pub(crate) fn is_reserved(w: &str) -> bool {
    RESERVED.iter().any(|r| w.eq_ignore_ascii_case(r))
}

/// Maximum expression nesting depth. The parser is recursive-descent, so
/// pathological inputs like ten thousand open parens would otherwise blow
/// the stack — a panic, where the contract is a parse *error*.
pub(crate) const MAX_EXPR_DEPTH: usize = 64;

/// Parse a SQL query string.
pub fn parse_query(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let q = p.parse_query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse a standalone scalar expression (used by the rule engine for rule
/// conditions re-expressed in SQL syntax).
pub fn parse_expr(sql: &str) -> Result<AstExpr> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected keyword {kw}, found {}",
                self.peek()
            )))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(Error::Parse(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "unexpected trailing token {}",
                self.peek()
            )))
        }
    }

    fn expect_word(&mut self) -> Result<String> {
        match self.next() {
            Token::Word(w) => Ok(w),
            other => Err(Error::Parse(format!("expected identifier, found {other}"))),
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.eat_kw("with") {
            loop {
                let name = self.expect_word()?;
                self.expect_kw("as")?;
                self.expect(&Token::LParen)?;
                // CTE bodies nest whole queries; charge the same depth
                // budget as expressions so `with a as (with b as (…` can't
                // recurse unboundedly.
                let q = self.guarded(|p| p.parse_query())?;
                self.expect(&Token::RParen)?;
                ctes.push((name.to_ascii_lowercase(), q));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let body = self.parse_select()?;
        let as_of = self.parse_as_of()?;
        Ok(Query { ctes, body, as_of })
    }

    /// Optional `AS OF EPOCH <n>` suffix. Grammatically allowed on any
    /// query (including CTE bodies) so display round-trips; the planner
    /// enforces where it is actually supported.
    fn parse_as_of(&mut self) -> Result<Option<u64>> {
        if !self.eat_kw("as") {
            return Ok(None);
        }
        self.expect_kw("of")?;
        self.expect_kw("epoch")?;
        match self.next() {
            Token::Int(v) if v >= 0 => Ok(Some(v as u64)),
            t => Err(Error::Parse(format!(
                "expected a non-negative epoch number after AS OF EPOCH, found {t}"
            ))),
        }
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = self.parse_optional_alias();
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            let name = self.expect_word()?;
            if is_reserved(&name) {
                return Err(Error::Parse(format!("unexpected keyword '{name}' in FROM")));
            }
            let alias = self.parse_optional_alias();
            from.push(TableRef {
                name: name.to_ascii_lowercase(),
                alias,
            });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.parse_expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push((e, asc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Token::Int(v) if v >= 0 => Some(v as usize),
                other => return Err(Error::Parse(format!("bad LIMIT value {other}"))),
            }
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    /// True when the tokens at the cursor spell `AS OF EPOCH <int>` — the
    /// time-travel suffix, which must never be mistaken for an `AS of`
    /// alias on the last FROM table.
    fn at_as_of(&self) -> bool {
        let tok = |i: usize| self.tokens.get(self.pos + i);
        self.peek().is_kw("as")
            && matches!(tok(1), Some(Token::Word(w)) if w.eq_ignore_ascii_case("of"))
            && matches!(tok(2), Some(Token::Word(w)) if w.eq_ignore_ascii_case("epoch"))
            && matches!(tok(3), Some(Token::Int(v)) if *v >= 0)
    }

    fn parse_optional_alias(&mut self) -> Option<String> {
        if self.at_as_of() {
            return None;
        }
        if self.eat_kw("as") {
            if let Token::Word(w) = self.peek().clone() {
                self.pos += 1;
                return Some(w.to_ascii_lowercase());
            }
        }
        if let Token::Word(w) = self.peek().clone() {
            if !is_reserved(&w) {
                self.pos += 1;
                return Some(w.to_ascii_lowercase());
            }
        }
        None
    }

    pub(crate) fn parse_expr(&mut self) -> Result<AstExpr> {
        // Every nesting construct (parens, CASE, function args) funnels
        // back through here, so one guard bounds the whole descent; NOT
        // chains and unary minus carry their own charge below.
        self.guarded(|p| p.parse_or())
    }

    fn parse_or(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = AstExpr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = AstExpr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<AstExpr> {
        if self.eat_kw("not") {
            // Direct self-recursion (`not not …`) bypasses parse_expr, so
            // it needs its own depth charge.
            self.guarded(|p| Ok(AstExpr::Not(Box::new(p.parse_not()?))))
        } else {
            self.parse_predicate()
        }
    }

    /// Run `f` one nesting level deeper, erroring out past the bound.
    fn guarded<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(Error::Parse(format!(
                "expression nesting exceeds {MAX_EXPR_DEPTH} levels"
            )));
        }
        let result = f(self);
        self.depth -= 1;
        result
    }

    fn parse_predicate(&mut self) -> Result<AstExpr> {
        let left = self.parse_additive()?;
        // Comparison operators.
        let op = match self.peek() {
            Token::Eq => Some(BinaryOp::Eq),
            Token::NotEq => Some(BinaryOp::NotEq),
            Token::Lt => Some(BinaryOp::Lt),
            Token::LtEq => Some(BinaryOp::LtEq),
            Token::Gt => Some(BinaryOp::Gt),
            Token::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(AstExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / [NOT] BETWEEN
        let negated = if self.peek().is_kw("not") {
            // Lookahead: only consume NOT if followed by IN or BETWEEN.
            let next = self.tokens.get(self.pos + 1);
            if next.is_some_and(|t| t.is_kw("in") || t.is_kw("between")) {
                self.pos += 1;
                true
            } else {
                false
            }
        } else {
            false
        };
        if self.eat_kw("in") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                let negate = self.eat(&Token::Minus);
                match self.next() {
                    Token::Int(v) => list.push(Value::Int(if negate { -v } else { v })),
                    Token::Float(v) => list.push(Value::Double(if negate { -v } else { v })),
                    Token::Str(s) if !negate => list.push(Value::str(s)),
                    Token::Word(w) if !negate && w.eq_ignore_ascii_case("null") => {
                        list.push(Value::Null)
                    }
                    other => {
                        return Err(Error::Parse(format!(
                            "IN list supports literals only, found {other}"
                        )))
                    }
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("between") {
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(Error::Parse("dangling NOT".into()));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Plus,
                Token::Minus => BinaryOp::Minus,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_term()?;
            left = AstExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_factor()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Multiply,
                Token::Slash => BinaryOp::Divide,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_factor()?;
            left = AstExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_factor(&mut self) -> Result<AstExpr> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Int(v)))
            }
            Token::Float(v) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Double(v)))
            }
            Token::Str(s) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::str(s)))
            }
            Token::Minus => {
                self.pos += 1;
                let inner = self.guarded(|p| p.parse_factor())?;
                // Constant-fold negation of literals; otherwise 0 - x.
                Ok(match inner {
                    AstExpr::Literal(Value::Int(v)) => AstExpr::Literal(Value::Int(-v)),
                    AstExpr::Literal(Value::Double(v)) => AstExpr::Literal(Value::Double(-v)),
                    other => AstExpr::Binary {
                        left: Box::new(AstExpr::Literal(Value::Int(0))),
                        op: BinaryOp::Minus,
                        right: Box::new(other),
                    },
                })
            }
            Token::LParen => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Word(w) if w.eq_ignore_ascii_case("case") => self.parse_case(),
            Token::Word(w) if w.eq_ignore_ascii_case("null") => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Null))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("true") => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Bool(true)))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("false") => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Bool(false)))
            }
            Token::Word(w) => {
                self.pos += 1;
                // Function call?
                if self.peek() == &Token::LParen {
                    return self.parse_function(w);
                }
                // Qualified column?
                if self.eat(&Token::Dot) {
                    let col = self.expect_word()?;
                    return Ok(AstExpr::Column(
                        Some(w.to_ascii_lowercase()),
                        col.to_ascii_lowercase(),
                    ));
                }
                Ok(AstExpr::Column(None, w.to_ascii_lowercase()))
            }
            other => Err(Error::Parse(format!(
                "unexpected token {other} in expression"
            ))),
        }
    }

    fn parse_case(&mut self) -> Result<AstExpr> {
        self.expect_kw("case")?;
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let cond = self.parse_expr()?;
            self.expect_kw("then")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(Error::Parse("CASE requires at least one WHEN".into()));
        }
        let else_expr = if self.eat_kw("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(AstExpr::Case {
            branches,
            else_expr,
        })
    }

    fn parse_function(&mut self, name: String) -> Result<AstExpr> {
        self.expect(&Token::LParen)?;
        let distinct = self.eat_kw("distinct");
        let args = if self.eat(&Token::Star) {
            None
        } else {
            let mut args = Vec::new();
            if self.peek() != &Token::RParen {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            Some(args)
        };
        self.expect(&Token::RParen)?;
        let over = if self.eat_kw("over") {
            self.expect(&Token::LParen)?;
            let spec = self.parse_window_spec()?;
            self.expect(&Token::RParen)?;
            Some(spec)
        } else {
            None
        };
        Ok(AstExpr::Function {
            name: name.to_ascii_lowercase(),
            args,
            distinct,
            over,
        })
    }

    fn parse_window_spec(&mut self) -> Result<WindowSpec> {
        let mut partition_by = Vec::new();
        if self.eat_kw("partition") {
            self.expect_kw("by")?;
            loop {
                partition_by.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.parse_expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push((e, asc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let frame = if self.peek().is_kw("rows") || self.peek().is_kw("range") {
            let units = if self.eat_kw("rows") {
                FrameUnits::Rows
            } else {
                self.expect_kw("range")?;
                FrameUnits::Range
            };
            if self.eat_kw("between") {
                let start = self.parse_frame_bound()?;
                self.expect_kw("and")?;
                let end = self.parse_frame_bound()?;
                Some(FrameSpec { units, start, end })
            } else {
                // `ROWS n PRECEDING` shorthand: frame is (bound, CURRENT ROW).
                let start = self.parse_frame_bound()?;
                Some(FrameSpec {
                    units,
                    start,
                    end: FrameBound::CurrentRow,
                })
            }
        } else {
            None
        };
        Ok(WindowSpec {
            partition_by,
            order_by,
            frame,
        })
    }

    fn parse_frame_bound(&mut self) -> Result<FrameBound> {
        if self.eat_kw("unbounded") {
            if self.eat_kw("preceding") {
                return Ok(FrameBound::UnboundedPreceding);
            }
            self.expect_kw("following")?;
            return Ok(FrameBound::UnboundedFollowing);
        }
        if self.eat_kw("current") {
            self.expect_kw("row")?;
            return Ok(FrameBound::CurrentRow);
        }
        match self.next() {
            Token::Int(v) if v >= 0 => {
                if self.eat_kw("preceding") {
                    Ok(FrameBound::Preceding(v))
                } else {
                    self.expect_kw("following")?;
                    Ok(FrameBound::Following(v))
                }
            }
            other => Err(Error::Parse(format!("bad frame bound {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_select() {
        let q = parse_query("select a, b as bb from t where a > 1 and b = 'x' limit 5").unwrap();
        assert_eq!(q.body.items.len(), 2);
        assert_eq!(q.body.from[0].name, "t");
        assert!(q.body.where_clause.is_some());
        assert_eq!(q.body.limit, Some(5));
    }

    #[test]
    fn parse_wildcard_and_distinct() {
        let q = parse_query("select distinct * from t").unwrap();
        assert!(q.body.distinct);
        assert_eq!(q.body.items, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn parse_comma_join_with_aliases() {
        let q = parse_query("select c.epc from caser c, locs l1, locs l2 where c.biz_loc = l1.gln")
            .unwrap();
        assert_eq!(q.body.from.len(), 3);
        assert_eq!(q.body.from[1].effective_alias(), "l1");
        assert_eq!(q.body.from[2].effective_alias(), "l2");
    }

    #[test]
    fn parse_group_and_aggregates() {
        let q = parse_query(
            "select p.m, count(distinct s.type), avg(rtime - prev_time) from t group by p.m",
        )
        .unwrap();
        assert_eq!(q.body.group_by.len(), 1);
        let SelectItem::Expr { expr, .. } = &q.body.items[1] else {
            panic!()
        };
        let AstExpr::Function { name, distinct, .. } = expr else {
            panic!("not a function")
        };
        assert_eq!(name, "count");
        assert!(distinct);
    }

    #[test]
    fn parse_window_function() {
        let q = parse_query(
            "select max(biz_loc) over (partition by epc order by rtime asc \
             rows between 1 preceding and 1 preceding) as prev_loc from r",
        )
        .unwrap();
        let SelectItem::Expr { expr, alias } = &q.body.items[0] else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("prev_loc"));
        let AstExpr::Function { over: Some(w), .. } = expr else {
            panic!("expected window")
        };
        assert_eq!(w.partition_by.len(), 1);
        let f = w.frame.as_ref().unwrap();
        assert_eq!(f.start, FrameBound::Preceding(1));
        assert_eq!(f.end, FrameBound::Preceding(1));
    }

    #[test]
    fn parse_range_frame() {
        let q = parse_query(
            "select max(x) over (partition by epc order by rtime \
             range between 1 following and 300 following) as h from r",
        )
        .unwrap();
        let SelectItem::Expr { expr, .. } = &q.body.items[0] else {
            panic!()
        };
        let AstExpr::Function { over: Some(w), .. } = expr else {
            panic!()
        };
        let f = w.frame.as_ref().unwrap();
        assert_eq!(f.units, FrameUnits::Range);
        assert_eq!(f.end, FrameBound::Following(300));
    }

    #[test]
    fn parse_with_clause() {
        let q = parse_query(
            "with v1 as (select * from r where rtime < 10) \
             select * from v1 where rtime > 5",
        )
        .unwrap();
        assert_eq!(q.ctes.len(), 1);
        assert_eq!(q.ctes[0].0, "v1");
    }

    #[test]
    fn parse_case_when() {
        let e = parse_expr("case when reader = 'rX' then 1 else 0 end").unwrap();
        let AstExpr::Case {
            branches,
            else_expr,
        } = e
        else {
            panic!()
        };
        assert_eq!(branches.len(), 1);
        assert!(else_expr.is_some());
    }

    #[test]
    fn parse_in_between_isnull() {
        let e = parse_expr("a in (1, 2, 3)").unwrap();
        assert!(matches!(e, AstExpr::InList { negated: false, .. }));
        let e = parse_expr("a not in ('x')").unwrap();
        assert!(matches!(e, AstExpr::InList { negated: true, .. }));
        let e = parse_expr("a between 1 and 5").unwrap();
        assert!(matches!(e, AstExpr::Between { negated: false, .. }));
        let e = parse_expr("a is not null").unwrap();
        assert!(matches!(e, AstExpr::IsNull { negated: true, .. }));
    }

    #[test]
    fn parse_precedence() {
        // a = 1 or b = 2 and c = 3  ==  a = 1 or (b = 2 and c = 3)
        let e = parse_expr("a = 1 or b = 2 and c = 3").unwrap();
        let AstExpr::Binary { op, .. } = &e else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Or);
        // 1 + 2 * 3
        let e = parse_expr("1 + 2 * 3").unwrap();
        let AstExpr::Binary { op, .. } = &e else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Plus);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("select from t").is_err());
        assert!(parse_query("select a t").is_err()); // missing FROM
        assert!(parse_query("select a from").is_err());
        assert!(parse_expr("a between 1").is_err());
        assert!(parse_expr("case end").is_err());
    }

    #[test]
    fn negative_literal() {
        let e = parse_expr("a > -5").unwrap();
        let AstExpr::Binary { right, .. } = e else {
            panic!()
        };
        assert_eq!(*right, AstExpr::Literal(Value::Int(-5)));
    }

    #[test]
    fn count_star() {
        let e = parse_expr("count(*)").unwrap();
        assert!(matches!(
            e,
            AstExpr::Function {
                args: None,
                distinct: false,
                ..
            }
        ));
    }
}
