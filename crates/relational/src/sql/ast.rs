//! SQL abstract syntax tree.

use crate::value::Value;

/// A parsed query: optional CTEs plus a select body, optionally pinned
/// to a historical epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub ctes: Vec<(String, Query)>,
    pub body: Select,
    /// `AS OF EPOCH <n>`: run against the snapshot as of global epoch
    /// `n`. Only a durable query service can satisfy this — it strips
    /// the clause and materializes the historical snapshot; the planner
    /// rejects any query that still carries it.
    pub as_of: Option<u64>,
}

/// A SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub order_by: Vec<(AstExpr, bool)>,
    pub limit: Option<usize>,
}

/// One select-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

/// A table factor in FROM: `name [AS] alias`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this factor is referenced by in the query.
    pub fn effective_alias(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Comparison / arithmetic / logical operators in the AST (mapped to
/// [`crate::expr::BinaryOp`] at planning time).
pub use crate::expr::BinaryOp as AstBinaryOp;

/// Scalar expression AST as parsed (before name resolution).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Possibly-qualified column name (`a` / `t.a`).
    Column(Option<String>, String),
    Literal(Value),
    Binary {
        left: Box<AstExpr>,
        op: AstBinaryOp,
        right: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    InList {
        expr: Box<AstExpr>,
        list: Vec<Value>,
        negated: bool,
    },
    Between {
        expr: Box<AstExpr>,
        low: Box<AstExpr>,
        high: Box<AstExpr>,
        negated: bool,
    },
    Case {
        branches: Vec<(AstExpr, AstExpr)>,
        else_expr: Option<Box<AstExpr>>,
    },
    /// Function call: aggregate (`count`, `sum`, `avg`, `min`, `max`),
    /// possibly with DISTINCT, possibly windowed via OVER.
    Function {
        name: String,
        /// `None` argument list means `f(*)`.
        args: Option<Vec<AstExpr>>,
        distinct: bool,
        over: Option<WindowSpec>,
    },
}

/// An OVER(...) specification.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    pub partition_by: Vec<AstExpr>,
    pub order_by: Vec<(AstExpr, bool)>,
    pub frame: Option<FrameSpec>,
}

/// Frame specification within OVER(...).
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSpec {
    pub units: crate::window::FrameUnits,
    pub start: crate::window::FrameBound,
    pub end: crate::window::FrameBound,
}
