//! Ordered secondary indexes.
//!
//! An [`OrderedIndex`] maps the values of one column to the row ids holding
//! them, kept in a B-tree so the executor can answer range scans
//! (`lo < col <= hi`) without reading the whole table — the mechanism behind
//! the paper's "scan caseR using the index on rtime" plans.

use crate::column::Column;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;

/// A `Value` wrapper with the engine's total order, usable as a B-tree key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexKey(pub Value);

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One endpoint of a range scan.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanBound {
    Unbounded,
    /// `>=` / `<=` depending on which side.
    Inclusive(Value),
    /// `>` / `<` depending on which side.
    Exclusive(Value),
}

impl ScanBound {
    fn to_lower(&self) -> Bound<IndexKey> {
        match self {
            ScanBound::Unbounded => Bound::Unbounded,
            ScanBound::Inclusive(v) => Bound::Included(IndexKey(v.clone())),
            ScanBound::Exclusive(v) => Bound::Excluded(IndexKey(v.clone())),
        }
    }

    fn to_upper(&self) -> Bound<IndexKey> {
        match self {
            ScanBound::Unbounded => Bound::Unbounded,
            ScanBound::Inclusive(v) => Bound::Included(IndexKey(v.clone())),
            ScanBound::Exclusive(v) => Bound::Excluded(IndexKey(v.clone())),
        }
    }
}

/// An ordered index over a single column. NULLs are not indexed (SQL
/// predicates never match them).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OrderedIndex {
    entries: BTreeMap<IndexKey, Vec<u32>>,
    indexed_rows: usize,
    /// Rows examined so far (nulls included) — the append watermark.
    /// [`OrderedIndex::extend`] resumes from here, so ingest batches extend
    /// the index incrementally instead of rebuilding it.
    covered_rows: usize,
}

impl OrderedIndex {
    /// Build an index over a column.
    pub fn build(column: &Column) -> Self {
        let mut idx = OrderedIndex::default();
        idx.extend(column);
        idx
    }

    /// Index the rows appended since the last `build`/`extend` — those at
    /// positions `covered_rows..column.len()`. Appending in row order pushes
    /// ascending row ids per key, so an extended index is identical to one
    /// rebuilt from scratch.
    pub fn extend(&mut self, column: &Column) {
        for i in self.covered_rows..column.len() {
            if column.is_null(i) {
                continue;
            }
            self.entries
                .entry(IndexKey(column.value(i)))
                .or_default()
                .push(i as u32);
            self.indexed_rows += 1;
        }
        self.covered_rows = column.len();
    }

    /// Rows examined so far (the append watermark).
    pub fn covered_rows(&self) -> usize {
        self.covered_rows
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }

    /// Number of indexed (non-null) rows.
    pub fn indexed_rows(&self) -> usize {
        self.indexed_rows
    }

    /// Row ids for an exact key.
    pub fn lookup(&self, v: &Value) -> &[u32] {
        self.entries
            .get(&IndexKey(v.clone()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Row ids in a range, ascending by row id within the result.
    pub fn range_scan(&self, lower: &ScanBound, upper: &ScanBound) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .entries
            .range((lower.to_lower(), upper.to_upper()))
            .flat_map(|(_, rows)| rows.iter().map(|&r| r as usize))
            .collect();
        // Row-id order keeps downstream operators cache-friendly and makes
        // results deterministic regardless of key distribution.
        out.sort_unstable();
        out
    }

    /// Estimate the fraction of indexed rows falling in a range, by walking
    /// the B-tree (exact, since we are in memory).
    pub fn range_selectivity(&self, lower: &ScanBound, upper: &ScanBound) -> f64 {
        if self.indexed_rows == 0 {
            return 0.0;
        }
        let hits: usize = self
            .entries
            .range((lower.to_lower(), upper.to_upper()))
            .map(|(_, rows)| rows.len())
            .sum();
        hits as f64 / self.indexed_rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::DataType;

    fn col() -> Column {
        Column::from_values(
            DataType::Int,
            &[
                Value::Int(5),
                Value::Int(1),
                Value::Null,
                Value::Int(5),
                Value::Int(9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_skips_nulls() {
        let idx = OrderedIndex::build(&col());
        assert_eq!(idx.indexed_rows(), 4);
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn exact_lookup() {
        let idx = OrderedIndex::build(&col());
        assert_eq!(idx.lookup(&Value::Int(5)), &[0, 3]);
        assert!(idx.lookup(&Value::Int(7)).is_empty());
    }

    #[test]
    fn range_scan_bounds() {
        let idx = OrderedIndex::build(&col());
        assert_eq!(
            idx.range_scan(
                &ScanBound::Inclusive(Value::Int(1)),
                &ScanBound::Exclusive(Value::Int(9))
            ),
            vec![0, 1, 3]
        );
        assert_eq!(
            idx.range_scan(&ScanBound::Exclusive(Value::Int(5)), &ScanBound::Unbounded),
            vec![4]
        );
        assert_eq!(
            idx.range_scan(&ScanBound::Unbounded, &ScanBound::Unbounded),
            vec![0, 1, 3, 4]
        );
    }

    #[test]
    fn selectivity_is_exact() {
        let idx = OrderedIndex::build(&col());
        let s = idx.range_selectivity(&ScanBound::Inclusive(Value::Int(5)), &ScanBound::Unbounded);
        assert!((s - 0.75).abs() < 1e-12);
    }

    #[test]
    fn extend_matches_full_rebuild() {
        let all = col();
        // Build over a prefix, then extend with the appended rows.
        let prefix = all.take(&[0, 1]);
        let mut incremental = OrderedIndex::build(&prefix);
        assert_eq!(incremental.covered_rows(), 2);
        incremental.extend(&all);
        assert_eq!(incremental, OrderedIndex::build(&all));
        assert_eq!(incremental.covered_rows(), 5);
        // Extending again is a no-op.
        let before = incremental.clone();
        incremental.extend(&all);
        assert_eq!(incremental, before);
    }

    #[test]
    fn string_keys() {
        let c = Column::from_values(
            DataType::Str,
            &[Value::str("b"), Value::str("a"), Value::str("b")],
        )
        .unwrap();
        let idx = OrderedIndex::build(&c);
        assert_eq!(idx.lookup(&Value::str("b")), &[0, 2]);
        assert_eq!(
            idx.range_scan(
                &ScanBound::Inclusive(Value::str("a")),
                &ScanBound::Inclusive(Value::str("a"))
            ),
            vec![1]
        );
    }
}
