//! Plan optimization.
//!
//! Two rewrites matter for reproducing the paper's plan shapes:
//!
//! 1. **Predicate pushdown** — filters are merged into scans (enabling index
//!    range access) and pushed through joins to the side they reference.
//! 2. **Order sharing** (redundant-sort elimination) — a `Sort` whose keys
//!    are already provided by its input is removed, and a `Window` whose
//!    input is already sorted by its (partition, order) requirement is marked
//!    `presorted`. This is what makes q1_e pay for *one* sort while the
//!    cleansing rule and the dwell analysis both need (epc, rtime) order
//!    (paper §6.2), and q2_e pay for an extra sort because grouping and
//!    cleansing need different orders.

use crate::expr::{conjoin, split_conjuncts, Expr};
use crate::plan::{window_sort_keys, LogicalPlan};
use crate::schema::Schema;
use crate::table::Catalog;

/// Optimizer feature toggles (for ablation experiments).
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    pub enable_pushdown: bool,
    pub enable_order_sharing: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            enable_pushdown: true,
            enable_order_sharing: true,
        }
    }
}

/// Optimize a plan (idempotent).
pub fn optimize(plan: LogicalPlan, catalog: &Catalog, config: &OptimizerConfig) -> LogicalPlan {
    let plan = if config.enable_pushdown {
        pushdown(plan, catalog)
    } else {
        plan
    };
    if config.enable_order_sharing {
        share_orders(plan, catalog)
    } else {
        plan
    }
}

/// Optimize with default configuration.
pub fn optimize_default(plan: LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    optimize(plan, catalog, &OptimizerConfig::default())
}

fn map_inputs(plan: LogicalPlan, f: &mut impl FnMut(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(f(*input)),
            exprs,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        LogicalPlan::Window {
            input,
            partition_by,
            order_by,
            exprs,
            presorted,
        } => LogicalPlan::Window {
            input: Box::new(f(*input)),
            partition_by,
            order_by,
            exprs,
            presorted,
        },
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            left_keys,
            right_keys,
            join_type,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)),
            group_by,
            aggs,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
        LogicalPlan::Union { inputs } => LogicalPlan::Union {
            inputs: inputs.into_iter().map(f).collect(),
        },
        LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
            input: Box::new(f(*input)),
            fetch,
        },
        LogicalPlan::SubqueryAlias { input, alias } => LogicalPlan::SubqueryAlias {
            input: Box::new(f(*input)),
            alias,
        },
    }
}

/// Does `expr` only reference columns resolvable in `schema`?
fn refs_within(expr: &Expr, schema: &Schema) -> bool {
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    cols.iter()
        .all(|c| schema.index_of(c.qualifier.as_deref(), &c.name).is_ok())
}

/// Push filter predicates down toward scans.
fn pushdown(plan: LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    // Recurse first so children are already in pushed form.
    let plan = map_inputs(plan, &mut |p| pushdown(p, catalog));
    match plan {
        LogicalPlan::Filter { input, predicate } => push_filter(*input, predicate, catalog),
        other => other,
    }
}

/// Push `predicate` into `input` as far as semantics allow.
fn push_filter(input: LogicalPlan, predicate: Expr, catalog: &Catalog) -> LogicalPlan {
    match input {
        // Merge into the scan's pushed filter (index access handles it).
        LogicalPlan::Scan {
            table,
            alias,
            filter,
        } => {
            let combined = match filter {
                Some(f) => f.and(predicate),
                None => predicate,
            };
            LogicalPlan::Scan {
                table,
                alias,
                filter: Some(combined),
            }
        }
        // Collapse stacked filters.
        LogicalPlan::Filter {
            input,
            predicate: inner,
        } => push_filter(*input, inner.and(predicate), catalog),
        // Filters commute with sorts.
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_filter(*input, predicate, catalog)),
            keys,
        },
        // Push each conjunct to the join side whose schema covers it.
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
        } => {
            let lschema = left.schema(catalog);
            let rschema = right.schema(catalog);
            let (Ok(ls), Ok(rs)) = (lschema, rschema) else {
                // Cannot resolve schemas; keep the filter above the join.
                return LogicalPlan::Join {
                    left,
                    right,
                    left_keys,
                    right_keys,
                    join_type,
                }
                .filter(predicate);
            };
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut keep = Vec::new();
            for c in split_conjuncts(&predicate) {
                if refs_within(&c, &ls) {
                    to_left.push(c);
                } else if join_type == crate::join::JoinType::Inner && refs_within(&c, &rs) {
                    to_right.push(c);
                } else {
                    keep.push(c);
                }
            }
            let new_left = match conjoin(to_left) {
                Some(p) => push_filter(*left, p, catalog),
                None => *left,
            };
            let new_right = match conjoin(to_right) {
                Some(p) => push_filter(*right, p, catalog),
                None => *right,
            };
            let joined = LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                left_keys,
                right_keys,
                join_type,
            };
            match conjoin(keep) {
                Some(p) => joined.filter(p),
                None => joined,
            }
        }
        // Strip the alias from predicate columns and push inside.
        LogicalPlan::SubqueryAlias { input, alias } => {
            let a = alias.clone();
            let stripped = predicate.transform(&|e| match e {
                Expr::Column(c) if c.qualifier.as_deref() == Some(a.as_str()) => {
                    Expr::Column(crate::expr::ColumnRef {
                        qualifier: None,
                        name: c.name,
                    })
                }
                other => other,
            });
            LogicalPlan::SubqueryAlias {
                input: Box::new(push_filter(*input, stripped, catalog)),
                alias,
            }
        }
        // Push a copy of the predicate into every UNION branch (schemas are
        // positionally compatible; resolve by name in each branch).
        LogicalPlan::Union { inputs } => {
            let pushable = inputs.iter().all(|i| {
                i.schema(catalog)
                    .map(|s| refs_within(&predicate, &s))
                    .unwrap_or(false)
            });
            if pushable {
                LogicalPlan::Union {
                    inputs: inputs
                        .into_iter()
                        .map(|i| push_filter(i, predicate.clone(), catalog))
                        .collect(),
                }
            } else {
                LogicalPlan::Union { inputs }.filter(predicate)
            }
        }
        // Push through a projection when every referenced column is a simple
        // pass-through (possibly renamed) of an input column.
        LogicalPlan::Project { input, exprs } => {
            let mut cols = Vec::new();
            predicate.referenced_columns(&mut cols);
            let mapping: Option<Vec<(String, Expr)>> = cols
                .iter()
                .map(|c| {
                    exprs
                        .iter()
                        .find(|(_, alias)| alias.eq_ignore_ascii_case(&c.flat_name()))
                        .and_then(|(e, _)| match e {
                            Expr::Column(_) => Some((c.flat_name(), e.clone())),
                            _ => None,
                        })
                })
                .collect();
            match mapping {
                Some(map) => {
                    let rewritten = predicate.transform(&|e| match &e {
                        Expr::Column(c) => map
                            .iter()
                            .find(|(flat, _)| flat.eq_ignore_ascii_case(&c.flat_name()))
                            .map(|(_, src)| src.clone())
                            .unwrap_or(e),
                        _ => e,
                    });
                    LogicalPlan::Project {
                        input: Box::new(push_filter(*input, rewritten, catalog)),
                        exprs,
                    }
                }
                None => LogicalPlan::Project { input, exprs }.filter(predicate),
            }
        }
        // Window, Aggregate, Distinct, Limit: pushing a
        // filter below can change semantics (window frames, group contents,
        // row counts), so the filter stays above.
        other => other.filter(predicate),
    }
}

/// Compare orderings by *resolved column position* against the given schema,
/// so that qualifier differences introduced by aliasing (`epc` vs `v1.epc`)
/// do not defeat order sharing. Falls back to syntactic comparison for
/// non-column sort keys.
fn ordering_satisfies_resolved(
    provided: &[crate::sort::SortKey],
    required: &[crate::sort::SortKey],
    schema: Option<&Schema>,
) -> bool {
    if required.len() > provided.len() {
        return false;
    }
    provided.iter().zip(required).all(|(p, r)| {
        if p.ascending != r.ascending {
            return false;
        }
        if p.expr == r.expr {
            return true;
        }
        let Some(schema) = schema else { return false };
        match (&p.expr, &r.expr) {
            (Expr::Column(a), Expr::Column(b)) => {
                let ia = schema.index_of(a.qualifier.as_deref(), &a.name);
                let ib = schema.index_of(b.qualifier.as_deref(), &b.name);
                matches!((ia, ib), (Ok(x), Ok(y)) if x == y)
            }
            _ => false,
        }
    })
}

/// Remove redundant sorts; mark windows whose required order is available.
fn share_orders(plan: LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    let plan = map_inputs(plan, &mut |p| share_orders(p, catalog));
    match plan {
        LogicalPlan::Sort { input, keys } => {
            let schema = input.schema(catalog).ok();
            if ordering_satisfies_resolved(&input.output_ordering(), &keys, schema.as_deref()) {
                *input
            } else {
                LogicalPlan::Sort { input, keys }
            }
        }
        LogicalPlan::Window {
            input,
            partition_by,
            order_by,
            exprs,
            presorted,
        } => {
            let required = window_sort_keys(&partition_by, &order_by);
            let schema = input.schema(catalog).ok();
            let presorted = presorted
                || ordering_satisfies_resolved(
                    &input.output_ordering(),
                    &required,
                    schema.as_deref(),
                );
            LogicalPlan::Window {
                input,
                partition_by,
                order_by,
                exprs,
                presorted,
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{schema_ref, Batch};
    use crate::join::JoinType;
    use crate::schema::Field;
    use crate::sort::SortKey;
    use crate::table::Table;
    use crate::value::{DataType, Value};
    use crate::window::{Frame, FrameBound, WindowExpr, WindowFuncKind};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
        ]));
        let b = Batch::from_rows(
            schema,
            &[vec![Value::str("e1"), Value::Int(1), Value::str("x")]],
        )
        .unwrap();
        cat.register(Table::new("r", b));
        let dim = schema_ref(Schema::new(vec![
            Field::new("gln", DataType::Str),
            Field::new("site", DataType::Str),
        ]));
        let b = Batch::from_rows(dim, &[vec![Value::str("x"), Value::str("dc")]]).unwrap();
        cat.register(Table::new("locs", b));
        cat
    }

    #[test]
    fn filter_merges_into_scan() {
        let cat = catalog();
        let plan = LogicalPlan::scan("r").filter(Expr::col("rtime").lt(Expr::lit(5i64)));
        let opt = optimize_default(plan, &cat);
        match opt {
            LogicalPlan::Scan {
                filter: Some(_), ..
            } => {}
            other => panic!("expected pushed scan, got:\n{other}"),
        }
    }

    #[test]
    fn stacked_filters_collapse() {
        let cat = catalog();
        let plan = LogicalPlan::scan("r")
            .filter(Expr::col("rtime").lt(Expr::lit(5i64)))
            .filter(Expr::col("biz_loc").eq(Expr::lit("x")));
        let opt = optimize_default(plan, &cat);
        match &opt {
            LogicalPlan::Scan {
                filter: Some(f), ..
            } => {
                assert_eq!(split_conjuncts(f).len(), 2);
            }
            other => panic!("expected pushed scan, got:\n{other}"),
        }
    }

    #[test]
    fn join_pushdown_splits_sides() {
        let cat = catalog();
        let plan = LogicalPlan::scan_as("r", "c")
            .join(
                LogicalPlan::scan_as("locs", "l"),
                vec![Expr::col("c.biz_loc")],
                vec![Expr::col("l.gln")],
                JoinType::Inner,
            )
            .filter(
                Expr::col("c.rtime")
                    .lt(Expr::lit(5i64))
                    .and(Expr::col("l.site").eq(Expr::lit("dc"))),
            );
        let opt = optimize_default(plan, &cat);
        let LogicalPlan::Join { left, right, .. } = &opt else {
            panic!("expected join at root, got:\n{opt}");
        };
        assert!(matches!(
            left.as_ref(),
            LogicalPlan::Scan {
                filter: Some(_),
                ..
            }
        ));
        assert!(matches!(
            right.as_ref(),
            LogicalPlan::Scan {
                filter: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn semi_join_does_not_push_to_right() {
        let cat = catalog();
        let plan = LogicalPlan::scan_as("r", "c")
            .join(
                LogicalPlan::scan_as("locs", "l"),
                vec![Expr::col("c.biz_loc")],
                vec![Expr::col("l.gln")],
                JoinType::LeftSemi,
            )
            .filter(Expr::col("c.rtime").lt(Expr::lit(5i64)));
        let opt = optimize_default(plan, &cat);
        let LogicalPlan::Join { left, .. } = &opt else {
            panic!("expected join at root, got:\n{opt}");
        };
        assert!(matches!(
            left.as_ref(),
            LogicalPlan::Scan {
                filter: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn redundant_sort_removed() {
        let cat = catalog();
        let keys = vec![
            SortKey::asc(Expr::col("epc")),
            SortKey::asc(Expr::col("rtime")),
        ];
        let plan = LogicalPlan::scan("r")
            .sort(keys.clone())
            .sort(vec![SortKey::asc(Expr::col("epc"))]);
        let opt = optimize_default(plan, &cat);
        // The outer 1-key sort is satisfied by the inner 2-key sort.
        match &opt {
            LogicalPlan::Sort { keys: k, input } => {
                assert_eq!(k, &keys);
                assert!(matches!(input.as_ref(), LogicalPlan::Scan { .. }));
            }
            other => panic!("expected single sort, got:\n{other}"),
        }
    }

    #[test]
    fn window_becomes_presorted_after_matching_window() {
        let cat = catalog();
        let we = |alias: &str| WindowExpr {
            func: WindowFuncKind::Count,
            arg: None,
            frame: Frame::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow),
            alias: alias.into(),
        };
        // Two windows with the same (partition, order): second shares the sort.
        let plan = LogicalPlan::scan("r")
            .window(
                vec![Expr::col("epc")],
                vec![SortKey::asc(Expr::col("rtime"))],
                vec![we("a")],
            )
            .window(
                vec![Expr::col("epc")],
                vec![SortKey::asc(Expr::col("rtime"))],
                vec![we("b")],
            );
        let opt = optimize_default(plan, &cat);
        let LogicalPlan::Window {
            presorted, input, ..
        } = &opt
        else {
            panic!("expected window at root");
        };
        assert!(*presorted);
        let LogicalPlan::Window {
            presorted: inner_ps,
            ..
        } = input.as_ref()
        else {
            panic!("expected inner window");
        };
        assert!(!inner_ps);
    }

    #[test]
    fn order_sharing_can_be_disabled() {
        let cat = catalog();
        let plan = LogicalPlan::scan("r")
            .sort(vec![SortKey::asc(Expr::col("epc"))])
            .sort(vec![SortKey::asc(Expr::col("epc"))]);
        let cfg = OptimizerConfig {
            enable_pushdown: true,
            enable_order_sharing: false,
        };
        let opt = optimize(plan, &cat, &cfg);
        // Both sorts remain.
        let LogicalPlan::Sort { input, .. } = &opt else {
            panic!()
        };
        assert!(matches!(input.as_ref(), LogicalPlan::Sort { .. }));
    }

    #[test]
    fn filter_not_pushed_below_window() {
        let cat = catalog();
        let plan = LogicalPlan::scan("r")
            .window(
                vec![Expr::col("epc")],
                vec![SortKey::asc(Expr::col("rtime"))],
                vec![WindowExpr {
                    func: WindowFuncKind::Count,
                    arg: None,
                    frame: Frame::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow),
                    alias: "n".into(),
                }],
            )
            .filter(Expr::col("rtime").lt(Expr::lit(5i64)));
        let opt = optimize_default(plan, &cat);
        assert!(matches!(opt, LogicalPlan::Filter { .. }));
    }
}
