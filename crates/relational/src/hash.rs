//! Vectorized hash machinery: batch hash kernels and normalized-key tables.
//!
//! Every hash-keyed operator in the engine (join build/probe, hash
//! aggregation, DISTINCT, the scatter-gather partial-aggregate merge, and
//! streaming aggregate maintenance) runs on the two primitives in this
//! module instead of `HashMap<Vec<Value>, _>`:
//!
//! * [`encode_keys`] — turns the key columns of a batch into an
//!   [`EncodedKeys`] block: one contiguous byte arena of *normalized keys*
//!   plus one 64-bit hash per row, computed column-at-a-time over the native
//!   `ColumnData` slices (selection-vector aware). Normalization guarantees
//!   **byte equality ⟺ structural `Value` equality**, so downstream tables
//!   never touch `Value` again — equality is a memcmp.
//! * [`RawKeyTable`] — an open-addressing table whose entries are
//!   `(u64 hash, arena range)`. Lookup compares raw hashes first and only
//!   memcmps the arena on a candidate hash match; a full-hash match with
//!   unequal bytes is counted as a genuine 64-bit collision.
//!
//! ## Determinism contract
//!
//! The hash function is seeded with process-independent constants (FNV-1a
//! over normalized bytes for strings, a splitmix64-style finalizer for
//! fixed-width values) so hashes — and therefore every counter derived from
//! them — are identical across processes, runs, and parallelism levels,
//! exactly like the shard router's FNV in `dc-service`. Slot indices are
//! assigned in first-insert order, which keeps group output order equal to
//! the first-seen order the row-at-a-time oracle produces.
//!
//! ## Normalized encoding
//!
//! Each value encodes as a type tag byte (the same tags as the partitioner's
//! `canonical_bytes`: 0=NULL, 1=Bool, 2=Int, 3=Double, 4=Str) followed by a
//! fixed-width payload (Bool: 1 byte; Int: 8-byte LE; Double: 8-byte LE of
//! `to_bits`, matching `Value`'s structural equality for doubles) or a
//! u32-LE length prefix plus bytes for strings. When every key column is
//! fixed-width the arena uses a constant row stride (NULL pads with zeros);
//! otherwise rows are length-prefix packed. Both layouts produce identical
//! per-value bytes for non-NULL values, so keys encoded by different batches
//! (join build vs probe) still compare correctly. Either way the whole block
//! takes O(1) buffer allocations — never one per row.

use crate::column::{Column, ColumnData};
use crate::error::{Error, Result};
use crate::value::Value;

/// Work counters for the hash path. Chunk-size and parallelism independent
/// (hashing happens inside breaker operators over fully collected input), so
/// they are safe to gate on in CI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashStats {
    /// Per-value hash computations (rows × key columns).
    pub hash_ops: u64,
    /// Full 64-bit hash matches whose keys compared unequal.
    pub hash_collisions: u64,
    /// Arena memcmps performed on candidate (hash-equal) entries.
    pub probe_memcmps: u64,
    /// Bytes written into normalized-key arenas.
    pub key_bytes_encoded: u64,
}

impl HashStats {
    pub fn merge(&mut self, other: &HashStats) {
        self.hash_ops += other.hash_ops;
        self.hash_collisions += other.hash_collisions;
        self.probe_memcmps += other.probe_memcmps;
        self.key_bytes_encoded += other.key_bytes_encoded;
    }
}

/// How NULL key parts behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NullKeys {
    /// NULLs compare equal to each other (GROUP BY / DISTINCT semantics).
    Match,
    /// A row with any NULL key part never joins (SQL equi-join semantics);
    /// such rows are marked non-joinable instead of entering the table.
    Never,
}

// Type tags — shared with `dc_service::partition::canonical_bytes` so the
// normalized encoding stays one vocabulary across the system.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_DOUBLE: u8 = 3;
const TAG_STR: u8 = 4;

/// Per-row hash seed. Arbitrary odd constant; fixed so hashes are
/// process-stable.
const HASH_SEED: u64 = 0x9e37_79b9_7f4a_7c15;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// splitmix64 finalizer: cheap, well-mixed, process-stable.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Fold one value hash into a row hash. Order-sensitive across key columns.
#[inline]
fn combine(row: u64, value: u64) -> u64 {
    mix(row ^ value)
}

#[inline]
fn hash_null() -> u64 {
    mix(TAG_NULL as u64)
}

#[inline]
fn hash_bool(v: bool) -> u64 {
    mix(((TAG_BOOL as u64) << 56) ^ v as u64)
}

#[inline]
fn hash_int(v: i64) -> u64 {
    mix(((TAG_INT as u64) << 56) ^ v as u64)
}

#[inline]
fn hash_double(v: f64) -> u64 {
    mix(((TAG_DOUBLE as u64) << 56) ^ v.to_bits())
}

#[inline]
fn hash_str(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix(((TAG_STR as u64) << 56) ^ h)
}

/// Hash a single scalar the same way the column kernels do.
#[inline]
pub fn hash_value(v: &Value) -> u64 {
    match v {
        Value::Null => hash_null(),
        Value::Bool(b) => hash_bool(*b),
        Value::Int(i) => hash_int(*i),
        Value::Double(d) => hash_double(*d),
        Value::Str(s) => hash_str(s),
    }
}

/// Arena layout of an [`EncodedKeys`] block.
#[derive(Debug)]
enum KeyLayout {
    /// All key columns are fixed-width: constant `stride` bytes per row.
    Fixed { stride: usize },
    /// At least one variable-width column: explicit row offsets (len n+1).
    Var { offsets: Vec<u32> },
}

/// The normalized keys of `n` rows: a byte arena, one 64-bit hash per row,
/// and (for join semantics) a joinability mask. Produced by [`encode_keys`]
/// with O(1) buffer allocations regardless of row count.
#[derive(Debug)]
pub struct EncodedKeys {
    bytes: Vec<u8>,
    layout: KeyLayout,
    hashes: Vec<u64>,
    /// `None` = every row joinable. Only materialized under
    /// [`NullKeys::Never`] when some key part is actually NULL.
    non_joinable: Option<Vec<bool>>,
    rows: usize,
    /// Buffer allocations performed while encoding (asserted O(1) by the
    /// hash-kernel smoke bench).
    alloc_events: u64,
}

impl EncodedKeys {
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn hash(&self, i: usize) -> u64 {
        self.hashes[i]
    }

    /// The normalized key bytes of row `i`.
    #[inline]
    pub fn key(&self, i: usize) -> &[u8] {
        match &self.layout {
            KeyLayout::Fixed { stride } => &self.bytes[i * stride..(i + 1) * stride],
            KeyLayout::Var { offsets } => &self.bytes[offsets[i] as usize..offsets[i + 1] as usize],
        }
    }

    /// False when the row has a NULL key part under [`NullKeys::Never`].
    #[inline]
    pub fn is_joinable(&self, i: usize) -> bool {
        match &self.non_joinable {
            Some(mask) => !mask[i],
            None => true,
        }
    }

    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }
}

/// Per-column byte width in the fixed layout (tag byte included), or `None`
/// for variable-width columns.
fn fixed_width(data: &ColumnData) -> Option<usize> {
    match data {
        ColumnData::Bool(_) => Some(1 + 1),
        ColumnData::Int(_) | ColumnData::Double(_) => Some(1 + 8),
        ColumnData::Str(_) => None,
    }
}

/// Map a logical row index through the optional selection vector.
#[inline]
fn phys(sel: Option<&[u32]>, k: usize) -> usize {
    match sel {
        Some(rows) => rows[k] as usize,
        None => k,
    }
}

/// Encode the key columns of `rows` logical rows into an [`EncodedKeys`]
/// block. `sel`, when present, maps logical row `k` to the physical
/// (window-relative) row of every column — the same convention the
/// expression kernels use; dense columns (e.g. from [`Expr::evaluate`],
/// which already resolves the batch selection) pass `None`.
///
/// With zero key columns every row encodes to the empty key (one group) —
/// the global-aggregation case.
///
/// [`Expr::evaluate`]: crate::expr::Expr::evaluate
pub fn encode_keys(
    cols: &[Column],
    sel: Option<&[u32]>,
    rows: usize,
    nulls: NullKeys,
    stats: &mut HashStats,
) -> Result<EncodedKeys> {
    if let Some(s) = sel {
        if s.len() != rows {
            return Err(Error::Internal(format!(
                "encode_keys: selection length {} != rows {rows}",
                s.len()
            )));
        }
    }
    let need = sel
        .and_then(|s| s.iter().max().map(|&m| m as usize + 1))
        .unwrap_or(rows);
    for c in cols {
        if c.len() < need {
            return Err(Error::Internal(format!(
                "encode_keys: key column of {} rows, need {need}",
                c.len()
            )));
        }
    }
    let mut alloc_events = 0u64;
    let mut hashes = vec![HASH_SEED; rows];
    alloc_events += 1;
    let mut non_joinable: Option<Vec<bool>> = None;

    let fixed: Option<usize> = cols
        .iter()
        .map(|c| fixed_width(c.data()))
        .try_fold(0usize, |acc, w| w.map(|w| acc + w));

    let mark_null = |mask: &mut Option<Vec<bool>>, events: &mut u64, k: usize| {
        if nulls == NullKeys::Never {
            let m = mask.get_or_insert_with(|| {
                *events += 1;
                vec![false; rows]
            });
            m[k] = true;
        }
    };

    let (bytes, layout) = if let Some(stride) = fixed {
        // Fixed layout: pre-zeroed arena, constant stride. NULL cells keep
        // their zero padding (tag 0 is already there), so the null branch
        // writes nothing.
        let mut bytes = vec![0u8; stride * rows];
        if stride * rows > 0 {
            alloc_events += 1;
        }
        let mut col_off = 0usize;
        for c in cols {
            let w = fixed_width(c.data()).expect("fixed layout implies fixed width");
            let nullable = c.has_nulls();
            match c.data() {
                ColumnData::Bool(_) => {
                    let vals = c.bool_values().expect("bool column");
                    for (k, h) in hashes.iter_mut().enumerate() {
                        let i = phys(sel, k);
                        let base = k * stride + col_off;
                        if nullable && c.is_null(i) {
                            *h = combine(*h, hash_null());
                            mark_null(&mut non_joinable, &mut alloc_events, k);
                        } else {
                            bytes[base] = TAG_BOOL;
                            bytes[base + 1] = vals[i] as u8;
                            *h = combine(*h, hash_bool(vals[i]));
                        }
                    }
                }
                ColumnData::Int(_) => {
                    let vals = c.int_values().expect("int column");
                    for (k, h) in hashes.iter_mut().enumerate() {
                        let i = phys(sel, k);
                        let base = k * stride + col_off;
                        if nullable && c.is_null(i) {
                            *h = combine(*h, hash_null());
                            mark_null(&mut non_joinable, &mut alloc_events, k);
                        } else {
                            bytes[base] = TAG_INT;
                            bytes[base + 1..base + 9].copy_from_slice(&vals[i].to_le_bytes());
                            *h = combine(*h, hash_int(vals[i]));
                        }
                    }
                }
                ColumnData::Double(_) => {
                    let vals = c.double_values().expect("double column");
                    for (k, h) in hashes.iter_mut().enumerate() {
                        let i = phys(sel, k);
                        let base = k * stride + col_off;
                        if nullable && c.is_null(i) {
                            *h = combine(*h, hash_null());
                            mark_null(&mut non_joinable, &mut alloc_events, k);
                        } else {
                            bytes[base] = TAG_DOUBLE;
                            bytes[base + 1..base + 9]
                                .copy_from_slice(&vals[i].to_bits().to_le_bytes());
                            *h = combine(*h, hash_double(vals[i]));
                        }
                    }
                }
                ColumnData::Str(_) => unreachable!("str column in fixed layout"),
            }
            col_off += w;
        }
        (bytes, KeyLayout::Fixed { stride })
    } else {
        // Variable layout: length pass → prefix sum → column-at-a-time fill
        // through a per-row write cursor. Still O(1) allocations.
        let mut offsets = vec![0u32; rows + 1];
        alloc_events += 1;
        for c in cols {
            match c.data() {
                ColumnData::Str(_) => {
                    let vals = c.str_values().expect("str column");
                    let nullable = c.has_nulls();
                    for (k, o) in offsets[1..].iter_mut().enumerate() {
                        let i = phys(sel, k);
                        *o += if nullable && c.is_null(i) {
                            1
                        } else {
                            1 + 4 + vals[i].len() as u32
                        };
                    }
                }
                other => {
                    let w = fixed_width(other).expect("non-str is fixed width") as u32;
                    if c.has_nulls() {
                        for (k, o) in offsets[1..].iter_mut().enumerate() {
                            *o += if c.is_null(phys(sel, k)) { 1 } else { w };
                        }
                    } else {
                        for o in &mut offsets[1..] {
                            *o += w;
                        }
                    }
                }
            }
        }
        for k in 1..=rows {
            offsets[k] += offsets[k - 1];
        }
        let total = offsets[rows] as usize;
        let mut bytes = vec![0u8; total];
        if total > 0 {
            alloc_events += 1;
        }
        let mut cursor: Vec<u32> = offsets[..rows].to_vec();
        if rows > 0 {
            alloc_events += 1;
        }
        for c in cols {
            let nullable = c.has_nulls();
            match c.data() {
                ColumnData::Bool(_) => {
                    let vals = c.bool_values().expect("bool column");
                    for (k, h) in hashes.iter_mut().enumerate() {
                        let i = phys(sel, k);
                        let at = cursor[k] as usize;
                        if nullable && c.is_null(i) {
                            bytes[at] = TAG_NULL;
                            cursor[k] += 1;
                            *h = combine(*h, hash_null());
                            mark_null(&mut non_joinable, &mut alloc_events, k);
                        } else {
                            bytes[at] = TAG_BOOL;
                            bytes[at + 1] = vals[i] as u8;
                            cursor[k] += 2;
                            *h = combine(*h, hash_bool(vals[i]));
                        }
                    }
                }
                ColumnData::Int(_) => {
                    let vals = c.int_values().expect("int column");
                    for (k, h) in hashes.iter_mut().enumerate() {
                        let i = phys(sel, k);
                        let at = cursor[k] as usize;
                        if nullable && c.is_null(i) {
                            bytes[at] = TAG_NULL;
                            cursor[k] += 1;
                            *h = combine(*h, hash_null());
                            mark_null(&mut non_joinable, &mut alloc_events, k);
                        } else {
                            bytes[at] = TAG_INT;
                            bytes[at + 1..at + 9].copy_from_slice(&vals[i].to_le_bytes());
                            cursor[k] += 9;
                            *h = combine(*h, hash_int(vals[i]));
                        }
                    }
                }
                ColumnData::Double(_) => {
                    let vals = c.double_values().expect("double column");
                    for (k, h) in hashes.iter_mut().enumerate() {
                        let i = phys(sel, k);
                        let at = cursor[k] as usize;
                        if nullable && c.is_null(i) {
                            bytes[at] = TAG_NULL;
                            cursor[k] += 1;
                            *h = combine(*h, hash_null());
                            mark_null(&mut non_joinable, &mut alloc_events, k);
                        } else {
                            bytes[at] = TAG_DOUBLE;
                            bytes[at + 1..at + 9].copy_from_slice(&vals[i].to_bits().to_le_bytes());
                            cursor[k] += 9;
                            *h = combine(*h, hash_double(vals[i]));
                        }
                    }
                }
                ColumnData::Str(_) => {
                    let vals = c.str_values().expect("str column");
                    for (k, h) in hashes.iter_mut().enumerate() {
                        let i = phys(sel, k);
                        let at = cursor[k] as usize;
                        if nullable && c.is_null(i) {
                            bytes[at] = TAG_NULL;
                            cursor[k] += 1;
                            *h = combine(*h, hash_null());
                            mark_null(&mut non_joinable, &mut alloc_events, k);
                        } else {
                            let s = vals[i].as_bytes();
                            bytes[at] = TAG_STR;
                            bytes[at + 1..at + 5].copy_from_slice(&(s.len() as u32).to_le_bytes());
                            bytes[at + 5..at + 5 + s.len()].copy_from_slice(s);
                            cursor[k] += 5 + s.len() as u32;
                            *h = combine(*h, hash_str(&vals[i]));
                        }
                    }
                }
            }
        }
        (bytes, KeyLayout::Var { offsets })
    };

    stats.hash_ops += (rows * cols.len()) as u64;
    stats.key_bytes_encoded += bytes.len() as u64;
    Ok(EncodedKeys {
        bytes,
        layout,
        hashes,
        non_joinable,
        rows,
        alloc_events,
    })
}

/// Encode one `Value` row into a reusable buffer (clears it first) and
/// return its row hash. Same normalized encoding and hash as the column
/// kernels — this is the single-row entry point streaming maintenance uses
/// for its group table.
pub fn encode_value_row(values: &[Value], out: &mut Vec<u8>) -> u64 {
    out.clear();
    let mut h = HASH_SEED;
    for v in values {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Double(d) => {
                out.push(TAG_DOUBLE);
                out.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
        h = combine(h, hash_value(v));
    }
    h
}

const EMPTY_BUCKET: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct TableEntry {
    hash: u64,
    start: u32,
    len: u32,
}

/// An open-addressing hash table over normalized key bytes.
///
/// Keys live in one contiguous arena; entries are `(hash, arena range)` and
/// dense slot indices are handed out in first-insert order, so a slot index
/// doubles as the deterministic "first seen" group ordinal. Lookups probe
/// linearly, compare the full 64-bit hash first, and memcmp the arena only
/// on a hash match — every memcmp is counted in
/// [`HashStats::probe_memcmps`], and a hash match with unequal bytes counts
/// one [`HashStats::hash_collisions`].
#[derive(Debug)]
pub struct RawKeyTable {
    arena: Vec<u8>,
    entries: Vec<TableEntry>,
    /// Power-of-two bucket array of slot indices; `EMPTY_BUCKET` = free.
    buckets: Vec<u32>,
}

impl Default for RawKeyTable {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl RawKeyTable {
    /// A table pre-sized for about `n` distinct keys.
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n.max(8) * 8 / 7).next_power_of_two();
        RawKeyTable {
            arena: Vec::new(),
            entries: Vec::with_capacity(n),
            buckets: vec![EMPTY_BUCKET; cap],
        }
    }

    /// Number of distinct keys inserted.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The normalized key bytes stored at `slot`.
    pub fn key_at(&self, slot: usize) -> &[u8] {
        let e = &self.entries[slot];
        &self.arena[e.start as usize..(e.start + e.len) as usize]
    }

    #[inline]
    fn entry_matches(&self, slot: u32, hash: u64, key: &[u8], stats: &mut HashStats) -> bool {
        let e = &self.entries[slot as usize];
        if e.hash != hash {
            return false;
        }
        stats.probe_memcmps += 1;
        if &self.arena[e.start as usize..(e.start + e.len) as usize] == key {
            true
        } else {
            stats.hash_collisions += 1;
            false
        }
    }

    /// Find-or-insert. Returns `(slot, inserted)`; slots are dense and
    /// first-insert ordered.
    pub fn insert(&mut self, hash: u64, key: &[u8], stats: &mut HashStats) -> (usize, bool) {
        if (self.entries.len() + 1) * 8 > self.buckets.len() * 7 {
            self.grow();
        }
        let mask = self.buckets.len() - 1;
        let mut b = (hash as usize) & mask;
        loop {
            let slot = self.buckets[b];
            if slot == EMPTY_BUCKET {
                let start = self.arena.len() as u32;
                self.arena.extend_from_slice(key);
                let idx = self.entries.len() as u32;
                self.entries.push(TableEntry {
                    hash,
                    start,
                    len: key.len() as u32,
                });
                self.buckets[b] = idx;
                return (idx as usize, true);
            }
            if self.entry_matches(slot, hash, key, stats) {
                return (slot as usize, false);
            }
            b = (b + 1) & mask;
        }
    }

    /// Lookup without insertion. Returns the slot of the matching key.
    pub fn get(&self, hash: u64, key: &[u8], stats: &mut HashStats) -> Option<usize> {
        let mask = self.buckets.len() - 1;
        let mut b = (hash as usize) & mask;
        loop {
            let slot = self.buckets[b];
            if slot == EMPTY_BUCKET {
                return None;
            }
            if self.entry_matches(slot, hash, key, stats) {
                return Some(slot as usize);
            }
            b = (b + 1) & mask;
        }
    }

    /// Double the bucket array and re-place every entry. No equality checks
    /// happen here (entries are already distinct), so growth never perturbs
    /// the memcmp/collision counters.
    fn grow(&mut self) {
        let new_cap = (self.buckets.len() * 2).max(16);
        let mut buckets = vec![EMPTY_BUCKET; new_cap];
        let mask = new_cap - 1;
        for (idx, e) in self.entries.iter().enumerate() {
            let mut b = (e.hash as usize) & mask;
            while buckets[b] != EMPTY_BUCKET {
                b = (b + 1) & mask;
            }
            buckets[b] = idx as u32;
        }
        self.buckets = buckets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn col(dt: DataType, vals: &[Value]) -> Column {
        Column::from_values(dt, vals).unwrap()
    }

    #[test]
    fn fixed_and_var_layouts_agree_per_value() {
        // The same Int values encode to identical bytes whether the row is
        // all-fixed or forced variable-width by a Str sibling.
        let ints = col(DataType::Int, &[Value::Int(7), Value::Int(-1)]);
        let strs = col(DataType::Str, &[Value::str("a"), Value::str("b")]);
        let mut st = HashStats::default();
        let fixed = encode_keys(
            std::slice::from_ref(&ints),
            None,
            2,
            NullKeys::Match,
            &mut st,
        )
        .unwrap();
        let var = encode_keys(&[ints, strs], None, 2, NullKeys::Match, &mut st).unwrap();
        // Int part of the var-layout key equals the whole fixed-layout key.
        assert_eq!(&var.key(0)[..9], fixed.key(0));
        assert_eq!(&var.key(1)[..9], fixed.key(1));
    }

    #[test]
    fn byte_equality_matches_structural_equality() {
        let rows = [
            vec![Value::Int(1), Value::str("x")],
            vec![Value::Int(1), Value::str("x")],
            vec![Value::Int(1), Value::str("y")],
            vec![Value::Null, Value::str("x")],
            vec![Value::Null, Value::str("x")],
            vec![Value::Int(0), Value::Null],
            vec![Value::Null, Value::Null],
        ];
        let c0 = col(
            DataType::Int,
            &rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
        );
        let c1 = col(
            DataType::Str,
            &rows.iter().map(|r| r[1].clone()).collect::<Vec<_>>(),
        );
        let mut st = HashStats::default();
        let ek = encode_keys(&[c0, c1], None, rows.len(), NullKeys::Match, &mut st).unwrap();
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                assert_eq!(
                    ek.key(i) == ek.key(j),
                    rows[i] == rows[j],
                    "rows {i} vs {j}"
                );
                if rows[i] == rows[j] {
                    assert_eq!(ek.hash(i), ek.hash(j), "hash {i} vs {j}");
                }
            }
        }
    }

    #[test]
    fn single_row_encoder_matches_column_encoder() {
        let rows = [
            vec![Value::Int(42), Value::str("abc"), Value::Double(1.5)],
            vec![Value::Null, Value::str(""), Value::Double(-0.0)],
        ];
        let cols = vec![
            col(
                DataType::Int,
                &rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            ),
            col(
                DataType::Str,
                &rows.iter().map(|r| r[1].clone()).collect::<Vec<_>>(),
            ),
            col(
                DataType::Double,
                &rows.iter().map(|r| r[2].clone()).collect::<Vec<_>>(),
            ),
        ];
        let mut st = HashStats::default();
        let ek = encode_keys(&cols, None, rows.len(), NullKeys::Match, &mut st).unwrap();
        let mut buf = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let h = encode_value_row(row, &mut buf);
            assert_eq!(buf.as_slice(), ek.key(i), "row {i} bytes");
            assert_eq!(h, ek.hash(i), "row {i} hash");
        }
    }

    #[test]
    fn selection_vector_is_honored() {
        let c = col(
            DataType::Int,
            &[Value::Int(10), Value::Int(20), Value::Int(30)],
        );
        let sel: Vec<u32> = vec![2, 0];
        let mut st = HashStats::default();
        let ek = encode_keys(&[c], Some(&sel), 2, NullKeys::Match, &mut st).unwrap();
        let mut buf = Vec::new();
        assert_eq!(encode_value_row(&[Value::Int(30)], &mut buf), ek.hash(0));
        assert_eq!(buf.as_slice(), ek.key(0));
        assert_eq!(encode_value_row(&[Value::Int(10)], &mut buf), ek.hash(1));
    }

    #[test]
    fn null_policy_never_marks_rows_non_joinable() {
        let c = col(DataType::Int, &[Value::Int(1), Value::Null]);
        let mut st = HashStats::default();
        let ek = encode_keys(std::slice::from_ref(&c), None, 2, NullKeys::Never, &mut st).unwrap();
        assert!(ek.is_joinable(0));
        assert!(!ek.is_joinable(1));
        let ek = encode_keys(&[c], None, 2, NullKeys::Match, &mut st).unwrap();
        assert!(ek.is_joinable(1));
    }

    #[test]
    fn zero_key_columns_form_one_group() {
        let mut st = HashStats::default();
        let ek = encode_keys(&[], None, 3, NullKeys::Match, &mut st).unwrap();
        assert_eq!(ek.rows(), 3);
        assert_eq!(ek.key(0), ek.key(2));
        assert_eq!(ek.hash(0), ek.hash(2));
        assert_eq!(st.hash_ops, 0);
    }

    #[test]
    fn encoding_allocations_are_constant_in_row_count() {
        for &n in &[16usize, 64, 256, 1024] {
            let vals: Vec<Value> = (0..n as i64).map(Value::Int).collect();
            let dbls: Vec<Value> = (0..n).map(|i| Value::Double(i as f64)).collect();
            let mut st = HashStats::default();
            let ek = encode_keys(
                &[col(DataType::Int, &vals), col(DataType::Double, &dbls)],
                None,
                n,
                NullKeys::Match,
                &mut st,
            )
            .unwrap();
            assert!(
                ek.alloc_events() <= 4,
                "fixed path allocated {} times for {n} rows",
                ek.alloc_events()
            );
        }
    }

    #[test]
    fn table_insert_get_roundtrip_counts_memcmps() {
        let mut t = RawKeyTable::with_capacity(4);
        let mut st = HashStats::default();
        let (s0, fresh0) = t.insert(hash_value(&Value::Int(1)), b"k1", &mut st);
        let (s1, fresh1) = t.insert(hash_value(&Value::Int(2)), b"k2", &mut st);
        assert!(fresh0 && fresh1);
        assert_eq!((s0, s1), (0, 1));
        // Re-insert: one memcmp (the match), no collision.
        let before = st.probe_memcmps;
        let (s, fresh) = t.insert(hash_value(&Value::Int(1)), b"k1", &mut st);
        assert!(!fresh);
        assert_eq!(s, 0);
        assert_eq!(st.probe_memcmps, before + 1);
        assert_eq!(st.hash_collisions, 0);
        assert_eq!(t.get(hash_value(&Value::Int(2)), b"k2", &mut st), Some(1));
        assert_eq!(t.get(hash_value(&Value::Int(9)), b"k9", &mut st), None);
    }

    #[test]
    fn equal_hash_distinct_keys_disambiguate_by_memcmp() {
        // Fabricate a full 64-bit collision: distinct keys, same hash.
        let mut t = RawKeyTable::with_capacity(4);
        let mut st = HashStats::default();
        let (a, fa) = t.insert(42, b"alpha", &mut st);
        let (b, fb) = t.insert(42, b"beta", &mut st);
        assert!(fa && fb);
        assert_ne!(a, b);
        assert_eq!(st.hash_collisions, 1, "insert of beta collided with alpha");
        assert_eq!(t.get(42, b"alpha", &mut st), Some(a));
        assert_eq!(t.get(42, b"beta", &mut st), Some(b));
        assert!(
            st.hash_collisions >= 2,
            "lookups re-walk the collided chain"
        );
        assert_eq!(t.get(42, b"gamma", &mut st), None);
    }

    #[test]
    fn table_growth_preserves_entries_and_counters() {
        let mut t = RawKeyTable::with_capacity(0);
        let mut st = HashStats::default();
        let keys: Vec<Vec<u8>> = (0..1000i64).map(|i| i.to_le_bytes().to_vec()).collect();
        // Only 13 distinct hashes for 1000 keys ⇒ heavy deliberate
        // collisions; every key must still be found after multiple growths.
        for (i, k) in keys.iter().enumerate() {
            t.insert(mix(i as u64 % 13), k, &mut st);
        }
        assert_eq!(t.len(), 1000);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(mix(i as u64 % 13), k, &mut st), Some(i));
        }
        assert!(st.hash_collisions > 0 && st.probe_memcmps >= 2000);
    }
}
