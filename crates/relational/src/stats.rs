//! Table and column statistics for cardinality estimation.
//!
//! The rewrite engine picks among candidate plans by *cost estimate* (paper
//! §5.2/§5.3: "the statement with the cheapest cost estimate is selected"),
//! so the substrate needs a believable — not perfect — estimator. We collect
//! exact min/max/NDV/null counts at load time (cheap for in-memory data) and
//! apply the classic System-R selectivity formulas.

use crate::batch::Batch;
use crate::value::Value;

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Number of distinct non-null values.
    pub ndv: usize,
    pub null_count: usize,
}

impl ColumnStats {
    pub fn compute(column: &crate::column::Column) -> Self {
        use std::collections::HashSet;
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut distinct: HashSet<Value> = HashSet::new();
        let mut null_count = 0;
        for i in 0..column.len() {
            if column.is_null(i) {
                null_count += 1;
                continue;
            }
            let v = column.value(i);
            match &min {
                None => min = Some(v.clone()),
                Some(m) if v.total_cmp(m).is_lt() => min = Some(v.clone()),
                _ => {}
            }
            match &max {
                None => max = Some(v.clone()),
                Some(m) if v.total_cmp(m).is_gt() => max = Some(v.clone()),
                _ => {}
            }
            distinct.insert(v);
        }
        ColumnStats {
            min,
            max,
            ndv: distinct.len(),
            null_count,
        }
    }

    /// Selectivity of `col = literal`.
    pub fn eq_selectivity(&self) -> f64 {
        if self.ndv == 0 {
            0.0
        } else {
            1.0 / self.ndv as f64
        }
    }

    /// Selectivity of a one-sided or two-sided range predicate, by linear
    /// interpolation over `[min, max]` for numeric columns; a fixed guess
    /// otherwise.
    pub fn range_selectivity(&self, lower: Option<&Value>, upper: Option<&Value>) -> f64 {
        const DEFAULT: f64 = 1.0 / 3.0;
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            return DEFAULT;
        };
        let (Some(minf), Some(maxf)) = (min.as_double(), max.as_double()) else {
            return DEFAULT;
        };
        if maxf <= minf {
            return 1.0;
        }
        let lo = lower
            .and_then(Value::as_double)
            .map_or(minf, |v| v.clamp(minf, maxf));
        let hi = upper
            .and_then(Value::as_double)
            .map_or(maxf, |v| v.clamp(minf, maxf));
        ((hi - lo) / (maxf - minf)).clamp(0.0, 1.0)
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub row_count: usize,
    /// Per-column stats, positionally aligned with the schema.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    pub fn compute(batch: &Batch) -> Self {
        TableStats {
            row_count: batch.num_rows(),
            columns: batch.columns().iter().map(ColumnStats::compute).collect(),
        }
    }

    pub fn column(&self, i: usize) -> Option<&ColumnStats> {
        self.columns.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn batch() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("t", DataType::Int),
            Field::new("loc", DataType::Str),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::Int(0), Value::str("a")],
                vec![Value::Int(50), Value::str("b")],
                vec![Value::Int(100), Value::str("a")],
                vec![Value::Null, Value::str("c")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn compute_stats() {
        let s = TableStats::compute(&batch());
        assert_eq!(s.row_count, 4);
        let t = s.column(0).unwrap();
        assert_eq!(t.min, Some(Value::Int(0)));
        assert_eq!(t.max, Some(Value::Int(100)));
        assert_eq!(t.ndv, 3);
        assert_eq!(t.null_count, 1);
        let loc = s.column(1).unwrap();
        assert_eq!(loc.ndv, 3);
    }

    #[test]
    fn eq_selectivity_uses_ndv() {
        let s = TableStats::compute(&batch());
        assert!((s.column(1).unwrap().eq_selectivity() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn range_selectivity_interpolates() {
        let s = TableStats::compute(&batch());
        let t = s.column(0).unwrap();
        let sel = t.range_selectivity(None, Some(&Value::Int(50)));
        assert!((sel - 0.5).abs() < 1e-12);
        let sel = t.range_selectivity(Some(&Value::Int(25)), Some(&Value::Int(75)));
        assert!((sel - 0.5).abs() < 1e-12);
        // Out-of-range bounds clamp.
        let sel = t.range_selectivity(Some(&Value::Int(-100)), None);
        assert!((sel - 1.0).abs() < 1e-12);
    }

    #[test]
    fn string_range_uses_default_guess() {
        let s = TableStats::compute(&batch());
        let loc = s.column(1).unwrap();
        let sel = loc.range_selectivity(Some(&Value::str("a")), None);
        assert!(sel > 0.0 && sel < 1.0);
    }
}
