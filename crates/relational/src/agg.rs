//! Grouped aggregation (hash aggregation).
//!
//! Supports the aggregate shapes the paper's analytics use: `count(*)`,
//! `count(col)`, `count(distinct col)`, `sum`, `avg`, `min`, `max`, grouped
//! by arbitrary scalar expressions. NULL group keys form their own group
//! (SQL `GROUP BY` semantics); aggregate arguments skip NULLs.

use crate::batch::Batch;
use crate::column::{Column, ColumnBuilder};
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::hash::{encode_keys, HashStats, NullKeys, RawKeyTable};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Aggregate function applied per group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    CountStar,
    Count(Expr),
    CountDistinct(Expr),
    Sum(Expr),
    Avg(Expr),
    Min(Expr),
    Max(Expr),
}

impl AggFunc {
    pub fn arg(&self) -> Option<&Expr> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::Count(e)
            | AggFunc::CountDistinct(e)
            | AggFunc::Sum(e)
            | AggFunc::Avg(e)
            | AggFunc::Min(e)
            | AggFunc::Max(e) => Some(e),
        }
    }

    pub fn output_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            AggFunc::CountStar | AggFunc::Count(_) | AggFunc::CountDistinct(_) => Ok(DataType::Int),
            AggFunc::Avg(_) => Ok(DataType::Double),
            AggFunc::Sum(e) | AggFunc::Min(e) | AggFunc::Max(e) => e.data_type(schema),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::CountStar => f.write_str("count(*)"),
            AggFunc::Count(e) => write!(f, "count({e})"),
            AggFunc::CountDistinct(e) => write!(f, "count(distinct {e})"),
            AggFunc::Sum(e) => write!(f, "sum({e})"),
            AggFunc::Avg(e) => write!(f, "avg({e})"),
            AggFunc::Min(e) => write!(f, "min({e})"),
            AggFunc::Max(e) => write!(f, "max({e})"),
        }
    }
}

/// A named aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    pub alias: String,
}

/// Per-group accumulator state.
enum AggState {
    Count(i64),
    Distinct(HashSet<Value>),
    SumInt(i64, bool), // (sum, saw_any)
    SumF64(f64, bool),
    /// Integer-argument average: exact i128 sum, divided once at finish.
    /// Order-independent, which is what lets incremental maintenance
    /// reproduce it from add/subtract deltas bit-for-bit.
    AvgInt(i128, i64),
    Avg(f64, i64),
    MinMax(Option<Value>),
}

impl AggState {
    fn new(func: &AggFunc, arg_type: Option<DataType>) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count(_) => AggState::Count(0),
            AggFunc::CountDistinct(_) => AggState::Distinct(HashSet::new()),
            AggFunc::Sum(_) => match arg_type {
                Some(DataType::Double) => AggState::SumF64(0.0, false),
                _ => AggState::SumInt(0, false),
            },
            AggFunc::Avg(_) => match arg_type {
                Some(DataType::Int) => AggState::AvgInt(0, 0),
                _ => AggState::Avg(0.0, 0),
            },
            AggFunc::Min(_) | AggFunc::Max(_) => AggState::MinMax(None),
        }
    }

    fn update(&mut self, func: &AggFunc, v: Option<Value>) -> Result<()> {
        match (self, func) {
            (AggState::Count(c), AggFunc::CountStar) => *c += 1,
            (AggState::Count(c), AggFunc::Count(_)) => {
                if v.is_some() {
                    *c += 1;
                }
            }
            (AggState::Distinct(s), AggFunc::CountDistinct(_)) => {
                if let Some(v) = v {
                    s.insert(v);
                }
            }
            (AggState::SumInt(s, any), AggFunc::Sum(_)) => {
                if let Some(v) = v {
                    let x = v.as_int().ok_or_else(|| {
                        Error::Execution(format!("sum over non-integer value {v}"))
                    })?;
                    *s = s
                        .checked_add(x)
                        .ok_or_else(|| Error::Execution("sum overflow".into()))?;
                    *any = true;
                }
            }
            (AggState::SumF64(s, any), AggFunc::Sum(_)) => {
                if let Some(v) = v {
                    *s += v.as_double().ok_or_else(|| {
                        Error::Execution(format!("sum over non-numeric value {v}"))
                    })?;
                    *any = true;
                }
            }
            (AggState::AvgInt(s, n), AggFunc::Avg(_)) => {
                if let Some(v) = v {
                    *s += v.as_int().ok_or_else(|| {
                        Error::Execution(format!("avg over non-integer value {v}"))
                    })? as i128;
                    *n += 1;
                }
            }
            (AggState::Avg(s, n), AggFunc::Avg(_)) => {
                if let Some(v) = v {
                    *s += v.as_double().ok_or_else(|| {
                        Error::Execution(format!("avg over non-numeric value {v}"))
                    })?;
                    *n += 1;
                }
            }
            (AggState::MinMax(best), AggFunc::Min(_)) => {
                if let Some(v) = v {
                    let replace = best.as_ref().is_none_or(|b| v.total_cmp(b).is_lt());
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            (AggState::MinMax(best), AggFunc::Max(_)) => {
                if let Some(v) = v {
                    let replace = best.as_ref().is_none_or(|b| v.total_cmp(b).is_gt());
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            _ => return Err(Error::Internal("aggregate state/function mismatch".into())),
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::Distinct(s) => Value::Int(s.len() as i64),
            AggState::SumInt(s, any) => {
                if any {
                    Value::Int(s)
                } else {
                    Value::Null
                }
            }
            AggState::SumF64(s, any) => {
                if any {
                    Value::Double(s)
                } else {
                    Value::Null
                }
            }
            AggState::AvgInt(s, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Double(s as f64 / n as f64)
                }
            }
            AggState::Avg(s, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Double(s / n as f64)
                }
            }
            AggState::MinMax(best) => best.unwrap_or(Value::Null),
        }
    }
}

/// Execute a hash aggregation. Output columns are the group expressions
/// (named by `group_aliases`) followed by the aggregates.
///
/// Convenience wrapper over [`hash_aggregate_with`] (vectorized hash path,
/// counters discarded).
pub fn hash_aggregate(
    input: &Batch,
    group_by: &[(Expr, String)],
    aggs: &[AggExpr],
) -> Result<Batch> {
    let mut hash = HashStats::default();
    hash_aggregate_with(input, group_by, aggs, false, &mut hash)
}

/// [`hash_aggregate`] with an explicit path selector and hash-work counters.
/// `rowwise` runs the retained `HashMap<Vec<Value>, _>` oracle; otherwise
/// group lookup goes through the normalized-key table of [`crate::hash`].
pub fn hash_aggregate_with(
    input: &Batch,
    group_by: &[(Expr, String)],
    aggs: &[AggExpr],
    rowwise: bool,
    hash: &mut HashStats,
) -> Result<Batch> {
    let n = input.num_rows();
    let group_cols: Vec<Column> = group_by
        .iter()
        .map(|(e, _)| e.evaluate(input))
        .collect::<Result<_>>()?;
    let arg_cols: Vec<Option<Column>> = aggs
        .iter()
        .map(|a| a.func.arg().map(|e| e.evaluate(input)).transpose())
        .collect::<Result<_>>()?;
    let arg_types: Vec<Option<DataType>> = arg_cols
        .iter()
        .map(|c| c.as_ref().map(Column::data_type))
        .collect();
    let new_states = || -> Vec<AggState> {
        aggs.iter()
            .zip(&arg_types)
            .map(|(a, t)| AggState::new(&a.func, *t))
            .collect()
    };

    // Group lookup: slot index = first-seen order on both paths.
    // `rep_rows[slot]` is the first input row of each group — the group-key
    // output columns gather straight from the evaluated key columns, so key
    // values are never re-materialized from the table.
    let mut states: Vec<Vec<AggState>> = Vec::new();
    let mut rep_rows: Vec<usize> = Vec::new();
    let update = |slot: usize, states: &mut Vec<Vec<AggState>>, i: usize| -> Result<()> {
        for ((state, agg), arg) in states[slot].iter_mut().zip(aggs).zip(&arg_cols) {
            let v = match arg {
                None => None,
                Some(c) => {
                    if c.is_null(i) {
                        None
                    } else {
                        Some(c.value(i))
                    }
                }
            };
            state.update(&agg.func, v)?;
        }
        Ok(())
    };
    if rowwise {
        let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
        for i in 0..n {
            let key: Vec<Value> = group_cols.iter().map(|c| c.value(i)).collect();
            let next = states.len();
            let slot = *groups.entry(key).or_insert(next);
            if slot == next {
                states.push(new_states());
                rep_rows.push(i);
            }
            update(slot, &mut states, i)?;
        }
    } else {
        let keys = encode_keys(&group_cols, None, n, NullKeys::Match, hash)?;
        let mut table = RawKeyTable::with_capacity(n.min(1024));
        for i in 0..n {
            let (slot, fresh) = table.insert(keys.hash(i), keys.key(i), hash);
            if fresh {
                states.push(new_states());
                rep_rows.push(i);
            }
            update(slot, &mut states, i)?;
        }
    }

    // Global aggregation over an empty input yields one all-default row.
    if states.is_empty() && group_by.is_empty() {
        states.push(new_states());
    }

    // Output schema.
    let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
    for ((e, alias), c) in group_by.iter().zip(&group_cols) {
        let dt = if n == 0 {
            e.data_type(input.schema()).unwrap_or(DataType::Int)
        } else {
            c.data_type()
        };
        fields.push(Field::new(alias.clone(), dt));
    }
    for a in aggs {
        fields.push(Field::new(
            a.alias.clone(),
            a.func.output_type(input.schema())?,
        ));
    }
    let schema = Arc::new(Schema::new(fields));

    // Group-key columns gather from the evaluated key columns (empty inputs
    // fall back to an empty column of the schema type); aggregate columns
    // are built from the finished accumulators, slots in first-seen order.
    let mut cols: Vec<Column> = Vec::with_capacity(schema.fields().len());
    for (c, f) in group_cols.iter().zip(schema.fields()) {
        if n == 0 {
            cols.push(ColumnBuilder::new(f.data_type, 0).finish());
        } else {
            cols.push(c.take(&rep_rows));
        }
    }
    for (a, f) in (0..aggs.len()).zip(&schema.fields()[group_by.len()..]) {
        let mut b = ColumnBuilder::new(f.data_type, states.len());
        for slot_states in &mut states {
            // `finish` consumes; replace with a placeholder we never read.
            let s = std::mem::replace(&mut slot_states[a], AggState::Count(0));
            b.push(&s.finish())?;
        }
        cols.push(b.finish());
    }
    Batch::new(schema, cols)
}

/// DISTINCT over whole rows.
///
/// Convenience wrapper over [`distinct_with`] (vectorized hash path,
/// counters discarded).
pub fn distinct(input: &Batch) -> Batch {
    let mut hash = HashStats::default();
    distinct_with(input, false, &mut hash).expect("distinct encoding cannot fail")
}

/// [`distinct`] with an explicit path selector and hash-work counters.
pub fn distinct_with(input: &Batch, rowwise: bool, hash: &mut HashStats) -> Result<Batch> {
    let n = input.num_rows();
    let mut keep = Vec::new();
    if rowwise {
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        for i in 0..n {
            if seen.insert(input.row(i)) {
                keep.push(i);
            }
        }
    } else {
        let keys = encode_keys(input.columns(), input.selection(), n, NullKeys::Match, hash)?;
        let mut table = RawKeyTable::with_capacity(n.min(1024));
        for i in 0..n {
            if table.insert(keys.hash(i), keys.key(i), hash).1 {
                keep.push(i);
            }
        }
    }
    Ok(input.take(&keep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;

    fn batch() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("mfr", DataType::Str),
            Field::new("reader", DataType::Str),
            Field::new("t", DataType::Int),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("m1"), Value::str("r1"), Value::Int(10)],
                vec![Value::str("m1"), Value::str("r2"), Value::Int(20)],
                vec![Value::str("m1"), Value::str("r1"), Value::Int(30)],
                vec![Value::str("m2"), Value::str("r1"), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn count_distinct_and_avg() {
        let out = hash_aggregate(
            &batch(),
            &[(Expr::col("mfr"), "mfr".into())],
            &[
                AggExpr {
                    func: AggFunc::CountDistinct(Expr::col("reader")),
                    alias: "readers".into(),
                },
                AggExpr {
                    func: AggFunc::Avg(Expr::col("t")),
                    alias: "avg_t".into(),
                },
                AggExpr {
                    func: AggFunc::CountStar,
                    alias: "n".into(),
                },
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        // first-seen order: m1 then m2
        assert_eq!(out.row(0)[0], Value::str("m1"));
        assert_eq!(out.row(0)[1], Value::Int(2));
        assert_eq!(out.row(0)[2], Value::Double(20.0));
        assert_eq!(out.row(0)[3], Value::Int(3));
        // m2: avg over all-null -> NULL, count(*) = 1
        assert_eq!(out.row(1)[2], Value::Null);
        assert_eq!(out.row(1)[3], Value::Int(1));
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        let out = hash_aggregate(
            &batch(),
            &[],
            &[
                AggExpr {
                    func: AggFunc::Count(Expr::col("t")),
                    alias: "ct".into(),
                },
                AggExpr {
                    func: AggFunc::CountStar,
                    alias: "cs".into(),
                },
            ],
        )
        .unwrap();
        assert_eq!(out.row(0), vec![Value::Int(3), Value::Int(4)]);
    }

    #[test]
    fn min_max_sum() {
        let out = hash_aggregate(
            &batch(),
            &[],
            &[
                AggExpr {
                    func: AggFunc::Min(Expr::col("t")),
                    alias: "mn".into(),
                },
                AggExpr {
                    func: AggFunc::Max(Expr::col("t")),
                    alias: "mx".into(),
                },
                AggExpr {
                    func: AggFunc::Sum(Expr::col("t")),
                    alias: "s".into(),
                },
            ],
        )
        .unwrap();
        assert_eq!(
            out.row(0),
            vec![Value::Int(10), Value::Int(30), Value::Int(60)]
        );
    }

    #[test]
    fn empty_input_global_agg_yields_one_row() {
        let b = batch().take(&[]);
        let out = hash_aggregate(
            &b,
            &[],
            &[AggExpr {
                func: AggFunc::CountStar,
                alias: "n".into(),
            }],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Int(0));
    }

    #[test]
    fn empty_input_grouped_agg_yields_zero_rows() {
        let b = batch().take(&[]);
        let out = hash_aggregate(
            &b,
            &[(Expr::col("mfr"), "mfr".into())],
            &[AggExpr {
                func: AggFunc::CountStar,
                alias: "n".into(),
            }],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn null_group_keys_group_together() {
        let schema = schema_ref(Schema::new(vec![Field::new("k", DataType::Str)]));
        let b = Batch::from_rows(
            schema,
            &[vec![Value::Null], vec![Value::Null], vec![Value::str("a")]],
        )
        .unwrap();
        let out = hash_aggregate(
            &b,
            &[(Expr::col("k"), "k".into())],
            &[AggExpr {
                func: AggFunc::CountStar,
                alias: "n".into(),
            }],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.row(0), vec![Value::Null, Value::Int(2)]);
    }

    #[test]
    fn distinct_rows() {
        let schema = schema_ref(Schema::new(vec![Field::new("k", DataType::Str)]));
        let b = Batch::from_rows(
            schema,
            &[
                vec![Value::str("a")],
                vec![Value::str("a")],
                vec![Value::Null],
                vec![Value::Null],
            ],
        )
        .unwrap();
        let d = distinct(&b);
        assert_eq!(d.num_rows(), 2);
    }
}
