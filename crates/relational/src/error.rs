//! Error types shared by every layer of the engine.

use std::fmt;

/// Result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;

/// Why a query was aborted before producing a result (see
/// [`crate::physical::QueryBudget`]). Aborts are cooperative: operators
/// check the budget at batch boundaries and unwind with
/// [`Error::Aborted`] — no partial rows ever escape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The caller flipped the cancellation token.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// More rows flowed through the plan than the budget allows.
    RowLimitExceeded,
}

impl AbortReason {
    /// Stable label used in stats, logs, and rendered reports.
    pub fn label(&self) -> &'static str {
        match self {
            AbortReason::Cancelled => "cancelled",
            AbortReason::DeadlineExceeded => "deadline_exceeded",
            AbortReason::RowLimitExceeded => "row_limit_exceeded",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Engine-wide error type.
///
/// The variants are deliberately coarse: callers dispatch on the broad class
/// of failure (planning vs. execution vs. catalog), while the payload carries
/// a human-readable description with enough context to debug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table, column, or index was not found, or a name clash occurred.
    Catalog(String),
    /// The SQL text could not be tokenized or parsed.
    Parse(String),
    /// The query is syntactically valid but semantically ill-formed
    /// (unknown column, type mismatch, unsupported construct, ...).
    Plan(String),
    /// A failure during plan execution (overflow, invalid cast, ...).
    Execution(String),
    /// A schema mismatch between batches or between a batch and a table.
    Schema(String),
    /// The query was cooperatively aborted (deadline, cancellation, or row
    /// budget) before completing; no partial result was produced.
    Aborted(AbortReason),
    /// Internal invariant violation — always a bug in the engine.
    Internal(String),
}

impl Error {
    /// Short classifier used by tests and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Catalog(_) => "catalog",
            Error::Parse(_) => "parse",
            Error::Plan(_) => "plan",
            Error::Execution(_) => "execution",
            Error::Schema(_) => "schema",
            Error::Aborted(_) => "aborted",
            Error::Internal(_) => "internal",
        }
    }

    /// The human-readable message carried by this error.
    pub fn message(&self) -> &str {
        match self {
            Error::Catalog(m)
            | Error::Parse(m)
            | Error::Plan(m)
            | Error::Execution(m)
            | Error::Schema(m)
            | Error::Internal(m) => m,
            Error::Aborted(r) => r.label(),
        }
    }

    /// The abort reason, when this error is a cooperative query abort.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match self {
            Error::Aborted(r) => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for Error {}

/// Convenience constructor macros used across the crate.
#[macro_export]
macro_rules! plan_err {
    ($($arg:tt)*) => {
        Err($crate::error::Error::Plan(format!($($arg)*)))
    };
}

#[macro_export]
macro_rules! exec_err {
    ($($arg:tt)*) => {
        Err($crate::error::Error::Execution(format!($($arg)*)))
    };
}

#[macro_export]
macro_rules! internal_err {
    ($($arg:tt)*) => {
        Err($crate::error::Error::Internal(format!($($arg)*)))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aborted_kind_and_reason() {
        let e = Error::Aborted(AbortReason::DeadlineExceeded);
        assert_eq!(e.kind(), "aborted");
        assert_eq!(e.message(), "deadline_exceeded");
        assert_eq!(e.abort_reason(), Some(AbortReason::DeadlineExceeded));
        assert_eq!(Error::Plan("x".into()).abort_reason(), None);
        assert_eq!(AbortReason::Cancelled.to_string(), "cancelled");
    }

    #[test]
    fn kind_and_message_roundtrip() {
        let e = Error::Plan("no such column x".into());
        assert_eq!(e.kind(), "plan");
        assert_eq!(e.message(), "no such column x");
        assert_eq!(e.to_string(), "plan error: no such column x");
    }

    #[test]
    fn macros_produce_expected_variants() {
        fn f() -> Result<()> {
            plan_err!("bad {}", 42)
        }
        match f() {
            Err(Error::Plan(m)) => assert_eq!(m, "bad 42"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
