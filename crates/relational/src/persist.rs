//! Columnar segment files: the durable form of one sealed segment.
//!
//! A segment file is self-describing — it carries the schema, the
//! column data (with validity bitmaps), and the segment's own metadata
//! (zone maps + verified sort order) — and is covered end-to-end by an
//! FNV-1a checksum, so a torn or bit-flipped file is rejected instead
//! of decoded into wrong rows. Files are written once via an atomic
//! rename and never modified, mirroring the in-memory rule that sealed
//! segments are immutable.
//!
//! Layout: an 8-byte magic, then a wire-format payload (schema, row
//! count, per-column validity + values for the non-null slots, segment
//! metadata), then `fnv1a64(payload)` as a little-endian trailer.

use crate::batch::{schema_ref, Batch};
use crate::column::ColumnBuilder;
use crate::error::{Error, Result};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};
use dc_storage::{
    fnv1a64,
    persist::{decode_segment_meta, encode_segment_meta},
    ByteReader, ByteWriter, Segment, ValueCodec, WireError,
};

/// File magic: "DC" + segment-file format version 001.
pub const SEGMENT_MAGIC: &[u8; 8] = b"DCSEG001";

/// Wire codec for [`Value`], shared by zone maps and column payloads.
pub struct ValueWire;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_DOUBLE: u8 = 3;
const TAG_STR: u8 = 4;

impl ValueCodec for ValueWire {
    type Value = Value;

    fn encode_value(&self, v: &Value, w: &mut ByteWriter) {
        match v {
            Value::Null => w.put_u8(TAG_NULL),
            Value::Bool(b) => {
                w.put_u8(TAG_BOOL);
                w.put_bool(*b);
            }
            Value::Int(i) => {
                w.put_u8(TAG_INT);
                w.put_i64(*i);
            }
            Value::Double(d) => {
                w.put_u8(TAG_DOUBLE);
                w.put_f64(*d);
            }
            Value::Str(s) => {
                w.put_u8(TAG_STR);
                w.put_str(s);
            }
        }
    }

    fn decode_value(&self, r: &mut ByteReader<'_>) -> std::result::Result<Value, WireError> {
        match r.get_u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_BOOL => Ok(Value::Bool(r.get_bool()?)),
            TAG_INT => Ok(Value::Int(r.get_i64()?)),
            TAG_DOUBLE => Ok(Value::Double(r.get_f64()?)),
            TAG_STR => Ok(Value::str(r.get_str()?)),
            other => Err(WireError::Malformed(format!("bad value tag {other}"))),
        }
    }
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Double => 2,
        DataType::Str => 3,
    }
}

fn tag_dtype(tag: u8) -> std::result::Result<DataType, WireError> {
    match tag {
        0 => Ok(DataType::Bool),
        1 => Ok(DataType::Int),
        2 => Ok(DataType::Double),
        3 => Ok(DataType::Str),
        other => Err(WireError::Malformed(format!("bad dtype tag {other}"))),
    }
}

fn corrupt(detail: impl std::fmt::Display) -> Error {
    Error::Execution(format!("segment file: {detail}"))
}

/// Serialize the rows of one sealed segment plus its metadata.
///
/// `rows` must be exactly the segment's row window of the table
/// (`data.slice(seg.start, seg.rows)` flattened or not — values are read
/// through the window accessors).
pub fn encode_segment_file(rows: &Batch, seg: &Segment<Value>) -> Result<Vec<u8>> {
    if rows.num_rows() != seg.rows {
        return Err(corrupt(format!(
            "encode of segment {} given {} rows, metadata says {}",
            seg.id,
            rows.num_rows(),
            seg.rows
        )));
    }
    let mut w = ByteWriter::new();
    let schema = rows.schema();
    w.put_u32(schema.len() as u32);
    for f in schema.fields() {
        match &f.qualifier {
            None => w.put_u8(0),
            Some(q) => {
                w.put_u8(1);
                w.put_str(q);
            }
        }
        w.put_str(&f.name);
        w.put_u8(dtype_tag(f.data_type));
    }
    let n = rows.num_rows();
    w.put_u64(n as u64);
    for (ci, f) in schema.fields().iter().enumerate() {
        let col = rows.column(ci);
        w.put_u8(dtype_tag(f.data_type));
        let nulls: Vec<usize> = (0..n).filter(|&i| col.is_null(i)).collect();
        if nulls.is_empty() {
            w.put_u8(0);
        } else {
            w.put_u8(1);
            let mut bits = vec![0u8; n.div_ceil(8)];
            for &i in &nulls {
                bits[i / 8] |= 1 << (i % 8);
            }
            w.put_raw(&bits);
        }
        for i in 0..n {
            if col.is_null(i) {
                continue;
            }
            match col.value(i) {
                Value::Bool(b) => w.put_bool(b),
                Value::Int(v) => w.put_i64(v),
                Value::Double(v) => w.put_f64(v),
                Value::Str(s) => w.put_str(&s),
                Value::Null => unreachable!("is_null filtered"),
            }
        }
    }
    encode_segment_meta(&ValueWire, seg, &mut w);
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(SEGMENT_MAGIC.len() + payload.len() + 8);
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    Ok(out)
}

/// Decode a segment file back into its rows and metadata, validating the
/// magic, the whole-file checksum, and every structural invariant. Never
/// panics on corrupt input.
pub fn decode_segment_file(bytes: &[u8]) -> Result<(Batch, Segment<Value>)> {
    if bytes.len() < SEGMENT_MAGIC.len() + 8 {
        return Err(corrupt(format!("{} bytes is too short", bytes.len())));
    }
    if &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let payload = &bytes[SEGMENT_MAGIC.len()..bytes.len() - 8];
    let trailer = &bytes[bytes.len() - 8..];
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if fnv1a64(payload) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    decode_payload(payload).map_err(corrupt)
}

fn decode_payload(payload: &[u8]) -> std::result::Result<(Batch, Segment<Value>), WireError> {
    let mut r = ByteReader::new(payload);
    let nfields = r.get_count(3)?;
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let qualifier = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_str()?.to_string()),
            other => return Err(WireError::Malformed(format!("bad qualifier tag {other}"))),
        };
        let name = r.get_str()?.to_string();
        let dt = tag_dtype(r.get_u8()?)?;
        fields.push(match qualifier {
            Some(q) => Field::qualified(q, name, dt),
            None => Field::new(name, dt),
        });
    }
    let schema = schema_ref(Schema::new(fields));
    let n = r.get_u64()? as usize;
    if n > payload.len() {
        return Err(WireError::Malformed(format!(
            "row count {n} exceeds payload size"
        )));
    }
    let mut columns = Vec::with_capacity(schema.len());
    for f in schema.fields() {
        let dt = tag_dtype(r.get_u8()?)?;
        if dt != f.data_type {
            return Err(WireError::Malformed(format!(
                "column '{}' declared {} but encoded {}",
                f.name, f.data_type, dt
            )));
        }
        let nulls: Option<Vec<bool>> = match r.get_u8()? {
            0 => None,
            1 => {
                let nbytes = n.div_ceil(8);
                let mut bits = Vec::with_capacity(n);
                let mut raw = Vec::with_capacity(nbytes);
                for _ in 0..nbytes {
                    raw.push(r.get_u8()?);
                }
                for i in 0..n {
                    bits.push(raw[i / 8] & (1 << (i % 8)) != 0);
                }
                Some(bits)
            }
            other => {
                return Err(WireError::Malformed(format!("bad validity tag {other}")));
            }
        };
        let mut b = ColumnBuilder::new(dt, n);
        for i in 0..n {
            if nulls.as_ref().is_some_and(|bits| bits[i]) {
                b.push_null();
                continue;
            }
            let v = match dt {
                DataType::Bool => Value::Bool(r.get_bool()?),
                DataType::Int => Value::Int(r.get_i64()?),
                DataType::Double => Value::Double(r.get_f64()?),
                DataType::Str => Value::str(r.get_str()?),
            };
            b.push(&v)
                .map_err(|e| WireError::Malformed(e.message().to_string()))?;
        }
        columns.push(b.finish());
    }
    let batch =
        Batch::new(schema, columns).map_err(|e| WireError::Malformed(e.message().to_string()))?;
    let seg = decode_segment_meta(&ValueWire, &mut r)?;
    if seg.rows != n {
        return Err(WireError::Malformed(format!(
            "metadata says {} rows, file holds {n}",
            seg.rows
        )));
    }
    if seg.zones.len() != batch.schema().len() {
        return Err(WireError::Malformed(format!(
            "metadata has {} zone maps for {} columns",
            seg.zones.len(),
            batch.schema().len()
        )));
    }
    if !r.is_empty() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after segment",
            r.remaining()
        )));
    }
    Ok((batch, seg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn sample_table() -> Table {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("weight", DataType::Double),
            Field::new("ok", DataType::Bool),
        ]));
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| {
                vec![
                    Value::str(format!("urn:epc:{i:03}")),
                    if i == 3 {
                        Value::Null
                    } else {
                        Value::Int(i * 7)
                    },
                    Value::Double(i as f64 / 4.0),
                    Value::Bool(i % 2 == 0),
                ]
            })
            .collect();
        let batch = Batch::from_rows(schema, &rows).unwrap();
        let mut t = Table::with_segment_rows("reads", batch, 4);
        t.set_sequence_order(&["epc", "rtime"]).unwrap();
        t
    }

    #[test]
    fn roundtrip_every_segment() {
        let t = sample_table();
        assert_eq!(t.segments().len(), 3);
        for seg in t.segments() {
            let rows = t.data().slice(seg.start, seg.rows);
            let bytes = encode_segment_file(&rows, seg).unwrap();
            let (back, meta) = decode_segment_file(&bytes).unwrap();
            assert_eq!(&meta, seg);
            assert_eq!(back.num_rows(), seg.rows);
            assert_eq!(back.schema(), rows.schema());
            for ci in 0..back.schema().len() {
                for i in 0..back.num_rows() {
                    assert_eq!(back.column(ci).value(i), rows.column(ci).value(i));
                }
            }
        }
    }

    #[test]
    fn every_flip_and_truncation_is_rejected_or_equal() {
        let t = sample_table();
        let seg = &t.segments()[0];
        let rows = t.data().slice(seg.start, seg.rows);
        let bytes = encode_segment_file(&rows, seg).unwrap();
        // Truncations: all fail (checksum or short-file).
        for cut in 0..bytes.len() {
            assert!(
                decode_segment_file(&bytes[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
        // Single-byte flips: corrupting the payload or trailer must fail;
        // nothing may decode to different content silently.
        for pos in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x01;
            assert!(
                decode_segment_file(&flipped).is_err(),
                "bit flip at {pos} decoded"
            );
        }
    }
}
