//! # dc-relational — the DBMS substrate
//!
//! An in-memory columnar relational engine providing everything the deferred
//! cleansing system (paper: *"A Deferred Cleansing Method for RFID Data
//! Analytics"*, VLDB 2006) needs from its DBMS:
//!
//! * typed columnar storage with NULL bitmaps ([`mod@column`], [`batch`]),
//! * ordered secondary indexes with range scans ([`index`]),
//! * scalar expressions with SQL three-valued logic ([`expr`]),
//! * physical operators — sort, hash join/semi-join, hash aggregation, and
//!   the SQL/OLAP window functions the paper compiles cleansing rules into
//!   ([`sort`], [`join`], [`agg`], [`window`]),
//! * logical plans with output-ordering properties ([`plan`]), an optimizer
//!   that pushes predicates into index scans and shares sort orders
//!   ([`optimizer`]), a statistics-driven cost estimator ([`cost`]), a
//!   lowering pass to explicit physical operator trees with
//!   partition-parallel window evaluation ([`physical`]), and an executor
//!   facade with deterministic work counters ([`exec`]),
//! * a SQL subset front end (WITH, select-project-join, GROUP BY, OLAP
//!   windows) sufficient for the paper's benchmark queries ([`sql`]).
//!
//! ## Quick example
//!
//! ```
//! use dc_relational::prelude::*;
//!
//! // Build a tiny reads table.
//! let schema = schema_ref(Schema::new(vec![
//!     Field::new("epc", DataType::Str),
//!     Field::new("rtime", DataType::Int),
//! ]));
//! let batch = Batch::from_rows(schema, &[
//!     vec![Value::str("e1"), Value::Int(10)],
//!     vec![Value::str("e1"), Value::Int(20)],
//! ]).unwrap();
//! let catalog = Catalog::new();
//! catalog.register(Table::new("r", batch));
//!
//! // Run SQL against it.
//! let out = dc_relational::sql::run_sql(
//!     "select epc, count(*) as n from r group by epc", &catalog).unwrap();
//! assert_eq!(out.num_rows(), 1);
//! ```

pub mod agg;
pub mod batch;
pub mod column;
pub mod constraint;
pub mod cost;
pub mod delta;
pub mod error;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod hash;
pub mod index;
pub mod join;
pub mod optimizer;
pub mod persist;
pub mod physical;
pub mod plan;
pub mod scatter;
pub mod schema;
pub mod segment;
pub mod sort;
pub mod sql;
pub mod stats;
pub mod table;
pub mod value;
pub mod window;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::agg::{AggExpr, AggFunc};
    pub use crate::batch::{schema_ref, Batch};
    pub use crate::column::{Column, ColumnBuilder, ColumnData};
    pub use crate::constraint::{
        normalize_conjunct, CmpOp, ConstConstraint, DiffConstraint, Normalized,
    };
    pub use crate::cost::{estimate, Estimate};
    pub use crate::error::{AbortReason, Error, Result};
    pub use crate::exec::{ExecStats, Executor};
    pub use crate::explain::{logical_to_json, physical_to_json};
    pub use crate::expr::{conjoin, disjoin, split_conjuncts, BinaryOp, ColumnRef, Expr};
    pub use crate::hash::{encode_keys, EncodedKeys, HashStats, NullKeys, RawKeyTable};
    pub use crate::join::JoinType;
    pub use crate::optimizer::{optimize, optimize_default, OptimizerConfig};
    pub use crate::persist::{decode_segment_file, encode_segment_file, ValueWire};
    pub use crate::physical::{
        display_physical, lower, DeterministicMetrics, ExecContext, ExecOptions, MetricsCollector,
        OperatorMetrics, PhysicalOperator, QueryBudget,
    };
    pub use crate::plan::{ordering_satisfies, window_sort_keys, LogicalPlan};
    pub use crate::scatter::{
        gather, sharding_spec_for, split_scatter, GatherOutcome, GatherStep, ScatterPlan,
        ShardingSpec,
    };
    pub use crate::schema::{Field, Schema, SchemaRef};
    pub use crate::sort::SortKey;
    pub use crate::table::{Catalog, CatalogRef, Table};
    pub use crate::value::{DataType, Value};
    pub use crate::window::{Frame, FrameBound, FrameUnits, WindowExpr, WindowFuncKind};
}
