//! Plan execution.
//!
//! The executor walks a [`LogicalPlan`] bottom-up, fully materializing each
//! operator's output. It keeps *work counters* (rows scanned, rows sorted,
//! window-aggregate work, join probes) so experiments can report
//! machine-independent effort alongside wall-clock time — the quantities the
//! paper's §6.2 plan analysis reasons about.

use crate::agg::{distinct, hash_aggregate};
use crate::batch::Batch;
use crate::column::Column;
use crate::error::Result;
use crate::expr::{split_conjuncts, Expr};
use crate::index::ScanBound;
use crate::join::hash_join;
use crate::plan::{window_sort_keys, LogicalPlan};
use crate::schema::{Field, Schema};
use crate::sort::{sort_batch, sort_permutation};
use crate::table::Catalog;
use crate::value::Value;
use crate::window::evaluate_window;
use std::sync::Arc;

/// Deterministic work counters accumulated during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows fetched from base tables (after index narrowing, before residual filters).
    pub rows_scanned: u64,
    /// Scans answered through an ordered index.
    pub index_scans: u64,
    /// Scans that had to read the whole table.
    pub full_scans: u64,
    /// Rows passed through explicit or window-implied sorts.
    pub rows_sorted: u64,
    /// Number of sort operations performed.
    pub sorts_performed: u64,
    /// Window frame rows visited while computing scalar aggregates.
    pub window_agg_work: u64,
    /// Hash-join probe operations.
    pub join_probes: u64,
}

impl ExecStats {
    pub fn add(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.index_scans += other.index_scans;
        self.full_scans += other.full_scans;
        self.rows_sorted += other.rows_sorted;
        self.sorts_performed += other.sorts_performed;
        self.window_agg_work += other.window_agg_work;
        self.join_probes += other.join_probes;
    }
}

/// Executes logical plans against a catalog.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    pub stats: ExecStats,
}

impl<'a> Executor<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        Executor {
            catalog,
            stats: ExecStats::default(),
        }
    }

    /// Execute a plan to a fully materialized batch.
    pub fn execute(&mut self, plan: &LogicalPlan) -> Result<Batch> {
        match plan {
            LogicalPlan::Scan {
                table,
                alias,
                filter,
            } => self.execute_scan(table, alias.as_deref(), filter.as_ref()),
            LogicalPlan::Filter { input, predicate } => {
                let b = self.execute(input)?;
                let keep = predicate.filter_indices(&b)?;
                Ok(b.take(&keep))
            }
            LogicalPlan::Project { input, exprs } => {
                let b = self.execute(input)?;
                let mut cols = Vec::with_capacity(exprs.len());
                let mut fields = Vec::with_capacity(exprs.len());
                for (e, alias) in exprs {
                    let c = e.evaluate(&b)?;
                    fields.push(Field::from_flat_name(alias, c.data_type()));
                    cols.push(c);
                }
                Batch::new(Arc::new(Schema::new(fields)), cols)
            }
            LogicalPlan::Sort { input, keys } => {
                let b = self.execute(input)?;
                self.stats.rows_sorted += b.num_rows() as u64;
                self.stats.sorts_performed += 1;
                sort_batch(&b, keys)
            }
            LogicalPlan::Window {
                input,
                partition_by,
                order_by,
                exprs,
                presorted,
            } => {
                let mut b = self.execute(input)?;
                if !presorted {
                    let keys = window_sort_keys(partition_by, order_by);
                    self.stats.rows_sorted += b.num_rows() as u64;
                    self.stats.sorts_performed += 1;
                    let perm = sort_permutation(&b, &keys)?;
                    b = b.take(&perm);
                }
                let order_key_expr = if order_by.len() == 1 {
                    Some(&order_by[0].expr)
                } else {
                    None
                };
                let (wcols, work) =
                    evaluate_window(&b, partition_by, order_key_expr, exprs)?;
                self.stats.window_agg_work += work;
                let mut fields = b.schema().fields().to_vec();
                let mut cols: Vec<Column> = b.columns().to_vec();
                for (we, c) in exprs.iter().zip(wcols) {
                    fields.push(Field::new(we.alias.clone(), c.data_type()));
                    cols.push(c);
                }
                Batch::new(Arc::new(Schema::new(fields)), cols)
            }
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
                join_type,
            } => {
                let l = self.execute(left)?;
                let r = self.execute(right)?;
                let (out, probes) = hash_join(&l, &r, left_keys, right_keys, *join_type)?;
                self.stats.join_probes += probes;
                Ok(out)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let b = self.execute(input)?;
                hash_aggregate(&b, group_by, aggs)
            }
            LogicalPlan::Distinct { input } => {
                let b = self.execute(input)?;
                Ok(distinct(&b))
            }
            LogicalPlan::Union { inputs } => {
                let batches: Vec<Batch> = inputs
                    .iter()
                    .map(|p| self.execute(p))
                    .collect::<Result<_>>()?;
                let out = Batch::concat(&batches)?;
                // UNION output columns lose their source qualifiers.
                let schema = Arc::new(out.schema().unqualified());
                out.with_schema(schema)
            }
            LogicalPlan::Limit { input, fetch } => {
                let b = self.execute(input)?;
                let n = b.num_rows().min(*fetch);
                let idx: Vec<usize> = (0..n).collect();
                Ok(b.take(&idx))
            }
            LogicalPlan::SubqueryAlias { input, alias } => {
                let b = self.execute(input)?;
                let schema = Arc::new(b.schema().with_qualifier(alias));
                b.with_schema(schema)
            }
        }
    }

    /// Scan a base table, using an ordered index to narrow the fetch when the
    /// pushed-down filter has a usable conjunct; the full filter is then
    /// re-applied as a residual.
    fn execute_scan(
        &mut self,
        table: &str,
        alias: Option<&str>,
        filter: Option<&Expr>,
    ) -> Result<Batch> {
        let t = self.catalog.get(table)?;
        let out_schema: Arc<Schema> = match alias {
            Some(a) => Arc::new(t.schema().with_qualifier(a)),
            None => t.schema().clone(),
        };

        let Some(filter) = filter else {
            self.stats.rows_scanned += t.num_rows() as u64;
            self.stats.full_scans += 1;
            return t.data().clone().with_schema(out_schema);
        };

        // Find the most selective single-index access among the conjuncts.
        let access = best_index_access(&t, &out_schema, filter);
        let base = match access {
            Some(rows) => {
                self.stats.index_scans += 1;
                self.stats.rows_scanned += rows.len() as u64;
                t.data().take(&rows)
            }
            None => {
                self.stats.full_scans += 1;
                self.stats.rows_scanned += t.num_rows() as u64;
                t.data().clone()
            }
        };
        let base = base.with_schema(out_schema)?;
        let keep = filter.filter_indices(&base)?;
        Ok(base.take(&keep))
    }
}

/// Range bounds accumulated for one column.
#[derive(Default)]
struct ColBounds {
    lower: Option<(Value, bool)>, // (value, inclusive)
    upper: Option<(Value, bool)>,
    in_values: Option<Vec<Value>>,
}

impl ColBounds {
    fn tighten_lower(&mut self, v: Value, inclusive: bool) {
        let replace = match &self.lower {
            None => true,
            Some((cur, cur_inc)) => match v.total_cmp(cur) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => *cur_inc && !inclusive,
                std::cmp::Ordering::Less => false,
            },
        };
        if replace {
            self.lower = Some((v, inclusive));
        }
    }

    fn tighten_upper(&mut self, v: Value, inclusive: bool) {
        let replace = match &self.upper {
            None => true,
            Some((cur, cur_inc)) => match v.total_cmp(cur) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => *cur_inc && !inclusive,
                std::cmp::Ordering::Greater => false,
            },
        };
        if replace {
            self.upper = Some((v, inclusive));
        }
    }

    fn lower_bound(&self) -> ScanBound {
        match &self.lower {
            None => ScanBound::Unbounded,
            Some((v, true)) => ScanBound::Inclusive(v.clone()),
            Some((v, false)) => ScanBound::Exclusive(v.clone()),
        }
    }

    fn upper_bound(&self) -> ScanBound {
        match &self.upper {
            None => ScanBound::Unbounded,
            Some((v, true)) => ScanBound::Inclusive(v.clone()),
            Some((v, false)) => ScanBound::Exclusive(v.clone()),
        }
    }
}

/// Choose the most selective single-index access for `filter`, returning the
/// matching row ids, or `None` if no index helps (or the best access would
/// fetch nearly the whole table anyway).
fn best_index_access(
    table: &crate::table::Table,
    scan_schema: &Schema,
    filter: &Expr,
) -> Option<Vec<usize>> {
    use std::collections::HashMap;
    let mut bounds: HashMap<usize, ColBounds> = HashMap::new();
    // Range bounds implied by the whole predicate, including bounds that
    // every OR branch shares (the paper's §5.2 "relaxed" expanded condition
    // becomes index-usable through this).
    for (ci, interval) in crate::constraint::implied_bounds_resolved(filter, scan_schema) {
        let b = bounds.entry(ci).or_default();
        if let Some(l) = &interval.lower {
            b.tighten_lower(l.value.clone(), l.inclusive);
        }
        if let Some(u) = &interval.upper {
            b.tighten_upper(u.value.clone(), u.inclusive);
        }
    }
    for conj in split_conjuncts(filter) {
        if let Expr::InList {
            expr,
            list,
            negated: false,
        } = &conj
        {
            if let Expr::Column(c) = expr.as_ref() {
                if let Ok(ci) = scan_schema.index_of(c.qualifier.as_deref(), &c.name) {
                    bounds.entry(ci).or_default().in_values = Some(list.clone());
                }
            }
        } else if let Expr::InSet {
            expr,
            set,
            negated: false,
            ..
        } = &conj
        {
            if let Expr::Column(c) = expr.as_ref() {
                if let Ok(ci) = scan_schema.index_of(c.qualifier.as_deref(), &c.name) {
                    bounds.entry(ci).or_default().in_values =
                        Some(set.iter().cloned().collect());
                }
            }
        }
    }

    let total = table.num_rows().max(1) as f64;
    let mut best: Option<(f64, Vec<usize>)> = None;
    for (ci, b) in &bounds {
        // Scan schema is positionally identical to the table schema.
        let col_name = &table.schema().field(*ci).name;
        let Some(idx) = table.index(col_name) else {
            continue;
        };
        let rows = if let Some(vals) = &b.in_values {
            let mut rows: Vec<usize> = vals
                .iter()
                .flat_map(|v| idx.lookup(v).iter().map(|&r| r as usize))
                .collect();
            rows.sort_unstable();
            rows.dedup();
            rows
        } else if b.lower.is_some() || b.upper.is_some() {
            idx.range_scan(&b.lower_bound(), &b.upper_bound())
        } else {
            continue;
        };
        let sel = rows.len() as f64 / total;
        if best.as_ref().is_none_or(|(s, _)| sel < *s) {
            best = Some((sel, rows));
        }
    }
    // An access that fetches (almost) everything is not worth the gather.
    match best {
        Some((sel, rows)) if sel < 0.95 => Some(rows),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggExpr, AggFunc};
    use crate::batch::schema_ref;
    use crate::join::JoinType;
    use crate::expr::BinaryOp;
    use crate::sort::SortKey;
    use crate::table::Table;
    use crate::value::DataType;
    use crate::window::{Frame, FrameBound, WindowExpr, WindowFuncKind};

    fn catalog() -> Catalog {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
        ]));
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::str(format!("e{}", i % 10)),
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "locA" } else { "locB" }),
                ]
            })
            .collect();
        let b = Batch::from_rows(schema, &rows).unwrap();
        let mut t = Table::new("r", b);
        t.create_index("rtime").unwrap();
        t.create_index("epc").unwrap();
        let cat = Catalog::new();
        cat.register(t);
        cat
    }

    #[test]
    fn index_scan_narrows_fetch() {
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(Expr::col("rtime").lt(Expr::lit(10i64))),
        };
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 10);
        assert_eq!(ex.stats.rows_scanned, 10);
        assert_eq!(ex.stats.index_scans, 1);
        assert_eq!(ex.stats.full_scans, 0);
    }

    #[test]
    fn unindexed_filter_full_scans() {
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(Expr::col("biz_loc").eq(Expr::lit("locA"))),
        };
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 50);
        assert_eq!(ex.stats.full_scans, 1);
        assert_eq!(ex.stats.rows_scanned, 100);
    }

    #[test]
    fn residual_applied_after_index() {
        let cat = catalog();
        // rtime < 10 uses the index, biz_loc = 'locA' is residual.
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(
                Expr::col("rtime")
                    .lt(Expr::lit(10i64))
                    .and(Expr::col("biz_loc").eq(Expr::lit("locA"))),
            ),
        };
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 5);
        assert_eq!(ex.stats.rows_scanned, 10);
    }

    #[test]
    fn combined_range_bounds() {
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(
                Expr::col("rtime")
                    .gt_eq(Expr::lit(20i64))
                    .and(Expr::col("rtime").lt(Expr::lit(30i64))),
            ),
        };
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 10);
        assert_eq!(ex.stats.rows_scanned, 10);
    }

    #[test]
    fn in_list_uses_index() {
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(Expr::InList {
                expr: Box::new(Expr::col("epc")),
                list: vec![Value::str("e1"), Value::str("e2")],
                negated: false,
            }),
        };
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 20);
        assert_eq!(ex.stats.rows_scanned, 20);
        assert_eq!(ex.stats.index_scans, 1);
    }

    #[test]
    fn window_sorts_unless_presorted() {
        let cat = catalog();
        let w = |presorted| LogicalPlan::Window {
            input: Box::new(if presorted {
                LogicalPlan::scan("r").sort(vec![
                    SortKey::asc(Expr::col("epc")),
                    SortKey::asc(Expr::col("rtime")),
                ])
            } else {
                LogicalPlan::scan("r")
            }),
            partition_by: vec![Expr::col("epc")],
            order_by: vec![SortKey::asc(Expr::col("rtime"))],
            exprs: vec![WindowExpr {
                func: WindowFuncKind::Count,
                arg: None,
                frame: Frame::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow),
                alias: "n".into(),
            }],
            presorted,
        };
        let mut ex = Executor::new(&cat);
        ex.execute(&w(false)).unwrap();
        assert_eq!(ex.stats.sorts_performed, 1);

        let mut ex2 = Executor::new(&cat);
        ex2.execute(&w(true)).unwrap();
        // One explicit sort; the window node itself does not re-sort.
        assert_eq!(ex2.stats.sorts_performed, 1);
    }

    #[test]
    fn end_to_end_group_by() {
        let cat = catalog();
        let plan = LogicalPlan::scan("r")
            .filter(Expr::col("rtime").lt(Expr::lit(50i64)))
            .aggregate(
                vec![(Expr::col("biz_loc"), "loc".into())],
                vec![AggExpr {
                    func: AggFunc::CountStar,
                    alias: "n".into(),
                }],
            );
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 2);
        let total: i64 = (0..2).map(|i| out.row(i)[1].as_int().unwrap()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn join_and_semi_join() {
        let cat = catalog();
        let dim_schema = schema_ref(Schema::new(vec![Field::new("gln", DataType::Str)]));
        let dim =
            Batch::from_rows(dim_schema, &[vec![Value::str("locA")]]).unwrap();
        cat.register(Table::new("locs", dim));
        let plan = LogicalPlan::scan_as("r", "c").join(
            LogicalPlan::scan_as("locs", "l"),
            vec![Expr::col("c.biz_loc")],
            vec![Expr::col("l.gln")],
            JoinType::Inner,
        );
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 50);
        assert_eq!(ex.stats.join_probes, 100);

        let plan = LogicalPlan::scan_as("r", "c").join(
            LogicalPlan::scan_as("locs", "l"),
            vec![Expr::col("c.biz_loc")],
            vec![Expr::col("l.gln")],
            JoinType::LeftSemi,
        );
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 50);
        assert_eq!(out.num_columns(), 3);
    }

    #[test]
    fn union_and_limit() {
        let cat = catalog();
        let plan = LogicalPlan::Union {
            inputs: vec![LogicalPlan::scan("r"), LogicalPlan::scan("r")],
        }
        .limit(150);
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 150);
    }

    #[test]
    fn project_renames() {
        let cat = catalog();
        let plan = LogicalPlan::scan("r").project(vec![
            (Expr::col("epc"), "tag".into()),
            (
                Expr::binary(Expr::col("rtime"), BinaryOp::Plus, Expr::lit(1000i64)),
                "shifted".into(),
            ),
        ]);
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.schema().field(0).name, "tag");
        assert_eq!(out.column_by_name("shifted").unwrap().int_at(0), Some(1000));
    }
}
