//! Plan execution facade.
//!
//! [`Executor`] is the stable entry point: it lowers a [`LogicalPlan`] to a
//! [`PhysicalOperator`](crate::physical::PhysicalOperator) tree (see
//! [`crate::physical::lower()`]) and runs it against an
//! [`crate::physical::ExecContext`]. It keeps *work counters*
//! (rows scanned, rows sorted, window-aggregate work, join probes) so
//! experiments can report machine-independent effort alongside wall-clock
//! time — the quantities the paper's §6.2 plan analysis reasons about.
//! Counters are deterministic: identical at any
//! [`ExecOptions::parallelism`].

use crate::batch::Batch;
use crate::error::Result;
use crate::physical::{
    collect_input, lower, ExecContext, ExecOptions, OperatorMetrics, QueryBudget,
};
use crate::plan::LogicalPlan;
use crate::table::Catalog;

/// Deterministic work counters accumulated during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows fetched from base tables (after index narrowing, before residual filters).
    pub rows_scanned: u64,
    /// Scans answered through an ordered index.
    pub index_scans: u64,
    /// Scans that had to read the whole table.
    pub full_scans: u64,
    /// Rows passed through explicit or window-implied sorts.
    pub rows_sorted: u64,
    /// Number of sort operations performed.
    pub sorts_performed: u64,
    /// Key comparisons performed by sorts (run detection/verification plus
    /// merging) — the machine-independent sort cost the run-aware pipeline
    /// shrinks.
    pub sort_comparisons: u64,
    /// Sorts whose input turned out to be a single non-descending run and
    /// was passed through unchanged.
    pub sorts_elided: u64,
    /// Pre-sorted runs consumed by k-way merges (sum of k over merging
    /// sorts; elided and fully-degenerate sorts contribute 0 and n).
    pub merge_runs_used: u64,
    /// Window accumulator operations: values entering or leaving a sliding
    /// aggregate state (plus per-frame recomputation work on the fallback
    /// path). Amortized O(1) per row for the incremental kernels, so this
    /// grows with partition size, not frame width. Identical at any
    /// parallelism.
    pub window_accumulator_ops: u64,
    /// Hash-join probe operations.
    pub join_probes: u64,
    /// Window partitions evaluated (the unit of Φ_C parallel distribution;
    /// counted identically at any parallelism).
    pub partitions_executed: u64,
    /// Segments considered by zone-map pruning across filtered scans.
    pub segments_total: u64,
    /// Segments skipped because their zone maps exclude the scan predicate.
    pub segments_pruned: u64,
    /// Segments that survived pruning (total − pruned).
    pub segments_scanned: u64,
    /// Cleansed-sequence cache hits (join-back rewrite with caching on).
    pub seq_cache_hits: u64,
    /// Cleansed-sequence cache misses.
    pub seq_cache_misses: u64,
    /// Cleansed-sequence cache entries invalidated by appends.
    pub seq_cache_invalidations: u64,
    /// Chunks emitted by streaming operators (0 when running fully
    /// materialized, i.e. `chunk_rows == 0`). Deterministic for a fixed
    /// chunk size: identical at any parallelism.
    pub batches_processed: u64,
    /// Column gathers avoided because a filtering operator marked survivors
    /// with a selection vector instead of copying column data (one per
    /// column per selection-carrying chunk).
    pub selection_avoided_copies: u64,
    /// Partial rows received from shard executors and combined by the
    /// scatter-gather coordinator (0 for unsharded execution).
    pub shard_rows_merged: u64,
    /// Delta rows applied to standing-query state (inserted + deleted +
    /// updated rows across incremental maintenance steps; 0 outside the
    /// streaming subsystem).
    pub maintenance_delta_rows: u64,
    /// Rows scanned by ckey-scoped maintenance re-executions — the
    /// incremental work a standing query pays per publish, compared by the
    /// bench gate against the cost of full recomputation.
    pub maintenance_scoped_rows: u64,
    /// Maintenance steps that fell back to full recompute-and-diff.
    pub maintenance_fallbacks: u64,
    /// Per-value hash computations by the vectorized hash kernels (rows ×
    /// key columns across join build/probe, aggregation, DISTINCT, and
    /// scatter merge). 0 on the row-wise oracle path.
    pub hash_ops: u64,
    /// Full 64-bit hash matches whose normalized keys compared unequal —
    /// genuine collisions resolved by memcmp.
    pub hash_collisions: u64,
    /// Normalized-key memcmps on candidate (hash-equal) table entries.
    pub probe_memcmps: u64,
    /// Bytes written into normalized-key arenas.
    pub key_bytes_encoded: u64,
}

impl ExecStats {
    pub fn add(&mut self, other: &ExecStats) {
        // Exhaustive destructuring: adding a counter without merging it here
        // is a compile error, not a silently dropped statistic.
        let ExecStats {
            rows_scanned,
            index_scans,
            full_scans,
            rows_sorted,
            sorts_performed,
            sort_comparisons,
            sorts_elided,
            merge_runs_used,
            window_accumulator_ops,
            join_probes,
            partitions_executed,
            segments_total,
            segments_pruned,
            segments_scanned,
            seq_cache_hits,
            seq_cache_misses,
            seq_cache_invalidations,
            batches_processed,
            selection_avoided_copies,
            shard_rows_merged,
            maintenance_delta_rows,
            maintenance_scoped_rows,
            maintenance_fallbacks,
            hash_ops,
            hash_collisions,
            probe_memcmps,
            key_bytes_encoded,
        } = other;
        self.rows_scanned += rows_scanned;
        self.index_scans += index_scans;
        self.full_scans += full_scans;
        self.rows_sorted += rows_sorted;
        self.sorts_performed += sorts_performed;
        self.sort_comparisons += sort_comparisons;
        self.sorts_elided += sorts_elided;
        self.merge_runs_used += merge_runs_used;
        self.window_accumulator_ops += window_accumulator_ops;
        self.join_probes += join_probes;
        self.partitions_executed += partitions_executed;
        self.segments_total += segments_total;
        self.segments_pruned += segments_pruned;
        self.segments_scanned += segments_scanned;
        self.seq_cache_hits += seq_cache_hits;
        self.seq_cache_misses += seq_cache_misses;
        self.seq_cache_invalidations += seq_cache_invalidations;
        self.batches_processed += batches_processed;
        self.selection_avoided_copies += selection_avoided_copies;
        self.shard_rows_merged += shard_rows_merged;
        self.maintenance_delta_rows += maintenance_delta_rows;
        self.maintenance_scoped_rows += maintenance_scoped_rows;
        self.maintenance_fallbacks += maintenance_fallbacks;
        self.hash_ops += hash_ops;
        self.hash_collisions += hash_collisions;
        self.probe_memcmps += probe_memcmps;
        self.key_bytes_encoded += key_bytes_encoded;
    }

    /// Fold hash-kernel counters into the executor-level statistics.
    pub fn add_hash(&mut self, h: &crate::hash::HashStats) {
        self.hash_ops += h.hash_ops;
        self.hash_collisions += h.hash_collisions;
        self.probe_memcmps += h.probe_memcmps;
        self.key_bytes_encoded += h.key_bytes_encoded;
    }
}

/// Executes logical plans against a catalog.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    options: ExecOptions,
    budget: QueryBudget,
    pub stats: ExecStats,
    /// Wall-clock nanoseconds spent in window evaluation across all plans
    /// this executor ran. Not part of [`ExecStats`]: timings vary with
    /// parallelism, counters must not.
    pub window_eval_nanos: u64,
    /// Per-operator metrics tree of the *most recent* plan this executor
    /// ran (EXPLAIN ANALYZE data source). Unlike `stats`, which accumulates
    /// across plans, each `execute` replaces this.
    pub metrics: Option<OperatorMetrics>,
}

impl<'a> Executor<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        Self::with_options(catalog, ExecOptions::default())
    }

    pub fn with_options(catalog: &'a Catalog, options: ExecOptions) -> Self {
        Self::with_budget(catalog, options, QueryBudget::unlimited())
    }

    /// An executor whose plans run under a [`QueryBudget`] (deadline, row
    /// budget, cooperative cancellation). A tripped budget surfaces as
    /// [`crate::error::Error::Aborted`] with no partial result.
    pub fn with_budget(catalog: &'a Catalog, options: ExecOptions, budget: QueryBudget) -> Self {
        Executor {
            catalog,
            options,
            budget,
            stats: ExecStats::default(),
            window_eval_nanos: 0,
            metrics: None,
        }
    }

    /// Execute a plan to a fully materialized batch: lower to a physical
    /// operator tree, then run it — streaming 1024-row morsels through
    /// pipelined operators when [`ExecOptions::chunk_rows`] > 0, fully
    /// materialized otherwise.
    pub fn execute(&mut self, plan: &LogicalPlan) -> Result<Batch> {
        let physical = lower(plan, self.catalog)?;
        let mut ctx = ExecContext::with_budget(self.catalog, self.options, self.budget.clone());
        let out = collect_input(physical.as_ref(), &mut ctx);
        self.stats.add(&ctx.stats);
        self.window_eval_nanos += ctx.window_eval_nanos;
        self.metrics = ctx.metrics.finish();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggExpr, AggFunc};
    use crate::batch::schema_ref;
    use crate::expr::{BinaryOp, Expr};
    use crate::join::JoinType;
    use crate::physical::display_physical;
    use crate::schema::{Field, Schema};
    use crate::sort::SortKey;
    use crate::table::Table;
    use crate::value::{DataType, Value};
    use crate::window::{Frame, FrameBound, WindowExpr, WindowFuncKind};

    fn catalog() -> Catalog {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
        ]));
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::str(format!("e{}", i % 10)),
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "locA" } else { "locB" }),
                ]
            })
            .collect();
        let b = Batch::from_rows(schema, &rows).unwrap();
        let mut t = Table::new("r", b);
        t.create_index("rtime").unwrap();
        t.create_index("epc").unwrap();
        let cat = Catalog::new();
        cat.register(t);
        cat
    }

    #[test]
    fn index_scan_narrows_fetch() {
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(Expr::col("rtime").lt(Expr::lit(10i64))),
        };
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 10);
        assert_eq!(ex.stats.rows_scanned, 10);
        assert_eq!(ex.stats.index_scans, 1);
        assert_eq!(ex.stats.full_scans, 0);
    }

    #[test]
    fn segmented_scan_prunes_by_zone_map() {
        // Same data as `catalog()` but sealed into 10-row segments. rtime is
        // monotone, so `rtime < 10` admits exactly one segment — and no
        // index exists, so the fetch itself is segment-pruned.
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::str(format!("e{}", i % 10)), Value::Int(i)])
            .collect();
        let b = Batch::from_rows(schema, &rows).unwrap();
        let cat = Catalog::new();
        cat.register(Table::with_segment_rows("r", b, 10));
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(Expr::col("rtime").lt(Expr::lit(10i64))),
        };
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 10);
        assert_eq!(ex.stats.full_scans, 1);
        assert_eq!(
            ex.stats.rows_scanned, 10,
            "only the surviving segment is fetched"
        );
        assert_eq!(ex.stats.segments_total, 10);
        assert_eq!(ex.stats.segments_pruned, 9);
        assert_eq!(ex.stats.segments_scanned, 1);
        let m = ex.metrics.as_ref().unwrap();
        assert!(m
            .render_text(false)
            .contains("segments_total=10 segments_pruned=9 segments_scanned=1"));
    }

    #[test]
    fn monolithic_table_never_prunes() {
        // A single-segment table with a filtered scan: counters record the
        // decision (1 segment considered, 0 pruned), results unchanged.
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(Expr::col("rtime").lt(Expr::lit(10i64))),
        };
        let mut ex = Executor::new(&cat);
        ex.execute(&plan).unwrap();
        assert_eq!(ex.stats.segments_total, 1);
        assert_eq!(ex.stats.segments_pruned, 0);
        assert_eq!(ex.stats.segments_scanned, 1);
    }

    #[test]
    fn unindexed_filter_full_scans() {
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(Expr::col("biz_loc").eq(Expr::lit("locA"))),
        };
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 50);
        assert_eq!(ex.stats.full_scans, 1);
        assert_eq!(ex.stats.rows_scanned, 100);
    }

    #[test]
    fn residual_applied_after_index() {
        let cat = catalog();
        // rtime < 10 uses the index, biz_loc = 'locA' is residual.
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(
                Expr::col("rtime")
                    .lt(Expr::lit(10i64))
                    .and(Expr::col("biz_loc").eq(Expr::lit("locA"))),
            ),
        };
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 5);
        assert_eq!(ex.stats.rows_scanned, 10);
    }

    #[test]
    fn combined_range_bounds() {
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(
                Expr::col("rtime")
                    .gt_eq(Expr::lit(20i64))
                    .and(Expr::col("rtime").lt(Expr::lit(30i64))),
            ),
        };
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 10);
        assert_eq!(ex.stats.rows_scanned, 10);
    }

    #[test]
    fn in_list_uses_index() {
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(Expr::InList {
                expr: Box::new(Expr::col("epc")),
                list: vec![Value::str("e1"), Value::str("e2")],
                negated: false,
            }),
        };
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 20);
        assert_eq!(ex.stats.rows_scanned, 20);
        assert_eq!(ex.stats.index_scans, 1);
    }

    fn count_window(presorted: bool) -> LogicalPlan {
        LogicalPlan::Window {
            input: Box::new(if presorted {
                LogicalPlan::scan("r").sort(vec![
                    SortKey::asc(Expr::col("epc")),
                    SortKey::asc(Expr::col("rtime")),
                ])
            } else {
                LogicalPlan::scan("r")
            }),
            partition_by: vec![Expr::col("epc")],
            order_by: vec![SortKey::asc(Expr::col("rtime"))],
            exprs: vec![WindowExpr {
                func: WindowFuncKind::Count,
                arg: None,
                frame: Frame::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow),
                alias: "n".into(),
            }],
            presorted,
        }
    }

    #[test]
    fn window_sorts_unless_presorted() {
        let cat = catalog();
        let mut ex = Executor::new(&cat);
        ex.execute(&count_window(false)).unwrap();
        assert_eq!(ex.stats.sorts_performed, 1);

        let mut ex2 = Executor::new(&cat);
        ex2.execute(&count_window(true)).unwrap();
        // One explicit sort; the window node itself does not re-sort.
        assert_eq!(ex2.stats.sorts_performed, 1);
    }

    #[test]
    fn window_counts_partitions() {
        let cat = catalog();
        let mut ex = Executor::new(&cat);
        ex.execute(&count_window(false)).unwrap();
        // 10 distinct epc values → 10 partitions, at any parallelism.
        assert_eq!(ex.stats.partitions_executed, 10);

        let mut par = Executor::with_options(&cat, ExecOptions::with_parallelism(4));
        par.execute(&count_window(false)).unwrap();
        assert_eq!(par.stats, ex.stats);
    }

    #[test]
    fn parallel_window_matches_serial() {
        fn rows_of(b: &Batch) -> Vec<Vec<Value>> {
            (0..b.num_rows()).map(|i| b.row(i)).collect()
        }
        let cat = catalog();
        let mut serial = Executor::new(&cat);
        let expected = serial.execute(&count_window(false)).unwrap();
        for p in [2, 3, 8, 64] {
            let mut par = Executor::with_options(&cat, ExecOptions::with_parallelism(p));
            let got = par.execute(&count_window(false)).unwrap();
            assert_eq!(rows_of(&got), rows_of(&expected), "parallelism {p}");
            assert_eq!(par.stats, serial.stats, "parallelism {p}");
        }
    }

    #[test]
    fn lowered_plan_shape() {
        let cat = catalog();
        // Unsorted window input → explicit SortExec under the WindowExec.
        let physical = lower(&count_window(false), &cat).unwrap();
        let shown = display_physical(physical.as_ref());
        let names: Vec<&str> = shown.lines().map(|l| l.trim()).collect();
        assert!(names[0].starts_with("WindowExec"), "{shown}");
        assert!(names[1].starts_with("SortExec"), "{shown}");
        assert!(names[2].starts_with("ScanExec"), "{shown}");

        // Presorted window input → no extra sort inserted.
        let physical = lower(&count_window(true), &cat).unwrap();
        let shown = display_physical(physical.as_ref());
        assert_eq!(
            shown.lines().filter(|l| l.contains("SortExec")).count(),
            1,
            "{shown}"
        );
    }

    #[test]
    fn scan_carries_index_candidates() {
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(
                Expr::col("rtime")
                    .lt(Expr::lit(10i64))
                    .and(Expr::col("biz_loc").eq(Expr::lit("locA"))),
            ),
        };
        let physical = lower(&plan, &cat).unwrap();
        // biz_loc equality also yields a candidate bound; rtime is listed
        // first (column-position order). Only rtime is actually indexed —
        // the runtime pick is data-dependent.
        assert!(
            physical
                .label()
                .contains("index_candidates=[rtime, biz_loc]"),
            "{}",
            physical.label()
        );
    }

    #[test]
    fn budget_aborts_cooperatively() {
        use crate::error::{AbortReason, Error};
        use crate::physical::QueryBudget;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        use std::time::Duration;

        let cat = catalog();
        // A pre-set cancellation token aborts at the first checkpoint.
        let token = Arc::new(AtomicBool::new(false));
        token.store(true, Ordering::Relaxed);
        let mut ex = Executor::with_budget(
            &cat,
            ExecOptions::default(),
            QueryBudget::unlimited().with_cancel(Arc::clone(&token)),
        );
        assert!(matches!(
            ex.execute(&count_window(false)),
            Err(Error::Aborted(AbortReason::Cancelled))
        ));

        // An already-expired deadline aborts.
        let mut ex = Executor::with_budget(
            &cat,
            ExecOptions::default(),
            QueryBudget::unlimited().with_deadline(Duration::ZERO),
        );
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            ex.execute(&count_window(false)),
            Err(Error::Aborted(AbortReason::DeadlineExceeded))
        ));

        // A row budget smaller than the scan output aborts; the same plan
        // re-runs cleanly on an unlimited executor (no state was corrupted).
        let mut ex = Executor::with_budget(
            &cat,
            ExecOptions::default(),
            QueryBudget::unlimited().with_row_limit(5),
        );
        assert!(matches!(
            ex.execute(&count_window(false)),
            Err(Error::Aborted(AbortReason::RowLimitExceeded))
        ));
        let mut ok = Executor::new(&cat);
        assert_eq!(ok.execute(&count_window(false)).unwrap().num_rows(), 100);

        // A generous budget changes nothing: results and counters match an
        // unbudgeted run, at serial and parallel execution alike.
        for p in [1, 4] {
            let mut budgeted = Executor::with_budget(
                &cat,
                ExecOptions::with_parallelism(p),
                QueryBudget::unlimited()
                    .with_row_limit(1_000_000)
                    .with_deadline(Duration::from_secs(3600))
                    .with_cancel(Arc::new(AtomicBool::new(false))),
            );
            let b = budgeted.execute(&count_window(false)).unwrap();
            let mut plain = Executor::new(&cat);
            let expect = plain.execute(&count_window(false)).unwrap();
            assert_eq!(
                (0..b.num_rows()).map(|i| b.row(i)).collect::<Vec<_>>(),
                (0..expect.num_rows())
                    .map(|i| expect.row(i))
                    .collect::<Vec<_>>()
            );
            assert_eq!(budgeted.stats, plain.stats);
        }
    }

    #[test]
    fn end_to_end_group_by() {
        let cat = catalog();
        let plan = LogicalPlan::scan("r")
            .filter(Expr::col("rtime").lt(Expr::lit(50i64)))
            .aggregate(
                vec![(Expr::col("biz_loc"), "loc".into())],
                vec![AggExpr {
                    func: AggFunc::CountStar,
                    alias: "n".into(),
                }],
            );
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 2);
        let total: i64 = (0..2).map(|i| out.row(i)[1].as_int().unwrap()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn join_and_semi_join() {
        let cat = catalog();
        let dim_schema = schema_ref(Schema::new(vec![Field::new("gln", DataType::Str)]));
        let dim = Batch::from_rows(dim_schema, &[vec![Value::str("locA")]]).unwrap();
        cat.register(Table::new("locs", dim));
        let plan = LogicalPlan::scan_as("r", "c").join(
            LogicalPlan::scan_as("locs", "l"),
            vec![Expr::col("c.biz_loc")],
            vec![Expr::col("l.gln")],
            JoinType::Inner,
        );
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 50);
        assert_eq!(ex.stats.join_probes, 100);

        let plan = LogicalPlan::scan_as("r", "c").join(
            LogicalPlan::scan_as("locs", "l"),
            vec![Expr::col("c.biz_loc")],
            vec![Expr::col("l.gln")],
            JoinType::LeftSemi,
        );
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 50);
        assert_eq!(out.num_columns(), 3);
    }

    #[test]
    fn union_and_limit() {
        let cat = catalog();
        let plan = LogicalPlan::Union {
            inputs: vec![LogicalPlan::scan("r"), LogicalPlan::scan("r")],
        }
        .limit(150);
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 150);
    }

    #[test]
    fn project_renames() {
        let cat = catalog();
        let plan = LogicalPlan::scan("r").project(vec![
            (Expr::col("epc"), "tag".into()),
            (
                Expr::binary(Expr::col("rtime"), BinaryOp::Plus, Expr::lit(1000i64)),
                "shifted".into(),
            ),
        ]);
        let mut ex = Executor::new(&cat);
        let out = ex.execute(&plan).unwrap();
        assert_eq!(out.schema().field(0).name, "tag");
        assert_eq!(out.column_by_name("shifted").unwrap().int_at(0), Some(1000));
    }
}
