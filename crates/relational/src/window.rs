//! SQL/OLAP window functions.
//!
//! This module is the engine's implementation of the SQL99 OLAP amendment
//! subset the paper relies on: scalar aggregates over `PARTITION BY ...
//! ORDER BY ...` windows with `ROWS` or `RANGE` frames, e.g.
//!
//! ```sql
//! max(biz_loc) OVER (PARTITION BY epc ORDER BY rtime ASC
//!                    ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING)
//! ```
//!
//! The input batch must already be sorted by (partition keys, order keys);
//! the [`crate::plan::LogicalPlan::Window`] node inserts a sort when needed
//! and the optimizer removes it when the ordering is already available —
//! the "order sharing" effect central to the paper's §6.2 analysis.

use crate::batch::Batch;
use crate::column::{Column, ColumnBuilder};
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::value::{DataType, Value};
use std::fmt;

/// Frame bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameBound {
    UnboundedPreceding,
    /// `n PRECEDING` (rows or range units).
    Preceding(i64),
    CurrentRow,
    /// `n FOLLOWING` (rows or range units).
    Following(i64),
    UnboundedFollowing,
}

impl fmt::Display for FrameBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameBound::UnboundedPreceding => f.write_str("UNBOUNDED PRECEDING"),
            FrameBound::Preceding(n) => write!(f, "{n} PRECEDING"),
            FrameBound::CurrentRow => f.write_str("CURRENT ROW"),
            FrameBound::Following(n) => write!(f, "{n} FOLLOWING"),
            FrameBound::UnboundedFollowing => f.write_str("UNBOUNDED FOLLOWING"),
        }
    }
}

/// Frame units: physical rows or logical range over the order key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameUnits {
    Rows,
    Range,
}

/// A window frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub units: FrameUnits,
    pub start: FrameBound,
    pub end: FrameBound,
}

impl Frame {
    pub fn rows(start: FrameBound, end: FrameBound) -> Self {
        Frame {
            units: FrameUnits::Rows,
            start,
            end,
        }
    }

    pub fn range(start: FrameBound, end: FrameBound) -> Self {
        Frame {
            units: FrameUnits::Range,
            start,
            end,
        }
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} BETWEEN {} AND {}",
            match self.units {
                FrameUnits::Rows => "ROWS",
                FrameUnits::Range => "RANGE",
            },
            self.start,
            self.end
        )
    }
}

/// Aggregate function kinds usable over a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowFuncKind {
    Max,
    Min,
    Sum,
    /// `count(expr)` — counts non-null frame rows; with no argument, `count(*)`.
    Count,
    Avg,
}

impl fmt::Display for WindowFuncKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WindowFuncKind::Max => "max",
            WindowFuncKind::Min => "min",
            WindowFuncKind::Sum => "sum",
            WindowFuncKind::Count => "count",
            WindowFuncKind::Avg => "avg",
        };
        f.write_str(s)
    }
}

/// One window aggregate: `func(arg) OVER (<shared partition/order> frame)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowExpr {
    pub func: WindowFuncKind,
    /// `None` means `count(*)`.
    pub arg: Option<Expr>,
    pub frame: Frame,
    /// Output column name.
    pub alias: String,
}

impl fmt::Display for WindowExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(a) => write!(
                f,
                "{}({a}) OVER ({}) AS {}",
                self.func, self.frame, self.alias
            ),
            None => write!(
                f,
                "{}(*) OVER ({}) AS {}",
                self.func, self.frame, self.alias
            ),
        }
    }
}

impl WindowExpr {
    /// Result type of this window aggregate.
    pub fn data_type(&self, schema: &crate::schema::Schema) -> Result<DataType> {
        match self.func {
            WindowFuncKind::Count => Ok(DataType::Int),
            WindowFuncKind::Avg => Ok(DataType::Double),
            WindowFuncKind::Sum => {
                let arg = self
                    .arg
                    .as_ref()
                    .ok_or_else(|| Error::Plan("sum() requires an argument".into()))?;
                Ok(arg.data_type(schema)?)
            }
            WindowFuncKind::Max | WindowFuncKind::Min => {
                let arg = self
                    .arg
                    .as_ref()
                    .ok_or_else(|| Error::Plan(format!("{}() requires an argument", self.func)))?;
                Ok(arg.data_type(schema)?)
            }
        }
    }
}

/// Find partition boundaries: ranges of rows with equal partition-key values
/// (NULLs compare equal for partitioning, per SQL).
pub fn partition_ranges(cols: &[Column], n: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return vec![];
    }
    if cols.is_empty() {
        return vec![(0, n)];
    }
    let mut ranges = Vec::new();
    let mut start = 0;
    for i in 1..n {
        let boundary = cols.iter().any(|c| c.value(i) != c.value(i - 1));
        if boundary {
            ranges.push((start, i));
            start = i;
        }
    }
    ranges.push((start, n));
    ranges
}

/// Compute the inclusive frame `[lo, hi]` for row `i` inside partition
/// `[p_lo, p_hi)`. Returns `None` for an empty frame.
fn frame_rows(
    frame: &Frame,
    i: usize,
    p_lo: usize,
    p_hi: usize,
    order_key: Option<&Column>,
) -> Result<Option<(usize, usize)>> {
    match frame.units {
        FrameUnits::Rows => {
            let lo = match frame.start {
                FrameBound::UnboundedPreceding => p_lo as i64,
                FrameBound::Preceding(k) => i as i64 - k,
                FrameBound::CurrentRow => i as i64,
                FrameBound::Following(k) => i as i64 + k,
                FrameBound::UnboundedFollowing => {
                    return Err(Error::Plan(
                        "frame start cannot be UNBOUNDED FOLLOWING".into(),
                    ))
                }
            };
            let hi = match frame.end {
                FrameBound::UnboundedPreceding => {
                    return Err(Error::Plan(
                        "frame end cannot be UNBOUNDED PRECEDING".into(),
                    ))
                }
                FrameBound::Preceding(k) => i as i64 - k,
                FrameBound::CurrentRow => i as i64,
                FrameBound::Following(k) => i as i64 + k,
                FrameBound::UnboundedFollowing => p_hi as i64 - 1,
            };
            let lo = lo.max(p_lo as i64);
            let hi = hi.min(p_hi as i64 - 1);
            if lo > hi {
                Ok(None)
            } else {
                Ok(Some((lo as usize, hi as usize)))
            }
        }
        FrameUnits::Range => {
            let key = order_key.ok_or_else(|| {
                Error::Plan("RANGE frame requires exactly one numeric ORDER BY key".into())
            })?;
            let Some(v) = key_num(key, i) else {
                // NULL order key: the frame is the NULL peer group; for our
                // workloads this does not arise — return empty.
                return Ok(None);
            };
            // partition_point over the sorted keys within the partition.
            let first_ge = |threshold: i64| -> usize {
                let mut lo = p_lo;
                let mut hi = p_hi;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if key_num(key, mid).is_some_and(|k| k < threshold) {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo
            };
            let last_le = |threshold: i64| -> Option<usize> {
                let p = first_ge(threshold + 1);
                if p == p_lo {
                    None
                } else {
                    Some(p - 1)
                }
            };
            let lo = match frame.start {
                FrameBound::UnboundedPreceding => p_lo,
                FrameBound::Preceding(k) => first_ge(v - k),
                FrameBound::CurrentRow => first_ge(v),
                FrameBound::Following(k) => first_ge(v + k),
                FrameBound::UnboundedFollowing => {
                    return Err(Error::Plan(
                        "frame start cannot be UNBOUNDED FOLLOWING".into(),
                    ))
                }
            };
            let hi = match frame.end {
                FrameBound::UnboundedPreceding => {
                    return Err(Error::Plan(
                        "frame end cannot be UNBOUNDED PRECEDING".into(),
                    ))
                }
                FrameBound::Preceding(k) => last_le(v - k),
                FrameBound::CurrentRow => last_le(v),
                FrameBound::Following(k) => last_le(v + k),
                FrameBound::UnboundedFollowing => Some(p_hi - 1),
            };
            match hi {
                Some(hi) if lo <= hi && lo < p_hi => Ok(Some((lo, hi))),
                _ => Ok(None),
            }
        }
    }
}

#[inline]
fn key_num(c: &Column, i: usize) -> Option<i64> {
    if c.is_null(i) {
        None
    } else {
        match c.value(i) {
            Value::Int(v) => Some(v),
            Value::Double(v) => Some(v as i64),
            _ => None,
        }
    }
}

/// Prepared state for evaluating a set of window aggregates over one batch
/// **already sorted** by (partition keys, order keys).
///
/// All expression evaluation against the batch happens in [`prepare`]
/// (partition keys, order key, aggregate arguments), so per-partition
/// evaluation afterwards is a pure read-only computation — this is what lets
/// the physical window operator farm partitions out to worker threads.
///
/// [`prepare`]: WindowEval::prepare
pub struct WindowEval<'a> {
    exprs: &'a [WindowExpr],
    order_col: Option<Column>,
    /// Evaluated argument column per expression (`None` for `count(*)`).
    arg_cols: Vec<Option<Column>>,
    out_types: Vec<DataType>,
    /// Partition key columns (kept for shard assignment by the caller).
    part_cols: Vec<Column>,
    ranges: Vec<(usize, usize)>,
}

impl<'a> WindowEval<'a> {
    pub fn prepare(
        batch: &Batch,
        partition_by: &[Expr],
        order_by_key: Option<&Expr>,
        exprs: &'a [WindowExpr],
    ) -> Result<Self> {
        let n = batch.num_rows();
        let part_cols: Vec<Column> = partition_by
            .iter()
            .map(|e| e.evaluate(batch))
            .collect::<Result<_>>()?;
        let order_col = order_by_key.map(|e| e.evaluate(batch)).transpose()?;
        let arg_cols = exprs
            .iter()
            .map(|we| we.arg.as_ref().map(|a| a.evaluate(batch)).transpose())
            .collect::<Result<_>>()?;
        let out_types = exprs
            .iter()
            .map(|we| we.data_type(batch.schema()))
            .collect::<Result<_>>()?;
        let ranges = partition_ranges(&part_cols, n);
        Ok(WindowEval {
            exprs,
            order_col,
            arg_cols,
            out_types,
            part_cols,
            ranges,
        })
    }

    /// The partition ranges, in input (sorted) order.
    pub fn partitions(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Result type per window expression.
    pub fn output_types(&self) -> &[DataType] {
        &self.out_types
    }

    /// The evaluated partition-key columns.
    pub fn partition_cols(&self) -> &[Column] {
        &self.part_cols
    }

    /// Evaluate all window expressions over one partition `[p_lo, p_hi)`.
    /// Returns one value vector per expression (row-aligned with the
    /// partition) plus the frame rows visited (the work counter).
    pub fn eval_partition(&self, (p_lo, p_hi): (usize, usize)) -> Result<(Vec<Vec<Value>>, u64)> {
        let mut work: u64 = 0;
        let mut outputs = Vec::with_capacity(self.exprs.len());
        for (we, arg_col) in self.exprs.iter().zip(&self.arg_cols) {
            let mut vals = Vec::with_capacity(p_hi - p_lo);
            for i in p_lo..p_hi {
                let frame = frame_rows(&we.frame, i, p_lo, p_hi, self.order_col.as_ref())?;
                let v = match frame {
                    None => match we.func {
                        WindowFuncKind::Count => Value::Int(0),
                        _ => Value::Null,
                    },
                    Some((lo, hi)) => {
                        work += (hi - lo + 1) as u64;
                        accumulate(we.func, arg_col.as_ref(), lo, hi)?
                    }
                };
                vals.push(v);
            }
            outputs.push(vals);
        }
        Ok((outputs, work))
    }
}

/// Evaluate window aggregates over a batch **already sorted** by
/// (partition keys, order keys). Returns one output column per `WindowExpr`,
/// plus the number of aggregate evaluations performed (a work counter).
///
/// This is the serial path; the physical window operator uses [`WindowEval`]
/// directly so it can distribute partitions across threads.
pub fn evaluate_window(
    batch: &Batch,
    partition_by: &[Expr],
    order_by_key: Option<&Expr>,
    exprs: &[WindowExpr],
) -> Result<(Vec<Column>, u64)> {
    let n = batch.num_rows();
    let ev = WindowEval::prepare(batch, partition_by, order_by_key, exprs)?;
    let mut work: u64 = 0;
    let mut builders: Vec<ColumnBuilder> = ev
        .output_types()
        .iter()
        .map(|&dt| ColumnBuilder::new(dt, n))
        .collect();
    for &range in ev.partitions() {
        let (vals, w) = ev.eval_partition(range)?;
        work += w;
        for (b, vs) in builders.iter_mut().zip(&vals) {
            for v in vs {
                b.push(v)?;
            }
        }
    }
    Ok((
        builders.into_iter().map(ColumnBuilder::finish).collect(),
        work,
    ))
}

fn accumulate(func: WindowFuncKind, arg: Option<&Column>, lo: usize, hi: usize) -> Result<Value> {
    match func {
        WindowFuncKind::Count => {
            let c = match arg {
                None => (hi - lo + 1) as i64,
                Some(col) => (lo..=hi).filter(|&i| !col.is_null(i)).count() as i64,
            };
            Ok(Value::Int(c))
        }
        WindowFuncKind::Max | WindowFuncKind::Min => {
            let col = arg.ok_or_else(|| Error::Plan("max/min need an argument".into()))?;
            let mut best: Option<Value> = None;
            for i in lo..=hi {
                if col.is_null(i) {
                    continue;
                }
                let v = col.value(i);
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = if func == WindowFuncKind::Max {
                            v.total_cmp(&b).is_gt()
                        } else {
                            v.total_cmp(&b).is_lt()
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        WindowFuncKind::Sum | WindowFuncKind::Avg => {
            let col = arg.ok_or_else(|| Error::Plan("sum/avg need an argument".into()))?;
            let mut sum_i: i64 = 0;
            let mut sum_f: f64 = 0.0;
            let mut is_float = col.data_type() == DataType::Double;
            let mut count = 0i64;
            for i in lo..=hi {
                if col.is_null(i) {
                    continue;
                }
                match col.value(i) {
                    Value::Int(v) => {
                        sum_i = sum_i.checked_add(v).ok_or_else(|| {
                            Error::Execution("sum overflow in window aggregate".into())
                        })?;
                    }
                    Value::Double(v) => {
                        is_float = true;
                        sum_f += v;
                    }
                    other => {
                        return Err(Error::Execution(format!(
                            "sum/avg over non-numeric value {other}"
                        )))
                    }
                }
                count += 1;
            }
            if count == 0 {
                return Ok(Value::Null);
            }
            let total = sum_f + sum_i as f64;
            match func {
                WindowFuncKind::Sum => {
                    if is_float {
                        Ok(Value::Double(total))
                    } else {
                        Ok(Value::Int(sum_i))
                    }
                }
                WindowFuncKind::Avg => Ok(Value::Double(total / count as f64)),
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;
    use crate::schema::{Field, Schema};

    /// epc-sorted reads: (epc, rtime, loc)
    fn reads() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("loc", DataType::Str),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("e1"), Value::Int(10), Value::str("a")],
                vec![Value::str("e1"), Value::Int(20), Value::str("a")],
                vec![Value::str("e1"), Value::Int(50), Value::str("b")],
                vec![Value::str("e2"), Value::Int(5), Value::str("c")],
                vec![Value::str("e2"), Value::Int(90), Value::str("d")],
            ],
        )
        .unwrap()
    }

    fn prev_loc_expr() -> WindowExpr {
        WindowExpr {
            func: WindowFuncKind::Max,
            arg: Some(Expr::col("loc")),
            frame: Frame::rows(FrameBound::Preceding(1), FrameBound::Preceding(1)),
            alias: "loc_before".into(),
        }
    }

    #[test]
    fn rows_one_preceding_is_lag() {
        let (cols, _) = evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[prev_loc_expr()],
        )
        .unwrap();
        let c = &cols[0];
        // First row of each partition has an empty frame -> NULL.
        assert!(c.is_null(0));
        assert_eq!(c.value(1), Value::str("a"));
        assert_eq!(c.value(2), Value::str("a"));
        assert!(c.is_null(3));
        assert_eq!(c.value(4), Value::str("c"));
    }

    #[test]
    fn range_following_window() {
        // has_b_within_30s_after: max(case loc='b') over range (1 following, 30 following)
        let case = Expr::Case {
            branches: vec![(Expr::col("loc").eq(Expr::lit("b")), Expr::lit(1i64))],
            else_expr: Some(Box::new(Expr::lit(0i64))),
        };
        let we = WindowExpr {
            func: WindowFuncKind::Max,
            arg: Some(case),
            frame: Frame::range(FrameBound::Following(1), FrameBound::Following(30)),
            alias: "has_b_after".into(),
        };
        let (cols, _) = evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[we],
        )
        .unwrap();
        let c = &cols[0];
        // e1@10: window (11..=40] contains rtime=20 (loc=a) -> 0
        assert_eq!(c.value(0), Value::Int(0));
        // e1@20: window (21..=50] contains rtime=50 (loc=b) -> 1
        assert_eq!(c.value(1), Value::Int(1));
        // e1@50: nothing after -> empty frame -> NULL
        assert!(c.is_null(2));
        // e2@5: window contains nothing within 30 -> empty -> NULL
        assert!(c.is_null(3));
    }

    #[test]
    fn count_star_over_partition() {
        let we = WindowExpr {
            func: WindowFuncKind::Count,
            arg: None,
            frame: Frame::rows(
                FrameBound::UnboundedPreceding,
                FrameBound::UnboundedFollowing,
            ),
            alias: "n".into(),
        };
        let (cols, _) = evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[we],
        )
        .unwrap();
        let c = &cols[0];
        assert_eq!(c.value(0), Value::Int(3));
        assert_eq!(c.value(4), Value::Int(2));
    }

    #[test]
    fn empty_count_frame_is_zero() {
        let we = WindowExpr {
            func: WindowFuncKind::Count,
            arg: None,
            frame: Frame::rows(FrameBound::Preceding(1), FrameBound::Preceding(1)),
            alias: "n".into(),
        };
        let (cols, _) = evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[we],
        )
        .unwrap();
        assert_eq!(cols[0].value(0), Value::Int(0));
        assert_eq!(cols[0].value(1), Value::Int(1));
    }

    #[test]
    fn sum_and_avg() {
        let sum = WindowExpr {
            func: WindowFuncKind::Sum,
            arg: Some(Expr::col("rtime")),
            frame: Frame::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow),
            alias: "s".into(),
        };
        let avg = WindowExpr {
            func: WindowFuncKind::Avg,
            arg: Some(Expr::col("rtime")),
            frame: Frame::rows(
                FrameBound::UnboundedPreceding,
                FrameBound::UnboundedFollowing,
            ),
            alias: "a".into(),
        };
        let (cols, _) = evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[sum, avg],
        )
        .unwrap();
        assert_eq!(cols[0].value(2), Value::Int(80));
        assert_eq!(cols[1].value(3), Value::Double(47.5));
    }

    #[test]
    fn no_partition_is_single_sequence() {
        let we = prev_loc_expr();
        let (cols, _) = evaluate_window(&reads(), &[], Some(&Expr::col("rtime")), &[we]).unwrap();
        // With no partitioning, row 3 sees row 2's loc.
        assert_eq!(cols[0].value(3), Value::str("b"));
    }

    #[test]
    fn work_counter_counts_frame_rows() {
        let we = WindowExpr {
            func: WindowFuncKind::Count,
            arg: None,
            frame: Frame::rows(
                FrameBound::UnboundedPreceding,
                FrameBound::UnboundedFollowing,
            ),
            alias: "n".into(),
        };
        let (_, work) = evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[we],
        )
        .unwrap();
        // e1 partition: 3 rows x frame 3 = 9; e2: 2 x 2 = 4.
        assert_eq!(work, 13);
    }

    #[test]
    fn invalid_frames_rejected() {
        let we = WindowExpr {
            func: WindowFuncKind::Max,
            arg: Some(Expr::col("loc")),
            frame: Frame::rows(FrameBound::UnboundedFollowing, FrameBound::CurrentRow),
            alias: "x".into(),
        };
        assert!(evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[we]
        )
        .is_err());
    }
}
