//! SQL/OLAP window functions.
//!
//! This module is the engine's implementation of the SQL99 OLAP amendment
//! subset the paper relies on: scalar aggregates over `PARTITION BY ...
//! ORDER BY ...` windows with `ROWS` or `RANGE` frames, e.g.
//!
//! ```sql
//! max(biz_loc) OVER (PARTITION BY epc ORDER BY rtime ASC
//!                    ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING)
//! ```
//!
//! The input batch must already be sorted by (partition keys, order keys);
//! the [`crate::plan::LogicalPlan::Window`] node inserts a sort when needed
//! and the optimizer removes it when the ordering is already available —
//! the "order sharing" effect central to the paper's §6.2 analysis.

use crate::batch::Batch;
use crate::column::{Column, ColumnBuilder};
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::value::{DataType, Value};
use std::collections::VecDeque;
use std::fmt;

/// Frame bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameBound {
    UnboundedPreceding,
    /// `n PRECEDING` (rows or range units).
    Preceding(i64),
    CurrentRow,
    /// `n FOLLOWING` (rows or range units).
    Following(i64),
    UnboundedFollowing,
}

impl fmt::Display for FrameBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameBound::UnboundedPreceding => f.write_str("UNBOUNDED PRECEDING"),
            FrameBound::Preceding(n) => write!(f, "{n} PRECEDING"),
            FrameBound::CurrentRow => f.write_str("CURRENT ROW"),
            FrameBound::Following(n) => write!(f, "{n} FOLLOWING"),
            FrameBound::UnboundedFollowing => f.write_str("UNBOUNDED FOLLOWING"),
        }
    }
}

/// Frame units: physical rows or logical range over the order key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameUnits {
    Rows,
    Range,
}

/// A window frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub units: FrameUnits,
    pub start: FrameBound,
    pub end: FrameBound,
}

impl Frame {
    pub fn rows(start: FrameBound, end: FrameBound) -> Self {
        Frame {
            units: FrameUnits::Rows,
            start,
            end,
        }
    }

    pub fn range(start: FrameBound, end: FrameBound) -> Self {
        Frame {
            units: FrameUnits::Range,
            start,
            end,
        }
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} BETWEEN {} AND {}",
            match self.units {
                FrameUnits::Rows => "ROWS",
                FrameUnits::Range => "RANGE",
            },
            self.start,
            self.end
        )
    }
}

/// Aggregate function kinds usable over a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowFuncKind {
    Max,
    Min,
    Sum,
    /// `count(expr)` — counts non-null frame rows; with no argument, `count(*)`.
    Count,
    Avg,
}

impl fmt::Display for WindowFuncKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WindowFuncKind::Max => "max",
            WindowFuncKind::Min => "min",
            WindowFuncKind::Sum => "sum",
            WindowFuncKind::Count => "count",
            WindowFuncKind::Avg => "avg",
        };
        f.write_str(s)
    }
}

/// One window aggregate: `func(arg) OVER (<shared partition/order> frame)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowExpr {
    pub func: WindowFuncKind,
    /// `None` means `count(*)`.
    pub arg: Option<Expr>,
    pub frame: Frame,
    /// Output column name.
    pub alias: String,
}

impl fmt::Display for WindowExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(a) => write!(
                f,
                "{}({a}) OVER ({}) AS {}",
                self.func, self.frame, self.alias
            ),
            None => write!(
                f,
                "{}(*) OVER ({}) AS {}",
                self.func, self.frame, self.alias
            ),
        }
    }
}

impl WindowExpr {
    /// Result type of this window aggregate.
    pub fn data_type(&self, schema: &crate::schema::Schema) -> Result<DataType> {
        match self.func {
            WindowFuncKind::Count => Ok(DataType::Int),
            WindowFuncKind::Avg => Ok(DataType::Double),
            WindowFuncKind::Sum => {
                let arg = self
                    .arg
                    .as_ref()
                    .ok_or_else(|| Error::Plan("sum() requires an argument".into()))?;
                Ok(arg.data_type(schema)?)
            }
            WindowFuncKind::Max | WindowFuncKind::Min => {
                let arg = self
                    .arg
                    .as_ref()
                    .ok_or_else(|| Error::Plan(format!("{}() requires an argument", self.func)))?;
                Ok(arg.data_type(schema)?)
            }
        }
    }
}

/// Find partition boundaries: ranges of rows with equal partition-key values
/// (NULLs compare equal for partitioning, per SQL).
pub fn partition_ranges(cols: &[Column], n: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return vec![];
    }
    if cols.is_empty() {
        return vec![(0, n)];
    }
    let mut ranges = Vec::new();
    let mut start = 0;
    for i in 1..n {
        let boundary = cols.iter().any(|c| c.value(i) != c.value(i - 1));
        if boundary {
            ranges.push((start, i));
            start = i;
        }
    }
    ranges.push((start, n));
    ranges
}

/// Compute the inclusive frame `[lo, hi]` for row `i` inside partition
/// `[p_lo, p_hi)`. Returns `None` for an empty frame.
fn frame_rows(
    frame: &Frame,
    i: usize,
    p_lo: usize,
    p_hi: usize,
    order_key: Option<&Column>,
) -> Result<Option<(usize, usize)>> {
    match frame.units {
        FrameUnits::Rows => {
            let lo = match frame.start {
                FrameBound::UnboundedPreceding => p_lo as i64,
                FrameBound::Preceding(k) => i as i64 - k,
                FrameBound::CurrentRow => i as i64,
                FrameBound::Following(k) => i as i64 + k,
                FrameBound::UnboundedFollowing => {
                    return Err(Error::Plan(
                        "frame start cannot be UNBOUNDED FOLLOWING".into(),
                    ))
                }
            };
            let hi = match frame.end {
                FrameBound::UnboundedPreceding => {
                    return Err(Error::Plan(
                        "frame end cannot be UNBOUNDED PRECEDING".into(),
                    ))
                }
                FrameBound::Preceding(k) => i as i64 - k,
                FrameBound::CurrentRow => i as i64,
                FrameBound::Following(k) => i as i64 + k,
                FrameBound::UnboundedFollowing => p_hi as i64 - 1,
            };
            let lo = lo.max(p_lo as i64);
            let hi = hi.min(p_hi as i64 - 1);
            if lo > hi {
                Ok(None)
            } else {
                Ok(Some((lo as usize, hi as usize)))
            }
        }
        FrameUnits::Range => {
            let key = order_key.ok_or_else(|| {
                Error::Plan("RANGE frame requires exactly one numeric ORDER BY key".into())
            })?;
            // Sorted input puts NULL order keys first within the partition.
            // Binary searches must stay inside the non-NULL subrange:
            // `key_num` maps NULL to `None`, so a predicate over the whole
            // partition would not be monotone once NULLs are present.
            let nn_lo = p_lo + null_prefix_len(key, p_lo, p_hi);
            if key.is_null(i) {
                // NULL order key: NULLs are peers of each other and of no
                // non-NULL row, so the frame is the NULL peer group —
                // nonempty, since row `i` itself is in it.
                return Ok(Some((p_lo, nn_lo - 1)));
            }
            let v = key_num(key, i).ok_or_else(|| {
                Error::Execution("RANGE frame requires a numeric ORDER BY key".into())
            })?;
            // partition_point over the sorted non-NULL keys.
            let first_ge = |threshold: i64| -> usize {
                let mut lo = nn_lo;
                let mut hi = p_hi;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if key_num(key, mid).is_some_and(|k| k < threshold) {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo
            };
            let last_le = |threshold: i64| -> Option<usize> {
                let p = first_ge(threshold + 1);
                if p == nn_lo {
                    None
                } else {
                    Some(p - 1)
                }
            };
            let lo = match frame.start {
                FrameBound::UnboundedPreceding => p_lo,
                FrameBound::Preceding(k) => first_ge(v - k),
                FrameBound::CurrentRow => first_ge(v),
                FrameBound::Following(k) => first_ge(v + k),
                FrameBound::UnboundedFollowing => {
                    return Err(Error::Plan(
                        "frame start cannot be UNBOUNDED FOLLOWING".into(),
                    ))
                }
            };
            let hi = match frame.end {
                FrameBound::UnboundedPreceding => {
                    return Err(Error::Plan(
                        "frame end cannot be UNBOUNDED PRECEDING".into(),
                    ))
                }
                FrameBound::Preceding(k) => last_le(v - k),
                FrameBound::CurrentRow => last_le(v),
                FrameBound::Following(k) => last_le(v + k),
                FrameBound::UnboundedFollowing => Some(p_hi - 1),
            };
            match hi {
                Some(hi) if lo <= hi && lo < p_hi => Ok(Some((lo, hi))),
                _ => Ok(None),
            }
        }
    }
}

#[inline]
fn key_num(c: &Column, i: usize) -> Option<i64> {
    if c.is_null(i) {
        None
    } else {
        match c.value(i) {
            Value::Int(v) => Some(v),
            Value::Double(v) => Some(v as i64),
            _ => None,
        }
    }
}

/// Number of leading NULL order keys in partition `[p_lo, p_hi)`. The input
/// is sorted with NULLs first, so the NULLs form a prefix and a binary
/// search finds its length.
fn null_prefix_len(key: &Column, p_lo: usize, p_hi: usize) -> usize {
    let mut lo = p_lo;
    let mut hi = p_hi;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if key.is_null(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo - p_lo
}

/// Prepared state for evaluating a set of window aggregates over one batch
/// **already sorted** by (partition keys, order keys).
///
/// All expression evaluation against the batch happens in [`prepare`]
/// (partition keys, order key, aggregate arguments), so per-partition
/// evaluation afterwards is a pure read-only computation — this is what lets
/// the physical window operator farm partitions out to worker threads.
///
/// [`prepare`]: WindowEval::prepare
pub struct WindowEval<'a> {
    exprs: &'a [WindowExpr],
    order_col: Option<Column>,
    /// Evaluated argument column per expression (`None` for `count(*)`).
    arg_cols: Vec<Option<Column>>,
    out_types: Vec<DataType>,
    /// Partition key columns (kept for shard assignment by the caller).
    part_cols: Vec<Column>,
    ranges: Vec<(usize, usize)>,
}

impl<'a> WindowEval<'a> {
    pub fn prepare(
        batch: &Batch,
        partition_by: &[Expr],
        order_by_key: Option<&Expr>,
        exprs: &'a [WindowExpr],
    ) -> Result<Self> {
        let n = batch.num_rows();
        let part_cols: Vec<Column> = partition_by
            .iter()
            .map(|e| e.evaluate(batch))
            .collect::<Result<_>>()?;
        let order_col = order_by_key.map(|e| e.evaluate(batch)).transpose()?;
        let arg_cols = exprs
            .iter()
            .map(|we| we.arg.as_ref().map(|a| a.evaluate(batch)).transpose())
            .collect::<Result<_>>()?;
        let out_types = exprs
            .iter()
            .map(|we| we.data_type(batch.schema()))
            .collect::<Result<_>>()?;
        let ranges = partition_ranges(&part_cols, n);
        Ok(WindowEval {
            exprs,
            order_col,
            arg_cols,
            out_types,
            part_cols,
            ranges,
        })
    }

    /// The partition ranges, in input (sorted) order.
    pub fn partitions(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Result type per window expression.
    pub fn output_types(&self) -> &[DataType] {
        &self.out_types
    }

    /// The evaluated partition-key columns.
    pub fn partition_cols(&self) -> &[Column] {
        &self.part_cols
    }

    /// Evaluate all window expressions over one partition `[p_lo, p_hi)`
    /// with the incremental sliding kernels. Returns one value vector per
    /// expression (row-aligned with the partition) plus the number of
    /// accumulator operations performed (the work counter: one per frame
    /// position entering or leaving an aggregate state — amortized O(1) per
    /// row, independent of frame width — plus per-frame recomputation work
    /// on the floating-point fallback path).
    ///
    /// Results are byte-identical to [`eval_partition_naive`]; the counter
    /// is a pure function of the data, identical at any parallelism.
    ///
    /// [`eval_partition_naive`]: WindowEval::eval_partition_naive
    pub fn eval_partition(&self, (p_lo, p_hi): (usize, usize)) -> Result<(Vec<Vec<Value>>, u64)> {
        let mut ops: u64 = 0;
        let mut outputs = Vec::with_capacity(self.exprs.len());
        for (we, arg_col) in self.exprs.iter().zip(&self.arg_cols) {
            outputs.push(self.eval_expr_incremental(we, arg_col.as_ref(), p_lo, p_hi, &mut ops)?);
        }
        Ok((outputs, ops))
    }

    /// Reference implementation: recompute every row's frame from scratch
    /// (O(n·w) per partition). Kept as the oracle for the kernel
    /// equivalence property test and the naive side of the ablation
    /// microbench. The work counter here is frame rows visited.
    pub fn eval_partition_naive(
        &self,
        (p_lo, p_hi): (usize, usize),
    ) -> Result<(Vec<Vec<Value>>, u64)> {
        let mut work: u64 = 0;
        let mut outputs = Vec::with_capacity(self.exprs.len());
        for (we, arg_col) in self.exprs.iter().zip(&self.arg_cols) {
            let mut vals = Vec::with_capacity(p_hi - p_lo);
            for i in p_lo..p_hi {
                let frame = frame_rows(&we.frame, i, p_lo, p_hi, self.order_col.as_ref())?;
                let v = match frame {
                    None => empty_frame_value(we.func),
                    Some((lo, hi)) => {
                        work += (hi - lo + 1) as u64;
                        accumulate(we.func, arg_col.as_ref(), lo, hi)?
                    }
                };
                vals.push(v);
            }
            outputs.push(vals);
        }
        Ok((outputs, work))
    }

    /// Incremental evaluation of one expression over one partition, writing
    /// into a preallocated output vector.
    fn eval_expr_incremental(
        &self,
        we: &WindowExpr,
        arg: Option<&Column>,
        p_lo: usize,
        p_hi: usize,
        ops: &mut u64,
    ) -> Result<Vec<Value>> {
        let mut out = vec![Value::Null; p_hi - p_lo];
        match we.frame.units {
            FrameUnits::Rows => {
                let bounds = RowsBounds::validate(&we.frame)?;
                slide(
                    we,
                    arg,
                    p_lo,
                    p_hi,
                    p_lo,
                    &mut out,
                    ops,
                    |i| bounds.window(i, p_lo, p_hi).into(),
                    |_| false,
                )?;
            }
            FrameUnits::Range => {
                let key = self.order_col.as_ref().ok_or_else(|| {
                    Error::Plan("RANGE frame requires exactly one numeric ORDER BY key".into())
                })?;
                let nn = null_prefix_len(key, p_lo, p_hi);
                let nn_lo = p_lo + nn;
                if nn > 0 {
                    // NULL peer group: every NULL-key row shares the frame
                    // `[p_lo, nn_lo)` — compute its aggregate once.
                    let v = accumulate(we.func, arg, p_lo, nn_lo - 1)?;
                    *ops += nn as u64;
                    for slot in &mut out[..nn] {
                        *slot = v.clone();
                    }
                }
                if nn_lo < p_hi {
                    let mut range = RangeBounds::validate(&we.frame, key, p_lo, p_hi, nn_lo)?;
                    let unbounded_start = we.frame.start == FrameBound::UnboundedPreceding;
                    slide(
                        we,
                        arg,
                        nn_lo,
                        p_hi,
                        p_lo,
                        &mut out,
                        ops,
                        |i| range.window(i).into(),
                        // UNBOUNDED PRECEDING start with a bounded end whose
                        // threshold admits no non-NULL key: the frame is
                        // empty per `frame_rows`, even though the coverage
                        // window spans the NULL prefix.
                        |th| unbounded_start && nn > 0 && th == nn_lo,
                    )?;
                }
            }
        }
        Ok(out)
    }
}

/// The value of an aggregate over an empty frame.
fn empty_frame_value(func: WindowFuncKind) -> Value {
    match func {
        WindowFuncKind::Count => Value::Int(0),
        _ => Value::Null,
    }
}

/// Positional (ROWS) frame bounds, validated once per partition.
struct RowsBounds {
    start: FrameBound,
    end: FrameBound,
}

impl RowsBounds {
    fn validate(frame: &Frame) -> Result<Self> {
        if frame.start == FrameBound::UnboundedFollowing {
            return Err(Error::Plan(
                "frame start cannot be UNBOUNDED FOLLOWING".into(),
            ));
        }
        if frame.end == FrameBound::UnboundedPreceding {
            return Err(Error::Plan(
                "frame end cannot be UNBOUNDED PRECEDING".into(),
            ));
        }
        Ok(RowsBounds {
            start: frame.start,
            end: frame.end,
        })
    }

    /// Half-open target window `[lo, hi_ex)` for row `i`; both ends are
    /// nondecreasing in `i`, which is what lets the kernels slide.
    fn window(&self, i: usize, p_lo: usize, p_hi: usize) -> (usize, usize) {
        let clamp = |x: i64| x.clamp(p_lo as i64, p_hi as i64) as usize;
        let lo = clamp(match self.start {
            FrameBound::UnboundedPreceding => p_lo as i64,
            FrameBound::Preceding(k) => i as i64 - k,
            FrameBound::CurrentRow => i as i64,
            FrameBound::Following(k) => i as i64 + k,
            FrameBound::UnboundedFollowing => unreachable!("rejected by validate"),
        });
        let hi_ex = clamp(match self.end {
            FrameBound::UnboundedPreceding => unreachable!("rejected by validate"),
            FrameBound::Preceding(k) => i as i64 - k + 1,
            FrameBound::CurrentRow => i as i64 + 1,
            FrameBound::Following(k) => i as i64 + k + 1,
            FrameBound::UnboundedFollowing => p_hi as i64,
        });
        (lo, hi_ex.max(lo))
    }
}

/// RANGE frame bounds as two monotone pointers over the sorted non-NULL
/// keys: because the current row's key is nondecreasing, the `first key ≥
/// start-threshold` and `first key > end-threshold` positions only ever move
/// forward, so each is advanced incrementally instead of binary-searched —
/// the same two-pointer structure the accumulators rely on.
struct RangeBounds<'c> {
    start: FrameBound,
    end: FrameBound,
    key: &'c Column,
    p_lo: usize,
    p_hi: usize,
    lo_ptr: usize,
    hi_ptr: usize,
}

impl<'c> RangeBounds<'c> {
    fn validate(
        frame: &Frame,
        key: &'c Column,
        p_lo: usize,
        p_hi: usize,
        nn_lo: usize,
    ) -> Result<Self> {
        if frame.start == FrameBound::UnboundedFollowing {
            return Err(Error::Plan(
                "frame start cannot be UNBOUNDED FOLLOWING".into(),
            ));
        }
        if frame.end == FrameBound::UnboundedPreceding {
            return Err(Error::Plan(
                "frame end cannot be UNBOUNDED PRECEDING".into(),
            ));
        }
        Ok(RangeBounds {
            start: frame.start,
            end: frame.end,
            key,
            p_lo,
            p_hi,
            lo_ptr: nn_lo,
            hi_ptr: nn_lo,
        })
    }

    fn window(&mut self, i: usize) -> Result<(usize, usize)> {
        let v = key_num(self.key, i).ok_or_else(|| {
            Error::Execution("RANGE frame requires a numeric ORDER BY key".into())
        })?;
        let lo = match self.start {
            FrameBound::UnboundedPreceding => self.p_lo,
            FrameBound::Preceding(k) => self.advance_lo(v - k),
            FrameBound::CurrentRow => self.advance_lo(v),
            FrameBound::Following(k) => self.advance_lo(v + k),
            FrameBound::UnboundedFollowing => unreachable!("rejected by validate"),
        };
        let hi_ex = match self.end {
            FrameBound::UnboundedPreceding => unreachable!("rejected by validate"),
            FrameBound::Preceding(k) => self.advance_hi(v - k),
            FrameBound::CurrentRow => self.advance_hi(v),
            FrameBound::Following(k) => self.advance_hi(v + k),
            FrameBound::UnboundedFollowing => self.p_hi,
        };
        Ok((lo, hi_ex.max(lo)))
    }

    /// First position whose key is ≥ `threshold`.
    fn advance_lo(&mut self, threshold: i64) -> usize {
        while self.lo_ptr < self.p_hi
            && key_num(self.key, self.lo_ptr).is_some_and(|k| k < threshold)
        {
            self.lo_ptr += 1;
        }
        self.lo_ptr
    }

    /// One past the last position whose key is ≤ `threshold`.
    fn advance_hi(&mut self, threshold: i64) -> usize {
        while self.hi_ptr < self.p_hi
            && key_num(self.key, self.hi_ptr).is_some_and(|k| k <= threshold)
        {
            self.hi_ptr += 1;
        }
        self.hi_ptr
    }
}

/// Slide an accumulator over rows `[it_lo, p_hi)`, writing `out[i - out_lo]`
/// for each row `i`. `target` yields the row's half-open frame window (both
/// ends nondecreasing); `force_empty`, given the window's raw end pointer,
/// marks frames `frame_rows` would call empty even though the coverage
/// window is not (the RANGE NULL-prefix corner). `ops` counts every frame
/// position entering or leaving the accumulator state.
#[allow(clippy::too_many_arguments)]
fn slide<W, F>(
    we: &WindowExpr,
    arg: Option<&Column>,
    it_lo: usize,
    p_hi: usize,
    out_lo: usize,
    out: &mut [Value],
    ops: &mut u64,
    mut target: W,
    force_empty: F,
) -> Result<()>
where
    W: FnMut(usize) -> WindowResult,
    F: Fn(usize) -> bool,
{
    let mut kernel = Kernel::for_expr(we, arg)?;
    if let Kernel::Recompute { func } = &kernel {
        let func = *func;
        // Floating-point fallback: recompute each frame so the result stays
        // bit-identical to the naive path (FP addition is not associative,
        // so subtract-on-evict could drift). Ops degrade to frame size.
        for i in it_lo..p_hi {
            let (lo, hi_ex) = target(i).into_result()?;
            out[i - out_lo] = if hi_ex <= lo || force_empty(hi_ex) {
                empty_frame_value(func)
            } else {
                *ops += (hi_ex - lo) as u64;
                accumulate(func, arg, lo, hi_ex - 1)?
            };
        }
        return Ok(());
    }
    // Coverage window `[cov_lo, cov_hi)`: the positions currently in the
    // accumulator. Both target ends are monotone, so positions enter and
    // leave at most once each — ≤ 2 ops per row amortized. Coverage starts
    // at the first frame's own start, which may precede `it_lo` (a RANGE
    // frame with an UNBOUNDED PRECEDING start spans the NULL prefix even
    // though iteration begins at the first non-NULL row).
    let mut cov_lo = usize::MAX;
    let mut cov_hi = usize::MAX;
    for i in it_lo..p_hi {
        let (lo, hi_ex) = target(i).into_result()?;
        if cov_lo == usize::MAX {
            (cov_lo, cov_hi) = (lo, lo);
        }
        while cov_lo < cov_hi && cov_lo < lo {
            kernel.evict(cov_lo);
            cov_lo += 1;
            *ops += 1;
        }
        if cov_hi < lo {
            // The window jumped past the old coverage: nothing in
            // `[cov_hi, lo)` was ever entered.
            cov_lo = lo;
            cov_hi = lo;
        }
        while cov_hi < hi_ex {
            kernel.enter(cov_hi)?;
            cov_hi += 1;
            *ops += 1;
        }
        out[i - out_lo] = if cov_hi == cov_lo || force_empty(hi_ex) {
            empty_frame_value(we.func)
        } else {
            kernel.emit(cov_hi - cov_lo)?
        };
    }
    Ok(())
}

/// Either an infallible (ROWS) or fallible (RANGE) target window — lets
/// `slide` take both closures without boxing.
enum WindowResult {
    Ok((usize, usize)),
    Err(Error),
}

impl WindowResult {
    fn into_result(self) -> Result<(usize, usize)> {
        match self {
            WindowResult::Ok(w) => Ok(w),
            WindowResult::Err(e) => Err(e),
        }
    }
}

impl From<(usize, usize)> for WindowResult {
    fn from(w: (usize, usize)) -> Self {
        WindowResult::Ok(w)
    }
}

impl From<Result<(usize, usize)>> for WindowResult {
    fn from(r: Result<(usize, usize)>) -> Self {
        match r {
            Ok(w) => WindowResult::Ok(w),
            Err(e) => WindowResult::Err(e),
        }
    }
}

/// Per-expression sliding aggregate state.
enum Kernel<'c> {
    /// `count(*)`: the frame size is the answer.
    CountStar,
    /// `count(expr)`: running non-NULL count.
    CountArg { col: &'c Column, nonnull: i64 },
    /// Integer `sum`/`avg`: exact i128 running sum — wide enough that the
    /// running value never wraps, with the i64 range enforced only on the
    /// emitted frame total (matching the naive per-frame computation).
    IntSum {
        col: &'c Column,
        avg: bool,
        sum: i128,
        nonnull: i64,
    },
    /// `min`/`max`: monotonic deque of candidate positions. The back is
    /// popped only on *strict* domination, so among equal values the
    /// earliest survives at the front — the same tie the naive scan keeps.
    MinMax {
        col: &'c Column,
        is_max: bool,
        deque: VecDeque<usize>,
    },
    /// Floating-point `sum`/`avg`: no state, handled by recomputation.
    Recompute { func: WindowFuncKind },
}

impl<'c> Kernel<'c> {
    fn for_expr(we: &WindowExpr, arg: Option<&'c Column>) -> Result<Kernel<'c>> {
        Ok(match we.func {
            WindowFuncKind::Count => match arg {
                None => Kernel::CountStar,
                Some(col) => Kernel::CountArg { col, nonnull: 0 },
            },
            WindowFuncKind::Max | WindowFuncKind::Min => Kernel::MinMax {
                col: arg.ok_or_else(|| Error::Plan("max/min need an argument".into()))?,
                is_max: we.func == WindowFuncKind::Max,
                deque: VecDeque::new(),
            },
            WindowFuncKind::Sum | WindowFuncKind::Avg => {
                let col = arg.ok_or_else(|| Error::Plan("sum/avg need an argument".into()))?;
                if col.data_type() == DataType::Double {
                    Kernel::Recompute { func: we.func }
                } else {
                    Kernel::IntSum {
                        col,
                        avg: we.func == WindowFuncKind::Avg,
                        sum: 0,
                        nonnull: 0,
                    }
                }
            }
        })
    }

    fn enter(&mut self, i: usize) -> Result<()> {
        match self {
            Kernel::CountStar | Kernel::Recompute { .. } => {}
            Kernel::CountArg { col, nonnull } => {
                if !col.is_null(i) {
                    *nonnull += 1;
                }
            }
            Kernel::IntSum {
                col, sum, nonnull, ..
            } => {
                if !col.is_null(i) {
                    match col.value(i) {
                        Value::Int(v) => {
                            *sum += v as i128;
                            *nonnull += 1;
                        }
                        other => {
                            return Err(Error::Execution(format!(
                                "sum/avg over non-numeric value {other}"
                            )))
                        }
                    }
                }
            }
            Kernel::MinMax { col, is_max, deque } => {
                if !col.is_null(i) {
                    let v = col.value(i);
                    while let Some(&back) = deque.back() {
                        let o = col.value(back).total_cmp(&v);
                        let dominated = if *is_max { o.is_lt() } else { o.is_gt() };
                        if dominated {
                            deque.pop_back();
                        } else {
                            break;
                        }
                    }
                    deque.push_back(i);
                }
            }
        }
        Ok(())
    }

    fn evict(&mut self, i: usize) {
        match self {
            Kernel::CountStar | Kernel::Recompute { .. } => {}
            Kernel::CountArg { col, nonnull } => {
                if !col.is_null(i) {
                    *nonnull -= 1;
                }
            }
            Kernel::IntSum {
                col, sum, nonnull, ..
            } => {
                if !col.is_null(i) {
                    if let Value::Int(v) = col.value(i) {
                        *sum -= v as i128;
                        *nonnull -= 1;
                    }
                }
            }
            Kernel::MinMax { deque, .. } => {
                if deque.front() == Some(&i) {
                    deque.pop_front();
                }
            }
        }
    }

    fn emit(&self, frame_len: usize) -> Result<Value> {
        match self {
            Kernel::CountStar => Ok(Value::Int(frame_len as i64)),
            Kernel::CountArg { nonnull, .. } => Ok(Value::Int(*nonnull)),
            Kernel::IntSum {
                avg, sum, nonnull, ..
            } => {
                if *nonnull == 0 {
                    Ok(Value::Null)
                } else if *avg {
                    Ok(Value::Double(*sum as f64 / *nonnull as f64))
                } else {
                    i64::try_from(*sum)
                        .map(Value::Int)
                        .map_err(|_| Error::Execution("sum overflow in window aggregate".into()))
                }
            }
            Kernel::MinMax { col, deque, .. } => Ok(match deque.front() {
                None => Value::Null,
                Some(&i) => col.value(i),
            }),
            Kernel::Recompute { .. } => unreachable!("recompute kernels never reach emit"),
        }
    }
}

/// Evaluate window aggregates over a batch **already sorted** by
/// (partition keys, order keys). Returns one output column per `WindowExpr`,
/// plus the number of aggregate evaluations performed (a work counter).
///
/// This is the serial path; the physical window operator uses [`WindowEval`]
/// directly so it can distribute partitions across threads.
pub fn evaluate_window(
    batch: &Batch,
    partition_by: &[Expr],
    order_by_key: Option<&Expr>,
    exprs: &[WindowExpr],
) -> Result<(Vec<Column>, u64)> {
    let n = batch.num_rows();
    let ev = WindowEval::prepare(batch, partition_by, order_by_key, exprs)?;
    let mut work: u64 = 0;
    let mut builders: Vec<ColumnBuilder> = ev
        .output_types()
        .iter()
        .map(|&dt| ColumnBuilder::new(dt, n))
        .collect();
    for &range in ev.partitions() {
        let (vals, w) = ev.eval_partition(range)?;
        work += w;
        for (b, vs) in builders.iter_mut().zip(&vals) {
            for v in vs {
                b.push(v)?;
            }
        }
    }
    Ok((
        builders.into_iter().map(ColumnBuilder::finish).collect(),
        work,
    ))
}

fn accumulate(func: WindowFuncKind, arg: Option<&Column>, lo: usize, hi: usize) -> Result<Value> {
    match func {
        WindowFuncKind::Count => {
            let c = match arg {
                None => (hi - lo + 1) as i64,
                Some(col) => (lo..=hi).filter(|&i| !col.is_null(i)).count() as i64,
            };
            Ok(Value::Int(c))
        }
        WindowFuncKind::Max | WindowFuncKind::Min => {
            let col = arg.ok_or_else(|| Error::Plan("max/min need an argument".into()))?;
            let mut best: Option<Value> = None;
            for i in lo..=hi {
                if col.is_null(i) {
                    continue;
                }
                let v = col.value(i);
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = if func == WindowFuncKind::Max {
                            v.total_cmp(&b).is_gt()
                        } else {
                            v.total_cmp(&b).is_lt()
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        WindowFuncKind::Sum | WindowFuncKind::Avg => {
            let col = arg.ok_or_else(|| Error::Plan("sum/avg need an argument".into()))?;
            // i128 running sum: wide enough that it never wraps for any
            // frame of i64 values, so only the frame *total* is range
            // checked — the same rule the incremental kernel applies,
            // keeping both paths identical on overflowing inputs.
            let mut sum_i: i128 = 0;
            let mut sum_f: f64 = 0.0;
            let mut is_float = col.data_type() == DataType::Double;
            let mut count = 0i64;
            for i in lo..=hi {
                if col.is_null(i) {
                    continue;
                }
                match col.value(i) {
                    Value::Int(v) => {
                        sum_i += v as i128;
                    }
                    Value::Double(v) => {
                        is_float = true;
                        sum_f += v;
                    }
                    other => {
                        return Err(Error::Execution(format!(
                            "sum/avg over non-numeric value {other}"
                        )))
                    }
                }
                count += 1;
            }
            if count == 0 {
                return Ok(Value::Null);
            }
            let total = sum_f + sum_i as f64;
            match func {
                WindowFuncKind::Sum => {
                    if is_float {
                        Ok(Value::Double(total))
                    } else {
                        i64::try_from(sum_i).map(Value::Int).map_err(|_| {
                            Error::Execution("sum overflow in window aggregate".into())
                        })
                    }
                }
                WindowFuncKind::Avg => Ok(Value::Double(total / count as f64)),
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;
    use crate::schema::{Field, Schema};

    /// epc-sorted reads: (epc, rtime, loc)
    fn reads() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("loc", DataType::Str),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("e1"), Value::Int(10), Value::str("a")],
                vec![Value::str("e1"), Value::Int(20), Value::str("a")],
                vec![Value::str("e1"), Value::Int(50), Value::str("b")],
                vec![Value::str("e2"), Value::Int(5), Value::str("c")],
                vec![Value::str("e2"), Value::Int(90), Value::str("d")],
            ],
        )
        .unwrap()
    }

    fn prev_loc_expr() -> WindowExpr {
        WindowExpr {
            func: WindowFuncKind::Max,
            arg: Some(Expr::col("loc")),
            frame: Frame::rows(FrameBound::Preceding(1), FrameBound::Preceding(1)),
            alias: "loc_before".into(),
        }
    }

    #[test]
    fn rows_one_preceding_is_lag() {
        let (cols, _) = evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[prev_loc_expr()],
        )
        .unwrap();
        let c = &cols[0];
        // First row of each partition has an empty frame -> NULL.
        assert!(c.is_null(0));
        assert_eq!(c.value(1), Value::str("a"));
        assert_eq!(c.value(2), Value::str("a"));
        assert!(c.is_null(3));
        assert_eq!(c.value(4), Value::str("c"));
    }

    #[test]
    fn range_following_window() {
        // has_b_within_30s_after: max(case loc='b') over range (1 following, 30 following)
        let case = Expr::Case {
            branches: vec![(Expr::col("loc").eq(Expr::lit("b")), Expr::lit(1i64))],
            else_expr: Some(Box::new(Expr::lit(0i64))),
        };
        let we = WindowExpr {
            func: WindowFuncKind::Max,
            arg: Some(case),
            frame: Frame::range(FrameBound::Following(1), FrameBound::Following(30)),
            alias: "has_b_after".into(),
        };
        let (cols, _) = evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[we],
        )
        .unwrap();
        let c = &cols[0];
        // e1@10: window (11..=40] contains rtime=20 (loc=a) -> 0
        assert_eq!(c.value(0), Value::Int(0));
        // e1@20: window (21..=50] contains rtime=50 (loc=b) -> 1
        assert_eq!(c.value(1), Value::Int(1));
        // e1@50: nothing after -> empty frame -> NULL
        assert!(c.is_null(2));
        // e2@5: window contains nothing within 30 -> empty -> NULL
        assert!(c.is_null(3));
    }

    #[test]
    fn count_star_over_partition() {
        let we = WindowExpr {
            func: WindowFuncKind::Count,
            arg: None,
            frame: Frame::rows(
                FrameBound::UnboundedPreceding,
                FrameBound::UnboundedFollowing,
            ),
            alias: "n".into(),
        };
        let (cols, _) = evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[we],
        )
        .unwrap();
        let c = &cols[0];
        assert_eq!(c.value(0), Value::Int(3));
        assert_eq!(c.value(4), Value::Int(2));
    }

    #[test]
    fn empty_count_frame_is_zero() {
        let we = WindowExpr {
            func: WindowFuncKind::Count,
            arg: None,
            frame: Frame::rows(FrameBound::Preceding(1), FrameBound::Preceding(1)),
            alias: "n".into(),
        };
        let (cols, _) = evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[we],
        )
        .unwrap();
        assert_eq!(cols[0].value(0), Value::Int(0));
        assert_eq!(cols[0].value(1), Value::Int(1));
    }

    #[test]
    fn sum_and_avg() {
        let sum = WindowExpr {
            func: WindowFuncKind::Sum,
            arg: Some(Expr::col("rtime")),
            frame: Frame::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow),
            alias: "s".into(),
        };
        let avg = WindowExpr {
            func: WindowFuncKind::Avg,
            arg: Some(Expr::col("rtime")),
            frame: Frame::rows(
                FrameBound::UnboundedPreceding,
                FrameBound::UnboundedFollowing,
            ),
            alias: "a".into(),
        };
        let (cols, _) = evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[sum, avg],
        )
        .unwrap();
        assert_eq!(cols[0].value(2), Value::Int(80));
        assert_eq!(cols[1].value(3), Value::Double(47.5));
    }

    #[test]
    fn no_partition_is_single_sequence() {
        let we = prev_loc_expr();
        let (cols, _) = evaluate_window(&reads(), &[], Some(&Expr::col("rtime")), &[we]).unwrap();
        // With no partitioning, row 3 sees row 2's loc.
        assert_eq!(cols[0].value(3), Value::str("b"));
    }

    #[test]
    fn work_counter_counts_accumulator_ops() {
        let we = WindowExpr {
            func: WindowFuncKind::Count,
            arg: None,
            frame: Frame::rows(
                FrameBound::UnboundedPreceding,
                FrameBound::UnboundedFollowing,
            ),
            alias: "n".into(),
        };
        let (_, work) = evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[we],
        )
        .unwrap();
        // Whole-partition frame: every row enters the accumulator once and
        // never leaves — e1: 3 ops, e2: 2 — independent of how many rows
        // each frame spans (the naive path would visit 3x3 + 2x2 = 13).
        assert_eq!(work, 5);
    }

    #[test]
    fn invalid_frames_rejected() {
        let we = WindowExpr {
            func: WindowFuncKind::Max,
            arg: Some(Expr::col("loc")),
            frame: Frame::rows(FrameBound::UnboundedFollowing, FrameBound::CurrentRow),
            alias: "x".into(),
        };
        assert!(evaluate_window(
            &reads(),
            &[Expr::col("epc")],
            Some(&Expr::col("rtime")),
            &[we]
        )
        .is_err());
    }
}
