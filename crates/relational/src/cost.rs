//! Plan cost estimation.
//!
//! The rewrite engine generates several candidate rewrites (expanded with
//! 0..m joins pushed below cleansing; join-back with 0..n semi-joins) and
//! "compiles" each, picking the cheapest estimate — exactly the paper's
//! §5.2/§5.3 protocol. This module provides the estimator: System-R-style
//! selectivities from table statistics plus simple per-operator CPU costs.

use crate::expr::{split_conjuncts, BinaryOp, Expr};
use crate::plan::LogicalPlan;
use crate::stats::ColumnStats;
use crate::table::Catalog;

/// Cost constants (arbitrary CPU units; only relative magnitudes matter).
const COST_SCAN_ROW: f64 = 1.0;
const COST_INDEX_FETCH_ROW: f64 = 2.0;
const COST_FILTER_ROW: f64 = 0.2;
const COST_SORT_ROW_FACTOR: f64 = 2.0;
const COST_WINDOW_ROW_PER_EXPR: f64 = 1.5;
const COST_JOIN_BUILD_ROW: f64 = 1.5;
const COST_JOIN_PROBE_ROW: f64 = 1.0;
const COST_AGG_ROW: f64 = 1.2;
const COST_PROJECT_ROW: f64 = 0.3;

/// Estimated cardinality and cumulative cost of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    pub rows: f64,
    pub cost: f64,
}

/// Estimate a plan's output cardinality and total cost.
pub fn estimate(plan: &LogicalPlan, catalog: &Catalog) -> Estimate {
    match plan {
        LogicalPlan::Scan {
            table,
            alias: _,
            filter,
        } => {
            let Ok(t) = catalog.get(table) else {
                return Estimate {
                    rows: 0.0,
                    cost: 0.0,
                };
            };
            let total = t.num_rows() as f64;
            match filter {
                None => Estimate {
                    rows: total,
                    cost: total * COST_SCAN_ROW,
                },
                Some(f) => {
                    let sel = selectivity(f, plan, catalog);
                    // If any indexed column is bounded by the filter, the
                    // executor fetches only the index-selected rows.
                    let index_sel = index_access_selectivity(&t, f);
                    let cost = match index_sel {
                        Some(isel) => {
                            let fetched = total * isel;
                            fetched * COST_INDEX_FETCH_ROW + fetched * COST_FILTER_ROW
                        }
                        None => total * COST_SCAN_ROW + total * COST_FILTER_ROW,
                    };
                    Estimate {
                        rows: (total * sel).max(1.0),
                        cost,
                    }
                }
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let e = estimate(input, catalog);
            let sel = selectivity(predicate, input, catalog);
            Estimate {
                rows: (e.rows * sel).max(1.0),
                cost: e.cost + e.rows * COST_FILTER_ROW,
            }
        }
        LogicalPlan::Project { input, exprs } => {
            let e = estimate(input, catalog);
            Estimate {
                rows: e.rows,
                cost: e.cost + e.rows * COST_PROJECT_ROW * exprs.len() as f64,
            }
        }
        LogicalPlan::Sort { input, .. } => {
            let e = estimate(input, catalog);
            Estimate {
                rows: e.rows,
                cost: e.cost + sort_cost(e.rows),
            }
        }
        LogicalPlan::Window {
            input,
            exprs,
            presorted,
            ..
        } => {
            let e = estimate(input, catalog);
            let mut cost = e.cost + e.rows * COST_WINDOW_ROW_PER_EXPR * exprs.len().max(1) as f64;
            if !presorted {
                cost += sort_cost(e.rows);
            }
            Estimate { rows: e.rows, cost }
        }
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            join_type,
            ..
        } => {
            let l = estimate(left, catalog);
            let r = estimate(right, catalog);
            let cost =
                l.cost + r.cost + r.rows * COST_JOIN_BUILD_ROW + l.rows * COST_JOIN_PROBE_ROW;
            let rows = match join_type {
                crate::join::JoinType::Inner => {
                    // n-to-1 reference joins: output ≈ left rows scaled by the
                    // fraction of the right table that survived its filters.
                    let r_base = base_table_rows(right, catalog);
                    if r_base > 0.0 {
                        (l.rows * (r.rows / r_base).min(1.0)).max(1.0)
                    } else {
                        l.rows.max(r.rows)
                    }
                }
                crate::join::JoinType::LeftSemi => {
                    // Fraction of left rows whose key appears on the right:
                    // right distinct keys over left key NDV.
                    let key_ndv = left_key_ndv(left, left_keys, catalog);
                    let frac = match key_ndv {
                        Some(ndv) if ndv > 0.0 => (r.rows / ndv).min(1.0),
                        _ => 0.5,
                    };
                    (l.rows * frac).max(1.0)
                }
            };
            Estimate { rows, cost }
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            let e = estimate(input, catalog);
            let mut groups = 1.0f64;
            for (g, _) in group_by {
                groups *= column_ndv(g, input, catalog).unwrap_or_else(|| e.rows.sqrt());
            }
            let rows = if group_by.is_empty() {
                1.0
            } else {
                groups.min(e.rows).max(1.0)
            };
            Estimate {
                rows,
                cost: e.cost + e.rows * COST_AGG_ROW,
            }
        }
        LogicalPlan::Distinct { input } => {
            let e = estimate(input, catalog);
            let rows = distinct_rows(input, catalog).unwrap_or(e.rows * 0.5);
            Estimate {
                rows: rows.min(e.rows).max(1.0),
                cost: e.cost + e.rows * COST_AGG_ROW,
            }
        }
        LogicalPlan::Union { inputs } => {
            let mut rows = 0.0;
            let mut cost = 0.0;
            for i in inputs {
                let e = estimate(i, catalog);
                rows += e.rows;
                cost += e.cost;
            }
            Estimate { rows, cost }
        }
        LogicalPlan::Limit { input, fetch } => {
            let e = estimate(input, catalog);
            Estimate {
                rows: e.rows.min(*fetch as f64),
                cost: e.cost,
            }
        }
        LogicalPlan::SubqueryAlias { input, .. } => estimate(input, catalog),
    }
}

fn sort_cost(rows: f64) -> f64 {
    let n = rows.max(2.0);
    n * n.log2() * COST_SORT_ROW_FACTOR
}

/// Unfiltered row count of the base table under a chain of row-preserving
/// nodes (used to turn a filtered dimension into a join selectivity).
pub fn base_table_rows(plan: &LogicalPlan, catalog: &Catalog) -> f64 {
    match plan {
        LogicalPlan::Scan { table, .. } => catalog
            .get(table)
            .map(|t| t.num_rows() as f64)
            .unwrap_or(0.0),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::SubqueryAlias { input, .. } => base_table_rows(input, catalog),
        _ => 0.0,
    }
}

/// Resolve a column expression to its base-table statistics, walking through
/// row-preserving operators.
fn resolve_column_stats(expr: &Expr, plan: &LogicalPlan, catalog: &Catalog) -> Option<ColumnStats> {
    let Expr::Column(c) = expr else { return None };
    match plan {
        LogicalPlan::Scan { table, alias, .. } => {
            let t = catalog.get(table).ok()?;
            // Honour the alias: `c.rtime` resolves only if alias matches.
            if let (Some(q), Some(a)) = (&c.qualifier, alias) {
                if !q.eq_ignore_ascii_case(a) {
                    return None;
                }
            } else if let (Some(q), None) = (&c.qualifier, alias) {
                if !q.eq_ignore_ascii_case(table) {
                    return None;
                }
            }
            let i = t.schema().index_of(None, &c.name).ok()?;
            t.stats().column(i).cloned()
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Window { input, .. }
        | LogicalPlan::Limit { input, .. } => resolve_column_stats(expr, input, catalog),
        LogicalPlan::Project { input, exprs } => {
            // Follow pass-through or renamed columns.
            let (src, _) = exprs
                .iter()
                .find(|(_, a)| a.eq_ignore_ascii_case(&c.name) && c.qualifier.is_none())?;
            resolve_column_stats(src, input, catalog)
        }
        LogicalPlan::Join { left, right, .. } => resolve_column_stats(expr, left, catalog)
            .or_else(|| resolve_column_stats(expr, right, catalog)),
        LogicalPlan::SubqueryAlias { input, alias } => {
            // `alias.x` resolves to the inner plan's `x`.
            match &c.qualifier {
                Some(q) if q.eq_ignore_ascii_case(alias) => resolve_column_stats(
                    &Expr::Column(crate::expr::ColumnRef {
                        qualifier: None,
                        name: c.name.clone(),
                    }),
                    input,
                    catalog,
                ),
                None => resolve_column_stats(expr, input, catalog),
                _ => None,
            }
        }
        _ => None,
    }
}

fn column_ndv(expr: &Expr, plan: &LogicalPlan, catalog: &Catalog) -> Option<f64> {
    resolve_column_stats(expr, plan, catalog).map(|s| s.ndv as f64)
}

fn left_key_ndv(left: &LogicalPlan, keys: &[Expr], catalog: &Catalog) -> Option<f64> {
    if keys.len() != 1 {
        return None;
    }
    column_ndv(&keys[0], left, catalog)
}

/// Output rows of DISTINCT over its input (NDV of a single projected column
/// when resolvable).
fn distinct_rows(input: &LogicalPlan, catalog: &Catalog) -> Option<f64> {
    if let LogicalPlan::Project {
        input: inner,
        exprs,
    } = input
    {
        if exprs.len() == 1 {
            return column_ndv(&exprs[0].0, inner, catalog);
        }
    }
    None
}

/// Selectivity of a predicate against the given input plan.
pub fn selectivity(expr: &Expr, input: &LogicalPlan, catalog: &Catalog) -> f64 {
    let conjuncts = split_conjuncts(expr);
    let mut sel = 1.0;
    for c in conjuncts {
        sel *= conjunct_selectivity(&c, input, catalog);
    }
    sel.clamp(0.0, 1.0)
}

const DEFAULT_SEL: f64 = 0.25;

fn conjunct_selectivity(expr: &Expr, input: &LogicalPlan, catalog: &Catalog) -> f64 {
    match expr {
        Expr::Binary { left, op, right } => match op {
            BinaryOp::Or => {
                let a = conjunct_selectivity(left, input, catalog);
                let b = conjunct_selectivity(right, input, catalog);
                (a + b - a * b).clamp(0.0, 1.0)
            }
            BinaryOp::And => {
                conjunct_selectivity(left, input, catalog)
                    * conjunct_selectivity(right, input, catalog)
            }
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => {
                let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column(_), Expr::Literal(v)) => (left.as_ref(), v, *op),
                    (Expr::Literal(v), Expr::Column(_)) => (right.as_ref(), v, op.swap()),
                    _ => return DEFAULT_SEL,
                };
                let Some(stats) = resolve_column_stats(col, input, catalog) else {
                    return DEFAULT_SEL;
                };
                match op {
                    BinaryOp::Eq => stats.eq_selectivity(),
                    BinaryOp::NotEq => (1.0 - stats.eq_selectivity()).max(0.0),
                    BinaryOp::Lt | BinaryOp::LtEq => stats.range_selectivity(None, Some(lit)),
                    BinaryOp::Gt | BinaryOp::GtEq => stats.range_selectivity(Some(lit), None),
                    _ => DEFAULT_SEL,
                }
            }
            _ => DEFAULT_SEL,
        },
        Expr::Not(inner) => (1.0 - conjunct_selectivity(inner, input, catalog)).clamp(0.0, 1.0),
        Expr::InList {
            expr,
            list,
            negated,
        } => in_selectivity(expr, list.len(), *negated, input, catalog),
        Expr::InSet {
            expr, set, negated, ..
        } => in_selectivity(expr, set.len(), *negated, input, catalog),
        Expr::IsNull { expr, negated } => {
            let Some(stats) = resolve_column_stats(expr, input, catalog) else {
                return if *negated { 0.9 } else { 0.1 };
            };
            let total = (stats.ndv + stats.null_count).max(1);
            let frac = stats.null_count as f64 / total as f64;
            if *negated {
                1.0 - frac
            } else {
                frac
            }
        }
        Expr::Literal(v) => match v.as_bool() {
            Some(true) => 1.0,
            Some(false) => 0.0,
            None => DEFAULT_SEL,
        },
        _ => DEFAULT_SEL,
    }
}

fn in_selectivity(
    expr: &Expr,
    list_len: usize,
    negated: bool,
    input: &LogicalPlan,
    catalog: &Catalog,
) -> f64 {
    let sel = match resolve_column_stats(expr, input, catalog) {
        Some(stats) if stats.ndv > 0 => (list_len as f64 / stats.ndv as f64).min(1.0),
        _ => (DEFAULT_SEL * list_len as f64).min(1.0),
    };
    if negated {
        1.0 - sel
    } else {
        sel
    }
}

/// If the filter bounds an indexed column, the fraction of the table an index
/// access would fetch (the most selective single-column access).
fn index_access_selectivity(table: &crate::table::Table, filter: &Expr) -> Option<f64> {
    let schema = table.schema();
    let mut best: Option<f64> = None;
    // Range bounds implied by the whole predicate (including across ORs),
    // mirroring the executor's index-access analysis.
    for (i, interval) in crate::constraint::implied_bounds_resolved(filter, schema) {
        let Some(stats) = table.stats().column(i) else {
            continue;
        };
        let lo = interval.lower.as_ref().map(|b| b.value.clone());
        let hi = interval.upper.as_ref().map(|b| b.value.clone());
        if lo.is_none() && hi.is_none() {
            continue;
        }
        let sel = stats.range_selectivity(lo.as_ref(), hi.as_ref());
        let col_name = &schema.field(i).name;
        if table.index(col_name).is_some() && best.is_none_or(|b| sel < b) {
            best = Some(sel);
        }
    }
    for conj in split_conjuncts(filter) {
        let (col_name, sel) = match &conj {
            Expr::InList {
                expr,
                list,
                negated: false,
            } => {
                let Expr::Column(c) = expr.as_ref() else {
                    continue;
                };
                let Ok(i) = schema.index_of(None, &c.name) else {
                    continue;
                };
                let Some(stats) = table.stats().column(i) else {
                    continue;
                };
                let sel = if stats.ndv > 0 {
                    (list.len() as f64 / stats.ndv as f64).min(1.0)
                } else {
                    1.0
                };
                (c.name.clone(), sel)
            }
            _ => continue,
        };
        if table.index(&col_name).is_some() && best.is_none_or(|b| sel < b) {
            best = Some(sel);
        }
    }
    best.filter(|&s| s < 0.95)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{schema_ref, Batch};
    use crate::schema::{Field, Schema};
    use crate::table::Table;
    use crate::value::{DataType, Value};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        let rows: Vec<Vec<Value>> = (0..1000)
            .map(|i| vec![Value::str(format!("e{}", i % 100)), Value::Int(i)])
            .collect();
        let mut t = Table::new("r", Batch::from_rows(schema, &rows).unwrap());
        t.create_index("rtime").unwrap();
        cat.register(t);
        cat
    }

    #[test]
    fn scan_selectivity_interpolates() {
        let cat = catalog();
        let plan = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(Expr::col("rtime").lt(Expr::lit(100i64))),
        };
        let e = estimate(&plan, &cat);
        assert!((e.rows - 100.0).abs() < 10.0, "rows = {}", e.rows);
    }

    #[test]
    fn indexed_scan_cheaper_than_full() {
        let cat = catalog();
        let indexed = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(Expr::col("rtime").lt(Expr::lit(100i64))),
        };
        let full = LogicalPlan::Scan {
            table: "r".into(),
            alias: None,
            filter: Some(Expr::col("epc").eq(Expr::lit("e1"))),
        };
        assert!(estimate(&indexed, &cat).cost < estimate(&full, &cat).cost);
    }

    #[test]
    fn sort_dominates_for_large_inputs() {
        let cat = catalog();
        let scan = LogicalPlan::scan("r");
        let sorted = LogicalPlan::scan("r").sort(vec![crate::sort::SortKey::asc(Expr::col("epc"))]);
        assert!(estimate(&sorted, &cat).cost > 2.0 * estimate(&scan, &cat).cost);
    }

    #[test]
    fn presorted_window_cheaper() {
        let cat = catalog();
        let mk = |presorted| LogicalPlan::Window {
            input: Box::new(LogicalPlan::scan("r")),
            partition_by: vec![Expr::col("epc")],
            order_by: vec![crate::sort::SortKey::asc(Expr::col("rtime"))],
            exprs: vec![],
            presorted,
        };
        assert!(estimate(&mk(true), &cat).cost < estimate(&mk(false), &cat).cost);
    }

    #[test]
    fn distinct_project_uses_ndv() {
        let cat = catalog();
        let plan = LogicalPlan::scan("r")
            .project(vec![(Expr::col("epc"), "epc".into())])
            .distinct();
        let e = estimate(&plan, &cat);
        assert!((e.rows - 100.0).abs() < 1.0, "rows = {}", e.rows);
    }

    #[test]
    fn aggregate_group_rows_capped_by_input() {
        let cat = catalog();
        let plan = LogicalPlan::scan("r")
            .filter(Expr::col("rtime").lt(Expr::lit(10i64)))
            .aggregate(vec![(Expr::col("epc"), "epc".into())], vec![]);
        let e = estimate(&plan, &cat);
        assert!(e.rows <= 11.0, "rows = {}", e.rows);
    }

    #[test]
    fn or_selectivity_combines() {
        let cat = catalog();
        let input = LogicalPlan::scan("r");
        let p = Expr::col("rtime")
            .lt(Expr::lit(100i64))
            .or(Expr::col("rtime").gt_eq(Expr::lit(900i64)));
        let s = selectivity(&p, &input, &cat);
        assert!(s > 0.15 && s < 0.3, "sel = {s}");
    }
}
