//! Scatter-gather plan decomposition for a ckey-sharded catalog.
//!
//! Deferred cleansing partitions every rule by the cluster key, so a
//! catalog hashed on `ckey` makes cleansing embarrassingly parallel: no EPC
//! sequence ever spans two shards. This module is the relational half of
//! that architecture — given the coordinator's already-rewritten plan, it
//! decides how to run it across N shard catalogs:
//!
//! * [`split_scatter`] decomposes a plan into the part every shard executes
//!   locally plus a pipeline of coordinator-side [`GatherStep`]s;
//! * [`gather`] executes that pipeline over the per-shard partial batches —
//!   sorted-stream k-way merge (reusing [`sort_batch_runs`] with the shard
//!   boundaries as run hints), additive re-aggregation for
//!   count/sum/avg/min/max partials, cross-shard DISTINCT, and the
//!   coordinator-side final LIMIT.
//!
//! The decomposition is *conservative*: a subplan fans out only when every
//! window partition, join group, aggregate group, and distinct row is
//! provably local to one shard (it mentions the shard key, or touches only
//! replicated dimension tables). Everything else degrades to
//! [`ScatterPlan::SingleShard`] (replicated-only plans — any one shard has
//! the full answer) or [`ScatterPlan::Unshardable`] (the coordinator
//! executes over a merged view).
//!
//! Row-order contract: fan-out concatenates shard outputs in shard order,
//! so queries without ORDER BY come back in a different (equally valid)
//! row order than an unsharded run; under ORDER BY the k-way merge
//! reproduces the exact global ordering (ties within one shard keep their
//! shard-local order, and ties on the cluster key never span shards).
//! Floating-point SUM/AVG partials are combined shard-major, which is
//! exact for integer-valued inputs and associative-up-to-rounding
//! otherwise.

use crate::agg::{distinct_with, AggExpr, AggFunc};
use crate::batch::{schema_ref, Batch};
use crate::column::{Column, ColumnBuilder};
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::hash::{encode_keys, HashStats, NullKeys, RawKeyTable};
use crate::plan::LogicalPlan;
use crate::schema::{Field, Schema};
use crate::sort::{sort_batch, sort_batch_runs, SortKey};
use crate::table::Catalog;
use crate::value::{DataType, Value};
use std::collections::{BTreeSet, HashMap};

/// How the catalog is sharded: the cluster-key column and the set of
/// tables partitioned on it (all other tables are replicated to every
/// shard).
#[derive(Debug, Clone)]
pub struct ShardingSpec {
    /// Unqualified shard-key column name (the rules' cluster key).
    pub key: String,
    /// Tables partitioned by `key`; everything else is replicated.
    pub partitioned: BTreeSet<String>,
}

/// One coordinator-side merge operation, applied in order over the
/// concatenated shard partials.
#[derive(Debug, Clone, PartialEq)]
pub enum GatherStep {
    /// Shard outputs are each sorted on `keys`: k-way merge them into the
    /// exact global order (stable, ties break toward the earlier shard).
    MergeSorted { keys: Vec<SortKey> },
    /// Combine partial-aggregate rows (see [`Reaggregate`]).
    Reaggregate(Reaggregate),
    /// Cross-shard DISTINCT over whole rows (first-occurrence order).
    Distinct,
    /// Coordinator-side projection (used when the shard-side projection
    /// was subsumed by re-aggregation or cross-shard distinct).
    Project { exprs: Vec<(Expr, String)> },
    /// Coordinator-side sort (used when a shard-side sort was subsumed by
    /// re-aggregation).
    Sort { keys: Vec<SortKey> },
    /// Keep the first `fetch` rows of the gathered stream.
    Limit { fetch: usize },
}

/// How one output aggregate column is rebuilt from shard partials.
#[derive(Debug, Clone, PartialEq)]
pub enum PartialMerge {
    /// Sum integer counts (COUNT/COUNT(*) partials).
    CountSum,
    /// Re-sum SUM partials (integer or double, by partial column type).
    Sum,
    /// Minimum of MIN partials (NULLs skipped).
    Min,
    /// Maximum of MAX partials (NULLs skipped).
    Max,
    /// AVG from a `(sum, count)` partial column pair; emits a Double.
    AvgPair,
}

impl PartialMerge {
    /// Number of partial columns this merge consumes.
    fn arity(&self) -> usize {
        match self {
            PartialMerge::AvgPair => 2,
            _ => 1,
        }
    }
}

/// Re-aggregation spec: the first `group_cols` columns of every partial
/// batch are the group keys; the remaining columns are consumed left to
/// right by `merges` (one output column each, [`PartialMerge::AvgPair`]
/// consumes two). Groups are emitted in first-seen order over the
/// concatenated partials, which is deterministic for a fixed shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct Reaggregate {
    /// Leading group-key column count.
    pub group_cols: usize,
    /// Per-output-aggregate merge functions, with the output alias.
    pub merges: Vec<(PartialMerge, String)>,
}

/// The decomposition of one query over a sharded catalog.
#[derive(Debug, Clone, PartialEq)]
pub enum ScatterPlan {
    /// The plan touches no partitioned table — every shard holds the full
    /// (replicated) inputs, so any single shard produces the complete
    /// answer.
    SingleShard,
    /// Fan `shard_plan` out to every shard, then run `steps` over the
    /// collected partials.
    Scatter {
        /// The plan each shard executes against its local catalog.
        shard_plan: LogicalPlan,
        /// Coordinator-side merge pipeline (empty = plain concatenation).
        steps: Vec<GatherStep>,
        /// `shard_plan` is byte-identical to the coordinator's rewritten
        /// plan, so shard executors may reuse its cached execution path.
        reuses_plan: bool,
    },
    /// No sound decomposition exists (non-key window partitions or join
    /// keys, interior LIMIT, COUNT DISTINCT over non-key groups, …): the
    /// coordinator must execute the full plan over a merged view of the
    /// shards.
    Unshardable,
}

/// Decompose `plan` for execution over a catalog sharded per `spec`.
pub fn split_scatter(plan: &LogicalPlan, spec: &ShardingSpec) -> ScatterPlan {
    if !touches_partitioned(plan, spec) {
        return ScatterPlan::SingleShard;
    }
    match split_top(plan, spec) {
        Some((shard_plan, steps)) => {
            let reuses_plan = shard_plan == *plan;
            ScatterPlan::Scatter {
                shard_plan,
                steps,
                reuses_plan,
            }
        }
        None => ScatterPlan::Unshardable,
    }
}

/// Does any scan under `plan` read a partitioned table?
fn touches_partitioned(plan: &LogicalPlan, spec: &ShardingSpec) -> bool {
    match plan {
        LogicalPlan::Scan { table, .. } => spec.partitioned.contains(table),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Window { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::SubqueryAlias { input, .. } => touches_partitioned(input, spec),
        LogicalPlan::Join { left, right, .. } => {
            touches_partitioned(left, spec) || touches_partitioned(right, spec)
        }
        LogicalPlan::Union { inputs } => inputs.iter().any(|p| touches_partitioned(p, spec)),
    }
}

/// Is `e` a bare reference to the shard-key column (any qualifier)?
fn is_key_column(e: &Expr, key: &str) -> bool {
    matches!(e, Expr::Column(c) if c.name == key)
}

/// Can `plan` run unchanged on every shard with plain concatenation as the
/// gather — i.e. is every group/partition/join-match provably shard-local?
fn shardable(plan: &LogicalPlan, spec: &ShardingSpec) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::SubqueryAlias { input, .. } => shardable(input, spec),
        LogicalPlan::Window {
            input,
            partition_by,
            ..
        } => partition_by.iter().any(|e| is_key_column(e, &spec.key)) && shardable(input, spec),
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            ..
        } => {
            if !shardable(left, spec) || !shardable(right, spec) {
                return false;
            }
            // A side without partitioned tables is fully replicated on
            // every shard, so any join against it is shard-local. When
            // both sides are partitioned the equi-keys must include the
            // shard key (co-partitioned join).
            if !(touches_partitioned(left, spec) && touches_partitioned(right, spec)) {
                return true;
            }
            left_keys
                .iter()
                .zip(right_keys)
                .any(|(l, r)| is_key_column(l, &spec.key) && is_key_column(r, &spec.key))
        }
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => group_by.iter().any(|(e, _)| is_key_column(e, &spec.key)) && shardable(input, spec),
        LogicalPlan::Distinct { input } => {
            // Identical rows agree on every column; if the shard key is
            // among them, duplicates can never span shards.
            distinct_keeps_key(input, &spec.key) && shardable(input, spec)
        }
        LogicalPlan::Union { inputs } => inputs
            .iter()
            .all(|p| touches_partitioned(p, spec) && shardable(p, spec)),
        // First-n-rows of a global order cannot be computed per shard.
        LogicalPlan::Limit { .. } => false,
    }
}

/// Best-effort check that `input`'s output rows still carry the shard-key
/// column (so whole-row DISTINCT groups are shard-local).
fn distinct_keeps_key(input: &LogicalPlan, key: &str) -> bool {
    match input {
        LogicalPlan::Project { exprs, .. } => exprs.iter().any(|(e, _)| is_key_column(e, key)),
        LogicalPlan::Aggregate { group_by, .. } => {
            group_by.iter().any(|(e, _)| is_key_column(e, key))
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::SubqueryAlias { input, .. } => distinct_keeps_key(input, key),
        // Scans/joins/windows keep all input columns (windows append).
        LogicalPlan::Scan { .. } | LogicalPlan::Join { .. } | LogicalPlan::Window { .. } => true,
        LogicalPlan::Union { inputs } => inputs.iter().all(|p| distinct_keeps_key(p, key)),
    }
}

/// All aggregate functions decomposable into shard partials?
fn decomposable(aggs: &[AggExpr]) -> bool {
    aggs.iter()
        .all(|a| !matches!(a.func, AggFunc::CountDistinct(_)))
}

/// Lower `aggs` to shard-side partial aggregates plus the coordinator
/// merges rebuilding each original output column.
fn lower_partials(aggs: &[AggExpr]) -> (Vec<AggExpr>, Vec<(PartialMerge, String)>) {
    let mut partials = Vec::new();
    let mut merges = Vec::new();
    for a in aggs {
        match &a.func {
            AggFunc::CountStar | AggFunc::Count(_) => {
                partials.push(a.clone());
                merges.push((PartialMerge::CountSum, a.alias.clone()));
            }
            AggFunc::Sum(_) => {
                partials.push(a.clone());
                merges.push((PartialMerge::Sum, a.alias.clone()));
            }
            AggFunc::Min(_) => {
                partials.push(a.clone());
                merges.push((PartialMerge::Min, a.alias.clone()));
            }
            AggFunc::Max(_) => {
                partials.push(a.clone());
                merges.push((PartialMerge::Max, a.alias.clone()));
            }
            AggFunc::Avg(e) => {
                partials.push(AggExpr {
                    func: AggFunc::Sum(e.clone()),
                    alias: format!("__shard_sum_{}", a.alias),
                });
                partials.push(AggExpr {
                    func: AggFunc::Count(e.clone()),
                    alias: format!("__shard_cnt_{}", a.alias),
                });
                merges.push((PartialMerge::AvgPair, a.alias.clone()));
            }
            AggFunc::CountDistinct(_) => unreachable!("guarded by decomposable()"),
        }
    }
    (partials, merges)
}

/// Top-down decomposition of the gather-relevant plan prefix.
fn split_top(plan: &LogicalPlan, spec: &ShardingSpec) -> Option<(LogicalPlan, Vec<GatherStep>)> {
    match plan {
        LogicalPlan::Limit { input, fetch } => {
            let (sp, mut steps) = split_top(input, spec)?;
            // Limit pushes into the shards only while every gathered row is
            // a final row (concat / merge-sorted gathers); partial rows
            // (re-aggregation, cross-shard distinct) must stay unlimited.
            // Merge-sorted streams, projections, and earlier limits are
            // row-preserving (1:1 or prefix-safe); partial rows from
            // re-aggregation or cross-shard distinct are not.
            let pushable = steps.iter().all(|s| {
                matches!(
                    s,
                    GatherStep::MergeSorted { .. }
                        | GatherStep::Limit { .. }
                        | GatherStep::Project { .. }
                )
            });
            let sp = if pushable {
                LogicalPlan::Limit {
                    input: Box::new(sp),
                    fetch: *fetch,
                }
            } else {
                sp
            };
            steps.push(GatherStep::Limit { fetch: *fetch });
            Some((sp, steps))
        }
        LogicalPlan::Sort { input, keys } => {
            let (sp, mut steps) = split_top(input, spec)?;
            if steps.is_empty() {
                // Shards deliver sorted streams; merge reproduces the exact
                // global order.
                Some((
                    LogicalPlan::Sort {
                        input: Box::new(sp),
                        keys: keys.clone(),
                    },
                    vec![GatherStep::MergeSorted { keys: keys.clone() }],
                ))
            } else {
                // The sort consumed partial rows; re-sort after merging.
                steps.push(GatherStep::Sort { keys: keys.clone() });
                Some((sp, steps))
            }
        }
        LogicalPlan::Project { input, exprs } => {
            let (sp, mut steps) = split_top(input, spec)?;
            if steps.is_empty() {
                // The whole subtree fans out; keep the projection on the
                // shard side so partials are already final rows.
                Some((
                    LogicalPlan::Project {
                        input: Box::new(sp),
                        exprs: exprs.clone(),
                    },
                    vec![],
                ))
            } else {
                // The projection consumes coordinator-merged rows.
                steps.push(GatherStep::Project {
                    exprs: exprs.clone(),
                });
                Some((sp, steps))
            }
        }
        _ if shardable(plan, spec) => Some((plan.clone(), vec![])),
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } if decomposable(aggs) && shardable(input, spec) => {
            let (partials, merges) = lower_partials(aggs);
            let shard_plan = LogicalPlan::Aggregate {
                input: input.clone(),
                group_by: group_by.clone(),
                aggs: partials,
            };
            let steps = vec![GatherStep::Reaggregate(Reaggregate {
                group_cols: group_by.len(),
                merges,
            })];
            Some((shard_plan, steps))
        }
        LogicalPlan::Distinct { input } if shardable(input, spec) => Some((
            LogicalPlan::Distinct {
                input: input.clone(),
            },
            vec![GatherStep::Distinct],
        )),
        _ => None,
    }
}

/// Deterministic work observed while gathering shard partials; folded into
/// the coordinator's combined [`ExecStats`](crate::exec::ExecStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatherOutcome {
    /// Partial rows received from the shards and merged.
    pub shard_rows_merged: u64,
    /// Key comparisons spent by merge/sort steps.
    pub sort_comparisons: u64,
    /// Sorted runs consumed by the k-way merge steps.
    pub merge_runs_used: u64,
    /// Hash-kernel work spent merging partials (reaggregation + DISTINCT
    /// group lookups at the coordinator).
    pub hash: HashStats,
}

/// Execute the gather pipeline over per-shard partial batches.
///
/// Convenience wrapper over [`gather_with`] (vectorized hash path).
pub fn gather(parts: &[Batch], steps: &[GatherStep]) -> Result<(Batch, GatherOutcome)> {
    gather_with(parts, steps, false)
}

/// [`gather`] with an explicit hash-path selector: `rowwise` routes the
/// reaggregation and DISTINCT steps through the retained
/// `HashMap<Vec<Value>, _>` oracle instead of the normalized-key encoder.
pub fn gather_with(
    parts: &[Batch],
    steps: &[GatherStep],
    rowwise: bool,
) -> Result<(Batch, GatherOutcome)> {
    let mut outcome = GatherOutcome {
        shard_rows_merged: parts.iter().map(|b| b.num_rows() as u64).sum(),
        ..GatherOutcome::default()
    };
    // Shard boundaries double as sorted-run hints for the k-way merge.
    let mut boundaries = Vec::with_capacity(parts.len());
    let mut off = 0usize;
    for p in parts {
        boundaries.push(off);
        off += p.num_rows();
    }
    let mut batch = Batch::concat(parts)?;
    let mut hint: Option<Vec<usize>> = Some(boundaries);
    for step in steps {
        batch = match step {
            GatherStep::MergeSorted { keys } => {
                let (merged, effort) = sort_batch_runs(&batch, keys, hint.as_deref())?;
                outcome.sort_comparisons += effort.comparisons;
                outcome.merge_runs_used += effort.runs;
                merged
            }
            GatherStep::Reaggregate(spec) => reaggregate(&batch, spec, rowwise, &mut outcome.hash)?,
            GatherStep::Distinct => distinct_with(&batch, rowwise, &mut outcome.hash)?,
            GatherStep::Project { exprs } => {
                let cols: Vec<_> = exprs
                    .iter()
                    .map(|(e, _)| e.evaluate(&batch))
                    .collect::<Result<_>>()?;
                let fields: Vec<Field> = exprs
                    .iter()
                    .zip(&cols)
                    .map(|((e, alias), c)| {
                        let dt = if batch.num_rows() == 0 {
                            e.data_type(batch.schema()).unwrap_or(DataType::Int)
                        } else {
                            c.data_type()
                        };
                        Field::new(alias.clone(), dt)
                    })
                    .collect();
                Batch::new(schema_ref(Schema::new(fields)), cols)?
            }
            GatherStep::Sort { keys } => sort_batch(&batch, keys)?,
            GatherStep::Limit { fetch } => {
                let keep = (*fetch).min(batch.num_rows());
                batch.slice(0, keep).flatten()
            }
        };
        // Any step after the first consumes coordinator-produced rows; the
        // shard-boundary run hint no longer applies.
        hint = None;
    }
    Ok((batch, outcome))
}

/// Merge partial-aggregate rows: group on the leading key columns and
/// combine each partial column per its [`PartialMerge`]. Emits groups in
/// first-seen order over the concatenated partials. Group lookup runs on
/// the shared normalized-key encoder (so coordinator merge cost is counted
/// under `hash_ops`), unless `rowwise` selects the `Vec<Value>` oracle.
fn reaggregate(
    batch: &Batch,
    spec: &Reaggregate,
    rowwise: bool,
    hash: &mut HashStats,
) -> Result<Batch> {
    let consumed: usize = spec.merges.iter().map(|(m, _)| m.arity()).sum();
    if batch.num_columns() != spec.group_cols + consumed {
        return Err(Error::Execution(format!(
            "reaggregate: partial batch has {} columns, expected {} group + {} partial",
            batch.num_columns(),
            spec.group_cols,
            consumed
        )));
    }

    // Accumulator per output aggregate.
    enum Acc {
        CountSum(i64),
        SumInt(i64, bool),
        SumF64(f64, bool),
        MinMax(Option<Value>),
        AvgPair(f64, i64),
    }
    let new_accs = |schema: &Schema| -> Vec<Acc> {
        let mut col = spec.group_cols;
        spec.merges
            .iter()
            .map(|(m, _)| {
                let acc = match m {
                    PartialMerge::CountSum => Acc::CountSum(0),
                    PartialMerge::Sum => match schema.fields()[col].data_type {
                        DataType::Double => Acc::SumF64(0.0, false),
                        _ => Acc::SumInt(0, false),
                    },
                    PartialMerge::Min | PartialMerge::Max => Acc::MinMax(None),
                    PartialMerge::AvgPair => Acc::AvgPair(0.0, 0),
                };
                col += m.arity();
                acc
            })
            .collect()
    };

    let n = batch.num_rows();
    let mut rep_rows: Vec<usize> = Vec::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();
    let mut slot_of_row: Vec<u32> = Vec::with_capacity(n);
    if rowwise {
        let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
        for i in 0..n {
            let key: Vec<Value> = (0..spec.group_cols)
                .map(|c| batch.column(c).value(i))
                .collect();
            let next = accs.len();
            let slot = *groups.entry(key).or_insert(next);
            if slot == next {
                accs.push(new_accs(batch.schema()));
                rep_rows.push(i);
            }
            slot_of_row.push(slot as u32);
        }
    } else {
        let gcols: Vec<Column> = batch.columns()[..spec.group_cols].to_vec();
        let keys = encode_keys(&gcols, batch.selection(), n, NullKeys::Match, hash)?;
        let mut table = RawKeyTable::with_capacity(n.min(1024));
        for i in 0..n {
            let (slot, fresh) = table.insert(keys.hash(i), keys.key(i), hash);
            if fresh {
                accs.push(new_accs(batch.schema()));
                rep_rows.push(i);
            }
            slot_of_row.push(slot as u32);
        }
    }
    for (i, &slot) in slot_of_row.iter().enumerate() {
        let row_accs = &mut accs[slot as usize];
        let mut col = spec.group_cols;
        for (acc, (m, _)) in row_accs.iter_mut().zip(&spec.merges) {
            let v = batch.column(col).value(i);
            match (acc, m) {
                (Acc::CountSum(c), PartialMerge::CountSum) => {
                    *c += v.as_int().ok_or_else(|| {
                        Error::Execution(format!("count partial must be integer, got {v}"))
                    })?;
                }
                (Acc::SumInt(s, any), PartialMerge::Sum) => {
                    if !v.is_null() {
                        let x = v.as_int().ok_or_else(|| {
                            Error::Execution(format!("sum partial must be integer, got {v}"))
                        })?;
                        *s = s
                            .checked_add(x)
                            .ok_or_else(|| Error::Execution("sum overflow".into()))?;
                        *any = true;
                    }
                }
                (Acc::SumF64(s, any), PartialMerge::Sum) => {
                    if !v.is_null() {
                        *s += v.as_double().ok_or_else(|| {
                            Error::Execution(format!("sum partial must be numeric, got {v}"))
                        })?;
                        *any = true;
                    }
                }
                (Acc::MinMax(best), PartialMerge::Min) => {
                    if !v.is_null() && best.as_ref().is_none_or(|b| v.total_cmp(b).is_lt()) {
                        *best = Some(v);
                    }
                }
                (Acc::MinMax(best), PartialMerge::Max) => {
                    if !v.is_null() && best.as_ref().is_none_or(|b| v.total_cmp(b).is_gt()) {
                        *best = Some(v);
                    }
                }
                (Acc::AvgPair(s, c), PartialMerge::AvgPair) => {
                    if !v.is_null() {
                        *s += v.as_double().ok_or_else(|| {
                            Error::Execution(format!("avg sum partial must be numeric, got {v}"))
                        })?;
                    }
                    let cnt = batch.column(col + 1).value(i);
                    *c += cnt.as_int().ok_or_else(|| {
                        Error::Execution(format!("avg count partial must be integer, got {cnt}"))
                    })?;
                }
                _ => return Err(Error::Internal("reaggregate accumulator mismatch".into())),
            }
            col += m.arity();
        }
    }

    // Output schema: group fields, then one column per original aggregate.
    let mut fields: Vec<Field> = batch.schema().fields()[..spec.group_cols].to_vec();
    let mut col = spec.group_cols;
    for (m, alias) in &spec.merges {
        let dt = match m {
            PartialMerge::CountSum => DataType::Int,
            PartialMerge::AvgPair => DataType::Double,
            _ => batch.schema().fields()[col].data_type,
        };
        fields.push(Field::new(alias.clone(), dt));
        col += m.arity();
    }
    let schema = schema_ref(Schema::new(fields));

    // Group-key columns gather straight from the input (first row of each
    // group); aggregate columns are built from the merged accumulators.
    let mut cols: Vec<Column> = (0..spec.group_cols)
        .map(|c| batch.column(c).take(&rep_rows))
        .collect();
    let mut builders: Vec<ColumnBuilder> = schema.fields()[spec.group_cols..]
        .iter()
        .map(|f| ColumnBuilder::new(f.data_type, accs.len()))
        .collect();
    for row_accs in accs {
        for (b, acc) in builders.iter_mut().zip(row_accs) {
            let v = match acc {
                Acc::CountSum(c) => Value::Int(c),
                Acc::SumInt(s, any) => {
                    if any {
                        Value::Int(s)
                    } else {
                        Value::Null
                    }
                }
                Acc::SumF64(s, any) => {
                    if any {
                        Value::Double(s)
                    } else {
                        Value::Null
                    }
                }
                Acc::MinMax(best) => best.unwrap_or(Value::Null),
                Acc::AvgPair(s, c) => {
                    if c == 0 {
                        Value::Null
                    } else {
                        Value::Double(s / c as f64)
                    }
                }
            };
            b.push(&v)?;
        }
    }
    cols.extend(builders.into_iter().map(ColumnBuilder::finish));
    Batch::new(schema, cols)
}

/// Build the sharding spec for `catalog`: every table carrying the `key`
/// column is partitioned, everything else is replicated.
pub fn sharding_spec_for(catalog: &Catalog, key: &str) -> ShardingSpec {
    let mut partitioned = BTreeSet::new();
    for name in catalog.table_names() {
        if let Ok(t) = catalog.get(&name) {
            if t.schema().index_of_name(key).is_ok() {
                partitioned.insert(name);
            }
        }
    }
    ShardingSpec {
        key: key.to_string(),
        partitioned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::plan_sql;
    use crate::table::Table;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("w", DataType::Double),
        ]));
        let rows: Vec<Vec<Value>> = (0..40)
            .map(|i| {
                vec![
                    Value::str(format!("e{}", i % 7)),
                    Value::Int((i * 13) % 29),
                    Value::Double((i % 5) as f64),
                ]
            })
            .collect();
        let catalog = Catalog::new();
        catalog.register(Table::new(
            "caser",
            Batch::from_rows(schema, &rows).unwrap(),
        ));
        let dim = schema_ref(Schema::new(vec![Field::new("k", DataType::Int)]));
        catalog.register(Table::new(
            "dim",
            Batch::from_rows(dim, &[vec![Value::Int(1)]]).unwrap(),
        ));
        catalog
    }

    fn spec() -> ShardingSpec {
        ShardingSpec {
            key: "epc".into(),
            partitioned: BTreeSet::from(["caser".to_string()]),
        }
    }

    /// Partition rows by cluster key into `n` parts (order-preserving
    /// within a part — the invariant the shard router maintains), run
    /// `plan` on each part, and gather — the unsharded run is the oracle
    /// (canonical row order unless the gather ends sorted).
    fn scatter_oracle(sql: &str, n: usize, exact_order: bool) {
        let cat = catalog();
        let plan = plan_sql(sql, &cat).unwrap();
        let split = split_scatter(&plan, &spec());
        let ScatterPlan::Scatter {
            shard_plan, steps, ..
        } = &split
        else {
            panic!("expected a scatter decomposition for {sql}, got {split:?}");
        };

        let base = cat.get("caser").unwrap();
        let key_col = base.schema().index_of_name("epc").unwrap();
        let shard_of = |i: usize| -> usize {
            let v = base.data().column(key_col).value(i).to_string();
            v.bytes().fold(0usize, |h, b| h.wrapping_add(b as usize)) % n
        };
        let parts: Vec<Batch> = (0..n)
            .map(|s| {
                let idx: Vec<usize> = (0..base.num_rows()).filter(|&i| shard_of(i) == s).collect();
                let shard_cat = cat.overlay();
                shard_cat.drop_table("caser").unwrap();
                shard_cat.register(Table::new("caser", base.data().take(&idx)));
                crate::exec::Executor::new(&shard_cat)
                    .execute(shard_plan)
                    .unwrap()
            })
            .collect();
        let (got, outcome) = gather(&parts, steps).unwrap();
        assert_eq!(
            outcome.shard_rows_merged,
            parts.iter().map(|b| b.num_rows() as u64).sum::<u64>()
        );

        let want = crate::exec::Executor::new(&cat).execute(&plan).unwrap();
        if exact_order {
            let rows = |b: &Batch| (0..b.num_rows()).map(|i| b.row(i)).collect::<Vec<_>>();
            assert_eq!(rows(&got), rows(&want), "{sql} with {n} shards");
        } else {
            assert_eq!(
                got.sorted_rows(),
                want.sorted_rows(),
                "{sql} with {n} shards"
            );
        }
    }

    #[test]
    fn plain_scan_concats() {
        scatter_oracle("select epc, rtime from caser where rtime < 20", 3, false);
    }

    #[test]
    fn order_by_merges_to_exact_global_order() {
        scatter_oracle("select epc, rtime from caser order by epc, rtime", 4, true);
    }

    #[test]
    fn key_grouped_aggregate_is_shard_complete() {
        // Groups on the cluster key never span shards: the whole aggregate
        // runs shard-side and the gather is plain concatenation.
        let cat = catalog();
        let sql = "select epc, count(*) as n, sum(rtime) as s, avg(rtime) as a, \
                   min(rtime) as lo, max(rtime) as hi from caser group by epc";
        let plan = plan_sql(sql, &cat).unwrap();
        match split_scatter(&plan, &spec()) {
            ScatterPlan::Scatter {
                steps, reuses_plan, ..
            } => {
                assert!(steps.is_empty(), "expected concat gather, got {steps:?}");
                assert!(reuses_plan);
            }
            other => panic!("expected scatter, got {other:?}"),
        }
        for n in [1, 2, 4] {
            scatter_oracle(sql, n, false);
        }
    }

    #[test]
    fn non_key_groups_lower_to_partials() {
        // Groups on a non-key column span shards: the shards compute
        // partial count/sum/avg/min/max and the coordinator re-aggregates.
        let cat = catalog();
        let sql = "select rtime, count(*) as n, sum(rtime) as s, avg(rtime) as a, \
                   min(epc) as lo, max(epc) as hi from caser group by rtime";
        let plan = plan_sql(sql, &cat).unwrap();
        match split_scatter(&plan, &spec()) {
            ScatterPlan::Scatter { steps, .. } => {
                assert!(
                    steps
                        .iter()
                        .any(|s| matches!(s, GatherStep::Reaggregate(_))),
                    "expected a re-aggregation gather, got {steps:?}"
                );
            }
            other => panic!("expected scatter, got {other:?}"),
        }
        for n in [1, 2, 4] {
            scatter_oracle(sql, n, false);
        }
    }

    #[test]
    fn global_aggregate_over_doubles() {
        scatter_oracle(
            "select count(*) as n, sum(w) as s, avg(w) as a from caser",
            2,
            false,
        );
    }

    #[test]
    fn aggregate_then_order_by_sorts_after_merge() {
        // Non-key groups + ORDER BY: the shard-side sort is subsumed by
        // re-aggregation, so the coordinator sorts after the merge.
        scatter_oracle(
            "select rtime, count(*) as n from caser group by rtime order by rtime, n",
            3,
            true,
        );
    }

    #[test]
    fn order_by_limit_pushes_down() {
        let cat = catalog();
        let plan = plan_sql(
            "select epc, rtime from caser order by epc, rtime limit 5",
            &cat,
        )
        .unwrap();
        let split = split_scatter(&plan, &spec());
        let ScatterPlan::Scatter {
            shard_plan, steps, ..
        } = &split
        else {
            panic!("expected scatter, got {split:?}");
        };
        assert!(
            matches!(shard_plan, LogicalPlan::Limit { .. }),
            "limit must push into the shard plan: {shard_plan:?}"
        );
        assert_eq!(
            steps.last(),
            Some(&GatherStep::Limit { fetch: 5 }),
            "coordinator applies the final limit"
        );
        scatter_oracle(
            "select epc, rtime from caser order by epc, rtime limit 5",
            4,
            true,
        );
    }

    #[test]
    fn replicated_only_plans_run_single_shard() {
        let cat = catalog();
        let plan = plan_sql("select k from dim", &cat).unwrap();
        assert_eq!(split_scatter(&plan, &spec()), ScatterPlan::SingleShard);
    }

    #[test]
    fn count_distinct_over_non_key_groups_is_unshardable() {
        let cat = catalog();
        let plan = plan_sql(
            "select rtime, count(distinct epc) as n from caser group by rtime",
            &cat,
        )
        .unwrap();
        assert_eq!(split_scatter(&plan, &spec()), ScatterPlan::Unshardable);
    }

    #[test]
    fn key_partitioned_window_is_shardable() {
        let plan = LogicalPlan::Window {
            input: Box::new(LogicalPlan::Scan {
                table: "caser".into(),
                alias: None,
                filter: None,
            }),
            partition_by: vec![Expr::col("epc")],
            order_by: vec![SortKey::asc(Expr::col("rtime"))],
            exprs: vec![],
            presorted: false,
        };
        assert!(shardable(&plan, &spec()));
        let non_key = LogicalPlan::Window {
            input: Box::new(LogicalPlan::Scan {
                table: "caser".into(),
                alias: None,
                filter: None,
            }),
            partition_by: vec![Expr::col("rtime")],
            order_by: vec![],
            exprs: vec![],
            presorted: false,
        };
        assert!(!shardable(&non_key, &spec()));
    }

    #[test]
    fn sharding_spec_partitions_tables_with_the_key() {
        let cat = catalog();
        let s = sharding_spec_for(&cat, "epc");
        assert!(s.partitioned.contains("caser"));
        assert!(!s.partitioned.contains("dim"));
    }
}
