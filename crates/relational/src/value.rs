//! Scalar values and data types.
//!
//! The engine supports the small set of types needed by RFID analytics:
//! 64-bit integers (also used for timestamps, stored as seconds since an
//! arbitrary epoch), double-precision floats, UTF-8 strings, and booleans.
//! Every type is nullable; `Value::Null` is the untyped SQL NULL.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    /// 64-bit signed integer. Timestamps are integers (seconds).
    Int,
    /// 64-bit IEEE-754 float.
    Double,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// Whether values of this type may participate in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Double)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "BIGINT",
            DataType::Double => "DOUBLE",
            DataType::Str => "VARCHAR",
        };
        f.write_str(s)
    }
}

/// A single scalar value. `Str` uses `Arc<str>` so that cloning a value (and
/// therefore rows flowing through operators) never copies string payloads.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison semantics: NULL compares as unknown (`None`).
    /// Int and Double compare numerically with each other.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Double(a), Value::Double(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Double(b)) => (*a as f64).partial_cmp(b),
            (Value::Double(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order used for sorting and index keys: NULLs sort first, then by
    /// the `sql_cmp` order. Cross-type comparisons (which a well-typed plan
    /// never produces) fall back to a fixed type rank so the order is total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Double(_) => 2, // numeric values share a rank
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Null, _) => Ordering::Less,
            (_, Value::Null) => Ordering::Greater,
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            _ => match self.sql_cmp(other) {
                Some(o) => o,
                None => rank(self).cmp(&rank(other)),
            },
        }
    }

    /// SQL equality: NULL = anything is unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }
}

impl PartialEq for Value {
    /// Structural equality (NULL == NULL), used for result comparison in
    /// tests and for hash-join keys — *not* SQL equality.
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(v) => v.hash(state),
            Value::Double(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Double(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn total_cmp_nulls_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn structural_eq_treats_null_as_equal() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("abc").to_string(), "'abc'");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn hash_consistent_with_eq_for_doubles() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::Double(1.5));
        assert!(s.contains(&Value::Double(1.5)));
        assert!(!s.contains(&Value::Double(1.6)));
    }
}
