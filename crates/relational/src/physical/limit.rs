//! Row-count truncation.

use super::metrics::FrameId;
use super::{ChunkStream, ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;
use crate::schema::SchemaRef;
use std::time::Instant;

#[derive(Debug)]
pub struct PhysicalLimit {
    pub input: Box<dyn PhysicalOperator>,
    pub fetch: usize,
}

impl PhysicalOperator for PhysicalLimit {
    fn name(&self) -> &'static str {
        "LimitExec"
    }

    fn label(&self) -> String {
        format!("LimitExec: fetch={}", self.fetch)
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = self.input.execute(ctx)?;
        let n = b.num_rows().min(self.fetch);
        let idx: Vec<usize> = (0..n).collect();
        Ok(b.take(&idx))
    }

    fn open_chunks<'a>(&'a self, ctx: &mut ExecContext<'_>) -> Result<Box<dyn ChunkStream + 'a>> {
        ctx.budget.check()?;
        let id = ctx.metrics.enter(self.name(), self.label());
        let start = Instant::now();
        let child = match self.input.open_chunks(ctx) {
            Ok(c) => c,
            Err(e) => {
                ctx.metrics.exit(0, start.elapsed().as_nanos() as u64);
                return Err(e);
            }
        };
        Ok(Box::new(LimitStream {
            child,
            remaining: self.fetch,
            id,
            rows_out: 0,
            nanos: start.elapsed().as_nanos() as u64,
        }))
    }
}

/// Streaming limit: stops pulling its child as soon as the fetch count is
/// satisfied — the one place the chunked pipeline legitimately does *less*
/// upstream work than the materialized path.
struct LimitStream<'a> {
    child: Box<dyn ChunkStream + 'a>,
    remaining: usize,
    id: FrameId,
    rows_out: u64,
    nanos: u64,
}

impl ChunkStream for LimitStream<'_> {
    fn schema(&self) -> SchemaRef {
        self.child.schema()
    }

    fn next_chunk(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        ctx.budget.check()?;
        if self.remaining == 0 {
            return Ok(None);
        }
        let start = Instant::now();
        let chunk = match self.child.next_chunk(ctx) {
            Ok(Some(c)) => c,
            Ok(None) => {
                self.remaining = 0;
                self.nanos += start.elapsed().as_nanos() as u64;
                return Ok(None);
            }
            Err(e) => {
                self.nanos += start.elapsed().as_nanos() as u64;
                return Err(e);
            }
        };
        let out = if chunk.num_rows() > self.remaining {
            chunk.slice(0, self.remaining)
        } else {
            chunk
        };
        self.remaining -= out.num_rows();
        ctx.metrics.record_chunk(self.id, 0);
        ctx.stats.batches_processed += 1;
        let rows = out.num_rows() as u64;
        self.rows_out += rows;
        ctx.rows_emitted += rows;
        self.nanos += start.elapsed().as_nanos() as u64;
        ctx.budget.check_rows(ctx.rows_emitted)?;
        Ok(Some(out))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.child.close(ctx);
        ctx.metrics.exit(self.rows_out, self.nanos);
    }
}
