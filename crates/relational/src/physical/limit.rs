//! Row-count truncation.

use super::{ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;

#[derive(Debug)]
pub struct PhysicalLimit {
    pub input: Box<dyn PhysicalOperator>,
    pub fetch: usize,
}

impl PhysicalOperator for PhysicalLimit {
    fn name(&self) -> &'static str {
        "LimitExec"
    }

    fn label(&self) -> String {
        format!("LimitExec: fetch={}", self.fetch)
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = self.input.execute(ctx)?;
        let n = b.num_rows().min(self.fetch);
        let idx: Vec<usize> = (0..n).collect();
        Ok(b.take(&idx))
    }
}
