//! Base-table scan with optional index narrowing.
//!
//! The *candidate* index accesses (which columns, what bounds) were derived
//! by `lower()` from the pushed-down filter; the only decision left at
//! runtime is data-dependent: which candidate fetches the fewest rows on
//! the actual table, and whether even the best one beats a full scan.

use super::metrics::FrameId;
use super::{ChunkStream, ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;
use crate::expr::{filter_chunk, Expr};
use crate::index::ScanBound;
use crate::schema::{Schema, SchemaRef};
use crate::segment::candidate_zone_predicate;
use crate::table::Table;
use crate::value::Value;
use dc_storage::{Segment, ZonePredicate};
use std::sync::Arc;
use std::time::Instant;

/// One index access the scan may use, fixed at lowering time.
#[derive(Debug, Clone)]
pub struct IndexCandidate {
    /// Table column whose ordered index would answer the access.
    pub column: String,
    pub lower: ScanBound,
    pub upper: ScanBound,
    /// Positive IN-list; takes precedence over the range bounds.
    pub in_values: Option<Vec<Value>>,
}

#[derive(Debug)]
pub struct PhysicalScan {
    pub table: String,
    pub alias: Option<String>,
    /// Full pushed-down predicate, re-applied as a residual after the fetch.
    pub filter: Option<Expr>,
    /// Candidate index accesses in deterministic (column-position) order.
    pub candidates: Vec<IndexCandidate>,
}

impl PhysicalOperator for PhysicalScan {
    fn name(&self) -> &'static str {
        "ScanExec"
    }

    fn label(&self) -> String {
        let mut s = format!("ScanExec: {}", self.table);
        if let Some(a) = &self.alias {
            s.push_str(&format!(" AS {a}"));
        }
        if !self.candidates.is_empty() {
            let cols: Vec<&str> = self.candidates.iter().map(|c| c.column.as_str()).collect();
            s.push_str(&format!(" index_candidates=[{}]", cols.join(", ")));
        }
        if let Some(f) = &self.filter {
            s.push_str(&format!(" filter={f}"));
        }
        s
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let base = self.fetch_base(ctx)?;
        let Some(filter) = &self.filter else {
            return Ok(base);
        };
        let keep = filter.filter_indices(&base)?;
        Ok(base.take(&keep))
    }

    fn open_chunks<'a>(&'a self, ctx: &mut ExecContext<'_>) -> Result<Box<dyn ChunkStream + 'a>> {
        ctx.budget.check()?;
        let id = ctx.metrics.enter(self.name(), self.label());
        let start = Instant::now();
        let base = match self.fetch_base(ctx) {
            Ok(b) => b,
            Err(e) => {
                ctx.metrics.exit(0, start.elapsed().as_nanos() as u64);
                return Err(e);
            }
        };
        Ok(Box::new(ScanStream {
            base,
            filter: self.filter.as_ref(),
            pos: 0,
            id,
            rows_out: 0,
            nanos: start.elapsed().as_nanos() as u64,
        }))
    }
}

impl PhysicalScan {
    /// Fetch the (index/segment-narrowed) base rows under the output
    /// schema and record the fetch counters. The residual filter — applied
    /// on top by `execute_op` (gather) or `ScanStream` (selection vector) —
    /// is deliberately *not* part of this, so both paths account the fetch
    /// identically.
    fn fetch_base(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let t = ctx.catalog.get(&self.table)?;
        let out_schema: Arc<Schema> = match &self.alias {
            Some(a) => Arc::new(t.schema().with_qualifier(a)),
            None => t.schema().clone(),
        };

        if self.filter.is_none() {
            ctx.stats.rows_scanned += t.num_rows() as u64;
            ctx.stats.full_scans += 1;
            ctx.metrics.set_rows_in(t.num_rows() as u64);
            ctx.metrics.add_comparisons(t.num_rows() as u64);
            return t.data().clone().with_schema(out_schema);
        }

        // Zone-map pruning: the candidates' bounds are necessary conditions
        // of `filter`, so segments whose zones exclude them cannot hold
        // matching rows. The decision (and its counters) is a pure function
        // of plan + data — recorded before the access-path choice so the
        // counters describe prunability regardless of which path runs.
        let survivors = prune_segments(&t, &self.candidates);
        let total_segs = t.segments().len();
        if !self.candidates.is_empty() && total_segs > 0 {
            let scanned = survivors.len() as u64;
            let pruned = total_segs as u64 - scanned;
            ctx.stats.segments_total += total_segs as u64;
            ctx.stats.segments_pruned += pruned;
            ctx.stats.segments_scanned += scanned;
            ctx.metrics.add_segments(total_segs as u64, pruned, scanned);
        }

        let base = match best_index_access(&t, &self.candidates) {
            Some(rows) => {
                ctx.stats.index_scans += 1;
                ctx.stats.rows_scanned += rows.len() as u64;
                t.data().take(&rows)
            }
            None if survivors.len() < total_segs => {
                // Fetch only the surviving segments' contiguous row ranges;
                // the residual filter keeps results identical to a full
                // scan.
                let rows: Vec<usize> = survivors.iter().flat_map(|s| s.start..s.end()).collect();
                ctx.stats.full_scans += 1;
                ctx.stats.rows_scanned += rows.len() as u64;
                t.data().take(&rows)
            }
            None => {
                ctx.stats.full_scans += 1;
                ctx.stats.rows_scanned += t.num_rows() as u64;
                t.data().clone()
            }
        };
        // A scan is a leaf: rows_in is what it fetched from the table
        // (post index narrowing, pre residual filter) — each fetched row is
        // one unit of work.
        ctx.metrics.set_rows_in(base.num_rows() as u64);
        ctx.metrics.add_comparisons(base.num_rows() as u64);
        base.with_schema(out_schema)
    }
}

/// Streaming scan: the (narrowed) base rows are fetched once at open; each
/// `next_chunk` serves a zero-copy slice, applying the residual filter as a
/// selection vector instead of gathering survivor columns.
struct ScanStream<'a> {
    base: Batch,
    filter: Option<&'a Expr>,
    pos: usize,
    id: FrameId,
    rows_out: u64,
    nanos: u64,
}

impl ChunkStream for ScanStream<'_> {
    fn schema(&self) -> SchemaRef {
        self.base.schema().clone()
    }

    fn next_chunk(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        ctx.budget.check()?;
        let start = Instant::now();
        let total = self.base.num_rows();
        if self.pos >= total {
            self.nanos += start.elapsed().as_nanos() as u64;
            return Ok(None);
        }
        let want = ctx.options.chunk_rows;
        let len = if want == 0 {
            total - self.pos
        } else {
            want.min(total - self.pos)
        };
        let mut chunk = self.base.slice(self.pos, len);
        self.pos += len;
        let mut avoided = 0u64;
        if let Some(pred) = self.filter {
            let outcome = match filter_chunk(pred, &chunk) {
                Ok(o) => o,
                Err(e) => {
                    self.nanos += start.elapsed().as_nanos() as u64;
                    return Err(e);
                }
            };
            chunk = chunk.with_selection(outcome.selected);
            avoided = chunk.num_columns() as u64;
        }
        ctx.metrics.record_chunk(self.id, avoided);
        ctx.stats.batches_processed += 1;
        ctx.stats.selection_avoided_copies += avoided;
        let rows = chunk.num_rows() as u64;
        self.rows_out += rows;
        ctx.rows_emitted += rows;
        self.nanos += start.elapsed().as_nanos() as u64;
        ctx.budget.check_rows(ctx.rows_emitted)?;
        Ok(Some(chunk))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        ctx.metrics.exit(self.rows_out, self.nanos);
    }
}

/// Segments whose zone maps admit every candidate constraint (AND
/// semantics), in row order. With no usable constraints every segment
/// survives.
fn prune_segments<'t>(table: &'t Table, candidates: &[IndexCandidate]) -> Vec<&'t Segment<Value>> {
    let preds: Vec<ZonePredicate<Value>> = candidates
        .iter()
        .filter_map(|c| {
            candidate_zone_predicate(
                table.schema(),
                &c.column,
                &c.lower,
                &c.upper,
                c.in_values.as_deref(),
            )
        })
        .collect();
    table
        .segments()
        .iter()
        .filter(|s| s.may_match_all(&preds))
        .collect()
}

/// Pick the most selective candidate on the actual table, returning matching
/// row ids, or `None` if no candidate's column is indexed (or the best
/// access would fetch nearly the whole table anyway).
fn best_index_access(table: &Table, candidates: &[IndexCandidate]) -> Option<Vec<usize>> {
    let total = table.num_rows().max(1) as f64;
    let mut best: Option<(f64, Vec<usize>)> = None;
    for cand in candidates {
        let Some(idx) = table.index(&cand.column) else {
            continue;
        };
        let rows = if let Some(vals) = &cand.in_values {
            let mut rows: Vec<usize> = vals
                .iter()
                .flat_map(|v| idx.lookup(v).iter().map(|&r| r as usize))
                .collect();
            rows.sort_unstable();
            rows.dedup();
            rows
        } else if cand.lower != ScanBound::Unbounded || cand.upper != ScanBound::Unbounded {
            idx.range_scan(&cand.lower, &cand.upper)
        } else {
            continue;
        };
        let sel = rows.len() as f64 / total;
        // Strict `<` keeps the first (lowest column position) on ties.
        if best.as_ref().is_none_or(|(s, _)| sel < *s) {
            best = Some((sel, rows));
        }
    }
    // An access that fetches (almost) everything is not worth the gather.
    match best {
        Some((sel, rows)) if sel < 0.95 => Some(rows),
        _ => None,
    }
}
