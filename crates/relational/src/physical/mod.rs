//! Physical query plans.
//!
//! [`crate::plan::LogicalPlan`] is the optimizer's currency: a declarative
//! tree that says *what* to compute. This module is the execution layer: a
//! tree of operator structs behind the [`PhysicalOperator`] trait that says
//! *how* — every optimizer decision is baked in explicitly by the
//! [`lower::lower`] pass rather than re-derived at runtime:
//!
//! * index-bound candidates for scans ([`scan::PhysicalScan`] carries the
//!   derived per-column range/IN bounds),
//! * redundant-sort elimination (a window whose input is already ordered
//!   lowers *without* a [`sort::PhysicalSort`] in front; one is inserted
//!   otherwise — the physical window operator itself never sorts),
//! * partition-parallel window evaluation ([`window::PhysicalWindow`]
//!   hash-splits the cleansing path's `PARTITION BY` (cluster-key)
//!   partitions across a scoped thread pool when
//!   [`ExecOptions::parallelism`] > 1, with byte-identical results and
//!   identical merged [`ExecStats`] at any parallelism).
//!
//! Operators execute against an [`ExecContext`], which carries the catalog,
//! the execution options, the deterministic work counters, and a separate
//! wall-clock channel for window evaluation (timings may differ across
//! parallelism; counters must not).

pub mod aggregate;
pub mod distinct;
pub mod filter;
pub mod hash_join;
pub mod limit;
pub mod lower;
pub mod metrics;
pub mod project;
pub mod scan;
pub mod semi_join;
pub mod sort;
pub mod subquery_alias;
pub mod union;
pub mod window;

pub use lower::lower;
pub use metrics::{DeterministicMetrics, FrameId, MetricsCollector, OperatorMetrics};

use crate::batch::Batch;
use crate::error::{AbortReason, Error, Result};
use crate::exec::ExecStats;
use crate::table::Catalog;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-query robustness controls, checked cooperatively at operator batch
/// boundaries (and per window partition on the Φ_C hot path).
///
/// A tripped budget aborts the query with a typed
/// [`Error::Aborted`] — the plan unwinds without producing any partial
/// rows, and shared state (catalog snapshots, the cleansed-sequence cache)
/// is left exactly as consistent as before the run: an immediate re-run
/// succeeds and matches an unbudgeted execution.
///
/// The default budget is unlimited; cloning shares the cancellation token.
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    /// Abort once this wall-clock instant passes.
    pub deadline: Option<Instant>,
    /// Abort once more than this many rows have flowed out of operators
    /// (cumulative over the whole plan — a work bound, not a LIMIT).
    pub row_limit: Option<u64>,
    /// Cooperative cancellation token; setting it to `true` aborts the
    /// query at its next checkpoint.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl QueryBudget {
    /// No limits at all (the default).
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Abort when `timeout` from now has elapsed.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Abort at the given absolute instant.
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Abort once the plan has moved more than `rows` rows.
    pub fn with_row_limit(mut self, rows: u64) -> Self {
        self.row_limit = Some(rows);
        self
    }

    /// Attach a shared cancellation token.
    pub fn with_cancel(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Is any limit configured?
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.row_limit.is_some() || self.cancel.is_some()
    }

    /// Checkpoint: cancellation first (an explicit caller decision), then
    /// the deadline. Called at every operator boundary and per window
    /// partition; must stay cheap when unlimited.
    pub fn check(&self) -> Result<()> {
        if let Some(token) = &self.cancel {
            if token.load(Ordering::Relaxed) {
                return Err(Error::Aborted(AbortReason::Cancelled));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(Error::Aborted(AbortReason::DeadlineExceeded));
            }
        }
        Ok(())
    }

    /// Row-budget checkpoint against the cumulative rows the plan has
    /// emitted so far.
    pub fn check_rows(&self, rows_emitted: u64) -> Result<()> {
        match self.row_limit {
            Some(limit) if rows_emitted > limit => {
                Err(Error::Aborted(AbortReason::RowLimitExceeded))
            }
            _ => Ok(()),
        }
    }
}

/// Execution knobs threaded from the system facade down to the operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Number of worker threads for partition-parallel operators (the Φ_C
    /// cleansing window path). `1` means serial. Parallelism never changes
    /// results or work counters — only wall-clock.
    pub parallelism: usize,
    /// Morsel size for the streaming [`ChunkStream`] pipeline: streaming
    /// operators pull batches of at most this many rows. `0` disables
    /// streaming entirely — every operator materializes through
    /// [`PhysicalOperator::execute`], which is the equivalence oracle the
    /// vectorized path is tested against. Chunk size never changes results
    /// or deterministic counters other than `batches_processed` /
    /// `selection_avoided_copies` (which count chunks, not rows).
    pub chunk_rows: usize,
    /// Run hash-keyed operators (join, aggregation, DISTINCT) on the
    /// retained row-wise `Vec<Value>` path instead of the vectorized hash
    /// kernels. The equivalence oracle for the property suite — results are
    /// identical; the hash-kernel counters simply stay 0.
    pub rowwise_hash: bool,
}

/// Default morsel size for the streaming pipeline (rows per chunk).
pub const DEFAULT_CHUNK_ROWS: usize = 1024;

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            parallelism: 1,
            chunk_rows: DEFAULT_CHUNK_ROWS,
            rowwise_hash: false,
        }
    }
}

impl ExecOptions {
    pub fn with_parallelism(parallelism: usize) -> Self {
        ExecOptions {
            parallelism: parallelism.max(1),
            ..ExecOptions::default()
        }
    }

    /// Override the streaming morsel size (`0` = fully materialized).
    pub fn with_chunk_rows(mut self, chunk_rows: usize) -> Self {
        self.chunk_rows = chunk_rows;
        self
    }

    /// Select the row-wise `Vec<Value>` hash path (the equivalence oracle).
    pub fn with_rowwise_hash(mut self, rowwise: bool) -> Self {
        self.rowwise_hash = rowwise;
        self
    }
}

/// Per-execution state handed to every operator.
pub struct ExecContext<'a> {
    pub catalog: &'a Catalog,
    pub options: ExecOptions,
    /// Deterministic work counters — identical at any parallelism.
    pub stats: ExecStats,
    /// Wall-clock nanoseconds spent evaluating window aggregates (the Φ_C
    /// hot path). Deliberately *not* part of [`ExecStats`]: timings change
    /// with parallelism, counters must not.
    pub window_eval_nanos: u64,
    /// Per-operator metrics tree under construction (see
    /// [`metrics::MetricsCollector`]); driven by the instrumented
    /// [`PhysicalOperator::execute`] wrapper around every operator.
    pub metrics: MetricsCollector,
    /// Per-query robustness budget, checked by the instrumented
    /// [`PhysicalOperator::execute`] wrapper at every operator boundary.
    pub budget: QueryBudget,
    /// Cumulative rows emitted by operators this execution — the quantity
    /// [`QueryBudget::row_limit`] bounds.
    pub rows_emitted: u64,
}

impl<'a> ExecContext<'a> {
    pub fn new(catalog: &'a Catalog, options: ExecOptions) -> Self {
        Self::with_budget(catalog, options, QueryBudget::unlimited())
    }

    /// A context whose execution is bounded by `budget`.
    pub fn with_budget(catalog: &'a Catalog, options: ExecOptions, budget: QueryBudget) -> Self {
        ExecContext {
            catalog,
            options,
            stats: ExecStats::default(),
            window_eval_nanos: 0,
            metrics: MetricsCollector::new(),
            budget,
            rows_emitted: 0,
        }
    }
}

/// A fully-lowered physical operator: executes to a materialized batch.
///
/// Contract:
/// * `execute_op` materializes this operator's full output, recursively
///   executing children (via their instrumented [`execute`]); all work is
///   accounted in `ctx.stats` using the same counter semantics at any
///   `ctx.options.parallelism`, and node-local work (comparisons,
///   partitions) additionally into `ctx.metrics` against the current frame.
/// * Operators perform no plan-level decisions at runtime — what to do
///   (index bounds, sort placement, projections) was fixed by `lower()`;
///   only data-dependent choices (e.g. *which* candidate index bound is
///   most selective on the actual table) remain.
/// * `children` exposes the operator tree for display/inspection and must
///   match the inputs `execute_op` consumes.
///
/// [`execute`]: PhysicalOperator::execute
pub trait PhysicalOperator: std::fmt::Debug {
    /// Operator name for plan rendering, e.g. `"WindowExec"`.
    fn name(&self) -> &'static str;

    /// One-line description including operator-specific detail.
    fn label(&self) -> String {
        self.name().to_string()
    }

    /// Child operators, in execution order.
    fn children(&self) -> Vec<&dyn PhysicalOperator>;

    /// Operator body: execute to a fully materialized batch. Implementations
    /// recurse through the children's `execute`, never `execute_op`.
    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch>;

    /// Instrumented entry point: checks the query budget (cancellation and
    /// deadline) before running, opens a [`metrics::MetricsCollector`]
    /// frame, runs [`execute_op`](PhysicalOperator::execute_op), closes
    /// the frame with the produced row count and the operator's inclusive
    /// wall-clock, and finally charges the produced rows against the row
    /// budget. A tripped budget unwinds with [`Error::Aborted`]; parent
    /// frames are closed on the way out, so metrics stay balanced and no
    /// partial batch escapes. Callers (the executor and parent operators)
    /// always go through this; operators implement `execute_op`.
    fn execute(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        ctx.budget.check()?;
        ctx.metrics.enter(self.name(), self.label());
        let start = Instant::now();
        let result = self.execute_op(ctx);
        let nanos = start.elapsed().as_nanos() as u64;
        let rows_out = result.as_ref().map(|b| b.num_rows() as u64).unwrap_or(0);
        ctx.metrics.exit(rows_out, nanos);
        ctx.rows_emitted += rows_out;
        if result.is_ok() {
            ctx.budget.check_rows(ctx.rows_emitted)?;
        }
        result
    }

    /// Streaming entry point: open a pull-based [`ChunkStream`] over this
    /// operator's output. The default falls back to the materialized
    /// [`execute`](PhysicalOperator::execute) (budget charging and metrics
    /// included) and serves the result back in `ctx.options.chunk_rows`
    /// slices; streaming operators (scan, filter, project, limit, alias)
    /// override it to pull morsels end-to-end without materializing.
    ///
    /// Contract for native implementations:
    /// * `open_chunks` checks the budget, enters this operator's metrics
    ///   frame (before opening children, so frames nest outer→inner), and
    ///   does any one-time setup.
    /// * `next_chunk` checks the budget, pulls/produces at most
    ///   `chunk_rows` logical rows, records per-chunk work against the
    ///   operator's [`metrics::FrameId`], and charges emitted rows against
    ///   the row budget.
    /// * `close` closes children first, then exits this operator's frame
    ///   with its accumulated rows and inclusive wall-clock — frames pop
    ///   LIFO, so the metrics tree is identical in shape to the
    ///   materialized path's.
    fn open_chunks<'a>(&'a self, ctx: &mut ExecContext<'_>) -> Result<Box<dyn ChunkStream + 'a>> {
        let batch = self.execute(ctx)?;
        Ok(Box::new(MaterializedStream::new(
            batch,
            ctx.options.chunk_rows,
        )))
    }
}

/// A pull-based stream of row chunks ("morsels") from a physical operator.
///
/// Chunks carry at most [`ExecOptions::chunk_rows`] logical rows and may
/// carry a selection vector (see [`Batch::selection`]) — consumers must go
/// through the logical-row APIs (`num_rows`, `row`, `take`, `flatten`) or
/// honor the selection explicitly. `next_chunk` returning `Ok(None)` means
/// the stream is exhausted; `close` must be called exactly once (including
/// after an error) so metrics frames stay balanced.
pub trait ChunkStream {
    /// Output schema, available before the first chunk.
    fn schema(&self) -> crate::schema::SchemaRef;

    /// Pull the next chunk, or `None` when exhausted.
    fn next_chunk(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>>;

    /// Release the stream: close children, then exit this operator's
    /// metrics frame. Idempotence is not required — call exactly once.
    fn close(&mut self, ctx: &mut ExecContext<'_>);
}

/// Fallback stream over an already-materialized batch: serves zero-copy
/// [`Batch::slice`] windows of `chunk_rows` rows. Does not re-charge the
/// row budget (the materializing `execute` already did) and owns no
/// metrics frame (ditto).
pub struct MaterializedStream {
    batch: Batch,
    chunk_rows: usize,
    pos: usize,
}

impl MaterializedStream {
    pub fn new(batch: Batch, chunk_rows: usize) -> Self {
        MaterializedStream {
            batch,
            chunk_rows,
            pos: 0,
        }
    }
}

impl ChunkStream for MaterializedStream {
    fn schema(&self) -> crate::schema::SchemaRef {
        self.batch.schema().clone()
    }

    fn next_chunk(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        ctx.budget.check()?;
        let total = self.batch.num_rows();
        if self.pos >= total {
            return Ok(None);
        }
        let len = if self.chunk_rows == 0 {
            total - self.pos
        } else {
            self.chunk_rows.min(total - self.pos)
        };
        let chunk = self.batch.slice(self.pos, len);
        self.pos += len;
        Ok(Some(chunk))
    }

    fn close(&mut self, _ctx: &mut ExecContext<'_>) {}
}

/// Drain an operator's full output, streaming when the pipeline is enabled.
///
/// This is how pipeline-breakers (sort, joins, aggregate, distinct, union,
/// window) and the executor root consume their inputs: with
/// `chunk_rows == 0` it is exactly the materialized `execute` (the
/// equivalence oracle); otherwise it pulls the child's chunk stream dry and
/// compacts the parts into one flat batch.
pub fn collect_input(op: &dyn PhysicalOperator, ctx: &mut ExecContext<'_>) -> Result<Batch> {
    if ctx.options.chunk_rows == 0 {
        return op.execute(ctx);
    }
    let mut stream = op.open_chunks(ctx)?;
    let schema = stream.schema();
    let mut parts: Vec<Batch> = Vec::new();
    loop {
        match stream.next_chunk(ctx) {
            Ok(Some(chunk)) => parts.push(chunk),
            Ok(None) => break,
            Err(e) => {
                // Close before unwinding so metrics frames stay balanced.
                stream.close(ctx);
                return Err(e);
            }
        }
    }
    stream.close(ctx);
    match parts.len() {
        0 => Ok(Batch::empty(schema)),
        1 => Ok(parts.pop().expect("one part").flatten()),
        _ => Batch::concat(&parts),
    }
}

/// Multi-line EXPLAIN-style rendering of a physical operator tree.
pub fn display_physical(op: &dyn PhysicalOperator) -> String {
    fn walk(op: &dyn PhysicalOperator, depth: usize, out: &mut String) {
        let _ = writeln!(out, "{}{}", "  ".repeat(depth), op.label());
        for c in op.children() {
            walk(c, depth + 1, out);
        }
    }
    let mut out = String::new();
    walk(op, 0, &mut out);
    out
}
