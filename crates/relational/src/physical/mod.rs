//! Physical query plans.
//!
//! [`crate::plan::LogicalPlan`] is the optimizer's currency: a declarative
//! tree that says *what* to compute. This module is the execution layer: a
//! tree of operator structs behind the [`PhysicalOperator`] trait that says
//! *how* — every optimizer decision is baked in explicitly by the
//! [`lower::lower`] pass rather than re-derived at runtime:
//!
//! * index-bound candidates for scans ([`scan::PhysicalScan`] carries the
//!   derived per-column range/IN bounds),
//! * redundant-sort elimination (a window whose input is already ordered
//!   lowers *without* a [`sort::PhysicalSort`] in front; one is inserted
//!   otherwise — the physical window operator itself never sorts),
//! * partition-parallel window evaluation ([`window::PhysicalWindow`]
//!   hash-splits the cleansing path's `PARTITION BY` (cluster-key)
//!   partitions across a scoped thread pool when
//!   [`ExecOptions::parallelism`] > 1, with byte-identical results and
//!   identical merged [`ExecStats`] at any parallelism).
//!
//! Operators execute against an [`ExecContext`], which carries the catalog,
//! the execution options, the deterministic work counters, and a separate
//! wall-clock channel for window evaluation (timings may differ across
//! parallelism; counters must not).

pub mod aggregate;
pub mod distinct;
pub mod filter;
pub mod hash_join;
pub mod limit;
pub mod lower;
pub mod metrics;
pub mod project;
pub mod scan;
pub mod semi_join;
pub mod sort;
pub mod subquery_alias;
pub mod union;
pub mod window;

pub use lower::lower;
pub use metrics::{DeterministicMetrics, MetricsCollector, OperatorMetrics};

use crate::batch::Batch;
use crate::error::Result;
use crate::exec::ExecStats;
use crate::table::Catalog;
use std::fmt::Write as _;
use std::time::Instant;

/// Execution knobs threaded from the system facade down to the operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Number of worker threads for partition-parallel operators (the Φ_C
    /// cleansing window path). `1` means serial. Parallelism never changes
    /// results or work counters — only wall-clock.
    pub parallelism: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { parallelism: 1 }
    }
}

impl ExecOptions {
    pub fn with_parallelism(parallelism: usize) -> Self {
        ExecOptions {
            parallelism: parallelism.max(1),
        }
    }
}

/// Per-execution state handed to every operator.
pub struct ExecContext<'a> {
    pub catalog: &'a Catalog,
    pub options: ExecOptions,
    /// Deterministic work counters — identical at any parallelism.
    pub stats: ExecStats,
    /// Wall-clock nanoseconds spent evaluating window aggregates (the Φ_C
    /// hot path). Deliberately *not* part of [`ExecStats`]: timings change
    /// with parallelism, counters must not.
    pub window_eval_nanos: u64,
    /// Per-operator metrics tree under construction (see
    /// [`metrics::MetricsCollector`]); driven by the instrumented
    /// [`PhysicalOperator::execute`] wrapper around every operator.
    pub metrics: MetricsCollector,
}

impl<'a> ExecContext<'a> {
    pub fn new(catalog: &'a Catalog, options: ExecOptions) -> Self {
        ExecContext {
            catalog,
            options,
            stats: ExecStats::default(),
            window_eval_nanos: 0,
            metrics: MetricsCollector::new(),
        }
    }
}

/// A fully-lowered physical operator: executes to a materialized batch.
///
/// Contract:
/// * `execute_op` materializes this operator's full output, recursively
///   executing children (via their instrumented [`execute`]); all work is
///   accounted in `ctx.stats` using the same counter semantics at any
///   `ctx.options.parallelism`, and node-local work (comparisons,
///   partitions) additionally into `ctx.metrics` against the current frame.
/// * Operators perform no plan-level decisions at runtime — what to do
///   (index bounds, sort placement, projections) was fixed by `lower()`;
///   only data-dependent choices (e.g. *which* candidate index bound is
///   most selective on the actual table) remain.
/// * `children` exposes the operator tree for display/inspection and must
///   match the inputs `execute_op` consumes.
///
/// [`execute`]: PhysicalOperator::execute
pub trait PhysicalOperator: std::fmt::Debug {
    /// Operator name for plan rendering, e.g. `"WindowExec"`.
    fn name(&self) -> &'static str;

    /// One-line description including operator-specific detail.
    fn label(&self) -> String {
        self.name().to_string()
    }

    /// Child operators, in execution order.
    fn children(&self) -> Vec<&dyn PhysicalOperator>;

    /// Operator body: execute to a fully materialized batch. Implementations
    /// recurse through the children's `execute`, never `execute_op`.
    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch>;

    /// Instrumented entry point: opens a [`metrics::MetricsCollector`]
    /// frame, runs [`execute_op`](PhysicalOperator::execute_op), and closes
    /// the frame with the produced row count and the operator's inclusive
    /// wall-clock. Callers (the executor and parent operators) always go
    /// through this; operators implement `execute_op`.
    fn execute(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        ctx.metrics.enter(self.name(), self.label());
        let start = Instant::now();
        let result = self.execute_op(ctx);
        let nanos = start.elapsed().as_nanos() as u64;
        let rows_out = result.as_ref().map(|b| b.num_rows() as u64).unwrap_or(0);
        ctx.metrics.exit(rows_out, nanos);
        result
    }
}

/// Multi-line EXPLAIN-style rendering of a physical operator tree.
pub fn display_physical(op: &dyn PhysicalOperator) -> String {
    fn walk(op: &dyn PhysicalOperator, depth: usize, out: &mut String) {
        let _ = writeln!(out, "{}{}", "  ".repeat(depth), op.label());
        for c in op.children() {
            walk(c, depth + 1, out);
        }
    }
    let mut out = String::new();
    walk(op, 0, &mut out);
    out
}
