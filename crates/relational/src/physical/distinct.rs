//! Duplicate-row elimination.

use super::{ExecContext, PhysicalOperator};
use crate::agg::distinct_with;
use crate::batch::Batch;
use crate::error::Result;
use crate::hash::HashStats;

#[derive(Debug)]
pub struct PhysicalDistinct {
    pub input: Box<dyn PhysicalOperator>,
}

impl PhysicalOperator for PhysicalDistinct {
    fn name(&self) -> &'static str {
        "DistinctExec"
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = super::collect_input(self.input.as_ref(), ctx)?;
        // Each input row is hashed against the seen-set once.
        ctx.metrics.add_comparisons(b.num_rows() as u64);
        let mut hash = HashStats::default();
        let out = distinct_with(&b, ctx.options.rowwise_hash, &mut hash)?;
        ctx.stats.add_hash(&hash);
        ctx.metrics.add_hash(&hash);
        Ok(out)
    }
}
