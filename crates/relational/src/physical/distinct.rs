//! Duplicate-row elimination.

use super::{ExecContext, PhysicalOperator};
use crate::agg::distinct;
use crate::batch::Batch;
use crate::error::Result;

#[derive(Debug)]
pub struct PhysicalDistinct {
    pub input: Box<dyn PhysicalOperator>,
}

impl PhysicalOperator for PhysicalDistinct {
    fn name(&self) -> &'static str {
        "DistinctExec"
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = self.input.execute(ctx)?;
        Ok(distinct(&b))
    }
}
