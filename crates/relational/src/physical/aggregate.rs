//! Hash aggregation with GROUP BY.

use super::{ExecContext, PhysicalOperator};
use crate::agg::{hash_aggregate_with, AggExpr};
use crate::batch::Batch;
use crate::error::Result;
use crate::expr::Expr;
use crate::hash::HashStats;

#[derive(Debug)]
pub struct PhysicalAggregate {
    pub input: Box<dyn PhysicalOperator>,
    pub group_by: Vec<(Expr, String)>,
    pub aggs: Vec<AggExpr>,
}

impl PhysicalOperator for PhysicalAggregate {
    fn name(&self) -> &'static str {
        "AggregateExec"
    }

    fn label(&self) -> String {
        let keys: Vec<String> = self.group_by.iter().map(|(e, _)| e.to_string()).collect();
        format!("AggregateExec: group by [{}]", keys.join(", "))
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = super::collect_input(self.input.as_ref(), ctx)?;
        // Each input row is hashed into a group once.
        ctx.metrics.add_comparisons(b.num_rows() as u64);
        let mut hash = HashStats::default();
        let out = hash_aggregate_with(
            &b,
            &self.group_by,
            &self.aggs,
            ctx.options.rowwise_hash,
            &mut hash,
        )?;
        ctx.stats.add_hash(&hash);
        ctx.metrics.add_hash(&hash);
        Ok(out)
    }
}
