//! Explicit sort. Every sort in a physical plan is one of these nodes —
//! placed either by the logical plan or by `lower()` in front of a window
//! whose input order was not already shared.
//!
//! Execution is run-aware (see [`crate::sort::sort_batch_runs`]): the input
//! is decomposed into non-descending runs and merged, so an already-ordered
//! input passes through untouched (`sorts_elided`) and a table assembled
//! from ordered segment appends merges its k runs in O(n log k)
//! (`merge_runs_used`). When `lower()` saw that the input is an unfiltered
//! scan of a catalog table, `run_hint_table` lets run discovery use the
//! per-segment `sorted_by` metadata recorded at seal time instead of
//! re-scanning the data — one comparison per segment boundary.

use super::{ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;
use crate::expr::Expr;
use crate::sort::{sort_batch_runs, SortKey};

#[derive(Debug)]
pub struct PhysicalSort {
    pub input: Box<dyn PhysicalOperator>,
    pub keys: Vec<SortKey>,
    /// Catalog table whose rows flow into this sort in table order (set by
    /// `lower()` only for unfiltered scans), enabling metadata-only run
    /// detection from segment descriptors.
    pub run_hint_table: Option<String>,
}

impl PhysicalOperator for PhysicalSort {
    fn name(&self) -> &'static str {
        "SortExec"
    }

    fn label(&self) -> String {
        let keys: Vec<String> = self.keys.iter().map(|k| k.to_string()).collect();
        format!("SortExec: [{}]", keys.join(", "))
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = super::collect_input(self.input.as_ref(), ctx)?;
        let hint = self.segment_run_hint(ctx, &b);
        let (out, effort) = sort_batch_runs(&b, &self.keys, hint.as_deref())?;
        ctx.stats.rows_sorted += b.num_rows() as u64;
        ctx.stats.sorts_performed += 1;
        ctx.stats.sort_comparisons += effort.comparisons;
        if effort.elided {
            ctx.stats.sorts_elided += 1;
        } else {
            ctx.stats.merge_runs_used += effort.runs;
        }
        ctx.metrics.add_comparisons(effort.comparisons);
        Ok(out)
    }
}

impl PhysicalSort {
    /// Resolve `run_hint_table` to run start offsets, if the segment
    /// metadata covers this sort's keys. Returns `None` (fall back to
    /// data-driven run detection — never wrong, just costlier) unless:
    ///
    /// * every key is a plain column reference, ascending with NULLs first —
    ///   the exact order `sorted_by` prefixes were verified under at seal
    ///   time (soundness: a hint under any other order could fabricate
    ///   runs);
    /// * every segment's verified order covers the key columns;
    /// * the batch has exactly the table's row count, so segment offsets
    ///   still address the right rows (an append between the scan and this
    ///   sort would otherwise shift them).
    fn segment_run_hint(&self, ctx: &ExecContext<'_>, b: &Batch) -> Option<Vec<usize>> {
        let table = ctx.catalog.get(self.run_hint_table.as_deref()?).ok()?;
        if table.num_rows() != b.num_rows() {
            return None;
        }
        let cols: Vec<usize> = self
            .keys
            .iter()
            .map(|k| {
                if !k.ascending || !k.nulls_first {
                    return None;
                }
                let Expr::Column(c) = &k.expr else {
                    return None;
                };
                // The scan's output is positionally identical to the table,
                // whatever qualifier the plan put on the column names.
                b.schema().index_of(c.qualifier.as_deref(), &c.name).ok()
            })
            .collect::<Option<_>>()?;
        table.segment_runs(&cols)
    }
}
