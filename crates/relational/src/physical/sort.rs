//! Explicit sort. Every sort in a physical plan is one of these nodes —
//! placed either by the logical plan or by `lower()` in front of a window
//! whose input order was not already shared.

use super::{ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;
use crate::sort::{sort_batch, SortKey};

#[derive(Debug)]
pub struct PhysicalSort {
    pub input: Box<dyn PhysicalOperator>,
    pub keys: Vec<SortKey>,
}

impl PhysicalOperator for PhysicalSort {
    fn name(&self) -> &'static str {
        "SortExec"
    }

    fn label(&self) -> String {
        let keys: Vec<String> = self.keys.iter().map(|k| k.to_string()).collect();
        format!("SortExec: [{}]", keys.join(", "))
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = self.input.execute(ctx)?;
        ctx.stats.rows_sorted += b.num_rows() as u64;
        ctx.stats.sorts_performed += 1;
        ctx.metrics.add_comparisons(b.num_rows() as u64);
        sort_batch(&b, &self.keys)
    }
}
