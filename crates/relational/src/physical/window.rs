//! Window-aggregate evaluation — the Φ_C cleansing hot path — with
//! optional partition-parallel execution.
//!
//! The input is already sorted by (partition keys, order keys); `lower()`
//! inserted an explicit sort if the order was not shared. Evaluation splits
//! into a read-only prepare step ([`WindowEval::prepare`] evaluates every
//! expression against the batch up front) and pure per-partition
//! computation, so partitions can be farmed out to a scoped thread pool:
//!
//! * whole partitions are hash-assigned to shards (FNV over the partition
//!   key values — deterministic, independent of thread timing),
//! * workers only read the shared [`WindowEval`] and write their own
//!   results, each tagged with its partition index,
//! * outputs are re-assembled in original partition order and work counters
//!   summed per partition, so the result batch is byte-identical and the
//!   merged [`ExecStats`](crate::exec::ExecStats) equal to the serial run
//!   at any parallelism.
//!
//! Wall-clock spent here is accumulated into
//! [`ExecContext::window_eval_nanos`] — the one quantity that *should*
//! change with parallelism.

use super::{ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::column::{Column, ColumnBuilder};
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::schema::{Field, Schema};
use crate::value::Value;
use crate::window::{WindowEval, WindowExpr};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
pub struct PhysicalWindow {
    pub input: Box<dyn PhysicalOperator>,
    pub partition_by: Vec<Expr>,
    /// Single ORDER BY key, when RANGE frames need it for binary searches.
    pub order_key: Option<Expr>,
    pub exprs: Vec<WindowExpr>,
}

impl PhysicalOperator for PhysicalWindow {
    fn name(&self) -> &'static str {
        "WindowExec"
    }

    fn label(&self) -> String {
        let parts: Vec<String> = self.partition_by.iter().map(|e| e.to_string()).collect();
        let aliases: Vec<&str> = self.exprs.iter().map(|we| we.alias.as_str()).collect();
        format!(
            "WindowExec: partition by [{}] exprs [{}]",
            parts.join(", "),
            aliases.join(", ")
        )
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = super::collect_input(self.input.as_ref(), ctx)?;
        let start = Instant::now();

        let ev = WindowEval::prepare(&b, &self.partition_by, self.order_key.as_ref(), &self.exprs)?;
        let parts: Vec<(usize, usize)> = ev.partitions().to_vec();
        ctx.stats.partitions_executed += parts.len() as u64;
        ctx.metrics.add_partitions(parts.len() as u64);

        let p = ctx.options.parallelism.min(parts.len()).max(1);
        let mut work: u64 = 0;
        let mut builders: Vec<ColumnBuilder> = ev
            .output_types()
            .iter()
            .map(|&dt| ColumnBuilder::new(dt, b.num_rows()))
            .collect();

        if p <= 1 {
            for &range in &parts {
                // Cancellation/deadline checkpoint per partition: the Φ_C
                // hot path can dominate a query's runtime, so operator-entry
                // checks alone would not be responsive.
                ctx.budget.check()?;
                let (vals, w) = ev.eval_partition(range)?;
                work += w;
                push_partition(&mut builders, &vals)?;
            }
        } else {
            // Hash-assign whole partitions to shards by their key values —
            // a pure function of the data, not of thread scheduling.
            let mut shards: Vec<Vec<usize>> = vec![Vec::new(); p];
            for (pi, &(lo, _)) in parts.iter().enumerate() {
                let shard = (partition_key_hash(ev.partition_cols(), lo) % p as u64) as usize;
                shards[shard].push(pi);
            }

            type PartResult = (usize, Result<(Vec<Vec<Value>>, u64)>);
            let budget = &ctx.budget;
            let shard_results: Vec<Vec<PartResult>> = std::thread::scope(|s| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| {
                        let ev = &ev;
                        let parts = &parts;
                        s.spawn(move || {
                            shard
                                .iter()
                                .map(|&pi| {
                                    // Same per-partition checkpoint as the
                                    // serial path; the abort surfaces through
                                    // the earliest-partition error merge below.
                                    let r =
                                        budget.check().and_then(|()| ev.eval_partition(parts[pi]));
                                    (pi, r)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                // Joining in shard order keeps collection deterministic.
                handles
                    .into_iter()
                    .map(|h| h.join().expect("window worker panicked"))
                    .collect()
            });

            let mut slots: Vec<Option<(Vec<Vec<Value>>, u64)>> =
                (0..parts.len()).map(|_| None).collect();
            let mut first_err: Option<(usize, Error)> = None;
            for shard in shard_results {
                for (pi, r) in shard {
                    match r {
                        Ok(v) => slots[pi] = Some(v),
                        // Serial execution would surface the error of the
                        // earliest failing partition; mirror that.
                        Err(e) => {
                            if first_err.as_ref().is_none_or(|(fp, _)| pi < *fp) {
                                first_err = Some((pi, e));
                            }
                        }
                    }
                }
            }
            if let Some((_, e)) = first_err {
                return Err(e);
            }
            for slot in slots {
                let (vals, w) = slot.expect("every partition is assigned to a shard");
                work += w;
                push_partition(&mut builders, &vals)?;
            }
        }

        ctx.stats.window_accumulator_ops += work;
        ctx.metrics.add_comparisons(work);
        let mut fields = b.schema().fields().to_vec();
        let mut cols: Vec<Column> = b.columns().to_vec();
        for (we, c) in self
            .exprs
            .iter()
            .zip(builders.into_iter().map(ColumnBuilder::finish))
        {
            fields.push(Field::new(we.alias.clone(), c.data_type()));
            cols.push(c);
        }
        let out = Batch::new(Arc::new(Schema::new(fields)), cols);
        ctx.window_eval_nanos += start.elapsed().as_nanos() as u64;
        out
    }
}

fn push_partition(builders: &mut [ColumnBuilder], vals: &[Vec<Value>]) -> Result<()> {
    for (b, vs) in builders.iter_mut().zip(vals) {
        for v in vs {
            b.push(v)?;
        }
    }
    Ok(())
}

/// FNV-1a over the partition's key values at its first row. Fixed offset
/// basis and prime keep shard assignment reproducible across runs.
fn partition_key_hash(part_cols: &[Column], row: usize) -> u64 {
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    for c in part_cols {
        c.value(row).hash(&mut h);
    }
    h.finish()
}
