//! Residual predicate evaluation over a child's output.

use super::metrics::FrameId;
use super::{ChunkStream, ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;
use crate::expr::{filter_chunk, Expr};
use crate::schema::SchemaRef;
use std::time::Instant;

#[derive(Debug)]
pub struct PhysicalFilter {
    pub input: Box<dyn PhysicalOperator>,
    pub predicate: Expr,
}

impl PhysicalOperator for PhysicalFilter {
    fn name(&self) -> &'static str {
        "FilterExec"
    }

    fn label(&self) -> String {
        format!("FilterExec: {}", self.predicate)
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = self.input.execute(ctx)?;
        // One predicate evaluation per input row.
        ctx.metrics.add_comparisons(b.num_rows() as u64);
        let keep = self.predicate.filter_indices(&b)?;
        Ok(b.take(&keep))
    }

    fn open_chunks<'a>(&'a self, ctx: &mut ExecContext<'_>) -> Result<Box<dyn ChunkStream + 'a>> {
        ctx.budget.check()?;
        let id = ctx.metrics.enter(self.name(), self.label());
        let start = Instant::now();
        let child = match self.input.open_chunks(ctx) {
            Ok(c) => c,
            Err(e) => {
                ctx.metrics.exit(0, start.elapsed().as_nanos() as u64);
                return Err(e);
            }
        };
        Ok(Box::new(FilterStream {
            predicate: &self.predicate,
            child,
            id,
            rows_out: 0,
            nanos: start.elapsed().as_nanos() as u64,
        }))
    }
}

/// Streaming filter: marks surviving rows of each input chunk with a
/// selection vector instead of gathering their columns.
struct FilterStream<'a> {
    predicate: &'a Expr,
    child: Box<dyn ChunkStream + 'a>,
    id: FrameId,
    rows_out: u64,
    nanos: u64,
}

impl ChunkStream for FilterStream<'_> {
    fn schema(&self) -> SchemaRef {
        self.child.schema()
    }

    fn next_chunk(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        ctx.budget.check()?;
        let start = Instant::now();
        let pulled = self.child.next_chunk(ctx);
        let chunk = match pulled {
            Ok(Some(c)) => c,
            Ok(None) => {
                self.nanos += start.elapsed().as_nanos() as u64;
                return Ok(None);
            }
            Err(e) => {
                self.nanos += start.elapsed().as_nanos() as u64;
                return Err(e);
            }
        };
        // One predicate evaluation per input row, as on the materialized
        // path.
        ctx.metrics
            .add_comparisons_to(self.id, chunk.num_rows() as u64);
        let outcome = match filter_chunk(self.predicate, &chunk) {
            Ok(o) => o,
            Err(e) => {
                self.nanos += start.elapsed().as_nanos() as u64;
                return Err(e);
            }
        };
        let out = chunk.with_selection(outcome.selected);
        let avoided = out.num_columns() as u64;
        ctx.metrics.record_chunk(self.id, avoided);
        ctx.stats.batches_processed += 1;
        ctx.stats.selection_avoided_copies += avoided;
        let rows = out.num_rows() as u64;
        self.rows_out += rows;
        ctx.rows_emitted += rows;
        self.nanos += start.elapsed().as_nanos() as u64;
        ctx.budget.check_rows(ctx.rows_emitted)?;
        Ok(Some(out))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.child.close(ctx);
        ctx.metrics.exit(self.rows_out, self.nanos);
    }
}
