//! Residual predicate evaluation over a child's output.

use super::{ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;
use crate::expr::Expr;

#[derive(Debug)]
pub struct PhysicalFilter {
    pub input: Box<dyn PhysicalOperator>,
    pub predicate: Expr,
}

impl PhysicalOperator for PhysicalFilter {
    fn name(&self) -> &'static str {
        "FilterExec"
    }

    fn label(&self) -> String {
        format!("FilterExec: {}", self.predicate)
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = self.input.execute(ctx)?;
        // One predicate evaluation per input row.
        ctx.metrics.add_comparisons(b.num_rows() as u64);
        let keep = self.predicate.filter_indices(&b)?;
        Ok(b.take(&keep))
    }
}
