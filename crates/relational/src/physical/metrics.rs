//! Per-operator execution metrics — the observability backbone.
//!
//! Every [`PhysicalOperator`](super::PhysicalOperator) execution records one
//! [`OperatorMetrics`] node; nesting mirrors the operator tree, so an
//! `EXPLAIN ANALYZE` rendering can annotate each plan node with exactly the
//! work it did. Two kinds of quantities live side by side and must never be
//! conflated:
//!
//! * **deterministic counters** — rows in/out, comparisons (the operator's
//!   elementary work unit: rows fetched, predicate evaluations, sort rows,
//!   join probes, window accumulator ops), and window partition counts. These
//!   are pure functions of plan + data: identical at any
//!   [`ExecOptions::parallelism`](super::ExecOptions), and the quantities
//!   the CI perf-regression gate diffs;
//! * **timing** — inclusive wall-clock nanoseconds per operator (children
//!   included, as in PostgreSQL's `EXPLAIN ANALYZE`). Reported, never
//!   gated and never part of equality: timings change run to run.
//!
//! [`OperatorMetrics::deterministic`] projects a node tree onto only the
//! former, which is what tests compare across parallelism levels.

use crate::hash::HashStats;
use dc_json::Json;
use std::fmt::Write as _;

/// Metrics for one executed physical operator, with children mirroring the
/// operator tree.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorMetrics {
    /// Operator name, e.g. `"WindowExec"`.
    pub name: String,
    /// Full one-line label (operator-specific detail included).
    pub label: String,
    /// Rows consumed: the sum of the children's `rows_out`, except for
    /// leaves that fetch data themselves (a scan records rows fetched from
    /// the table, before residual filtering).
    pub rows_in: u64,
    /// Rows produced by this operator.
    pub rows_out: u64,
    /// Elementary work units: rows fetched for scans, predicate evaluations
    /// for filters, comparisons performed for sorts, probes for joins,
    /// accumulator ops for windows, input rows for aggregations.
    pub comparisons: u64,
    /// Window partitions evaluated (0 for non-window operators).
    pub partitions: u64,
    /// Segments considered by zone-map pruning (0 for non-scan operators
    /// and unfiltered scans).
    pub segments_total: u64,
    /// Segments skipped by zone-map pruning.
    pub segments_pruned: u64,
    /// Segments that survived pruning.
    pub segments_scanned: u64,
    /// Chunks this operator emitted on the streaming path (0 when the
    /// operator ran materialized). A pure function of plan + data +
    /// chunk size: identical at any parallelism.
    pub batches_processed: u64,
    /// Column gathers skipped because a filter marked survivors with a
    /// selection vector instead of copying column data (one per column per
    /// selection-carrying chunk).
    pub selection_avoided_copies: u64,
    /// Per-value hash computations by the vectorized hash kernels (rows ×
    /// key columns for joins, aggregation, and DISTINCT). 0 for operators
    /// that never hash.
    pub hash_ops: u64,
    /// Full 64-bit hash matches whose normalized keys compared unequal.
    pub hash_collisions: u64,
    /// Normalized-key memcmps on candidate (hash-equal) table entries.
    pub probe_memcmps: u64,
    /// Bytes written into normalized-key arenas.
    pub key_bytes_encoded: u64,
    /// Inclusive wall-clock (children included). Timing, not a counter:
    /// excluded from [`OperatorMetrics::deterministic`].
    pub wall_nanos: u64,
    pub children: Vec<OperatorMetrics>,
}

/// The deterministic projection of an [`OperatorMetrics`] tree: everything
/// except timing. Two executions of the same plan over the same data must
/// produce equal `DeterministicMetrics` at any parallelism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicMetrics {
    pub name: String,
    pub label: String,
    pub rows_in: u64,
    pub rows_out: u64,
    pub comparisons: u64,
    pub partitions: u64,
    pub segments_total: u64,
    pub segments_pruned: u64,
    pub segments_scanned: u64,
    pub batches_processed: u64,
    pub selection_avoided_copies: u64,
    pub hash_ops: u64,
    pub hash_collisions: u64,
    pub probe_memcmps: u64,
    pub key_bytes_encoded: u64,
    pub children: Vec<DeterministicMetrics>,
}

impl OperatorMetrics {
    /// Strip timing, keeping only the deterministic counters.
    pub fn deterministic(&self) -> DeterministicMetrics {
        DeterministicMetrics {
            name: self.name.clone(),
            label: self.label.clone(),
            rows_in: self.rows_in,
            rows_out: self.rows_out,
            comparisons: self.comparisons,
            partitions: self.partitions,
            segments_total: self.segments_total,
            segments_pruned: self.segments_pruned,
            segments_scanned: self.segments_scanned,
            batches_processed: self.batches_processed,
            selection_avoided_copies: self.selection_avoided_copies,
            hash_ops: self.hash_ops,
            hash_collisions: self.hash_collisions,
            probe_memcmps: self.probe_memcmps,
            key_bytes_encoded: self.key_bytes_encoded,
            children: self.children.iter().map(Self::deterministic).collect(),
        }
    }

    /// Merge another shard's metrics tree into this one. The trees must
    /// have the same shape (same operator names and child counts — which
    /// holds whenever every shard executed the same plan): counters and
    /// wall-clock add node by node, yielding the coordinator's combined
    /// view. The deterministic projection of the merged tree equals the
    /// per-shard sums regardless of shard execution order. Returns `false`
    /// (leaving `self` partially merged) on a shape mismatch; callers
    /// should then drop the combined tree rather than report a torn one.
    #[must_use]
    pub fn merge_same_shape(&mut self, other: &OperatorMetrics) -> bool {
        if self.name != other.name || self.children.len() != other.children.len() {
            return false;
        }
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.comparisons += other.comparisons;
        self.partitions += other.partitions;
        self.segments_total += other.segments_total;
        self.segments_pruned += other.segments_pruned;
        self.segments_scanned += other.segments_scanned;
        self.batches_processed += other.batches_processed;
        self.selection_avoided_copies += other.selection_avoided_copies;
        self.hash_ops += other.hash_ops;
        self.hash_collisions += other.hash_collisions;
        self.probe_memcmps += other.probe_memcmps;
        self.key_bytes_encoded += other.key_bytes_encoded;
        self.wall_nanos += other.wall_nanos;
        self.children
            .iter_mut()
            .zip(&other.children)
            .all(|(a, b)| a.merge_same_shape(b))
    }

    /// Total comparisons across the whole tree.
    pub fn total_comparisons(&self) -> u64 {
        self.comparisons
            + self
                .children
                .iter()
                .map(Self::total_comparisons)
                .sum::<u64>()
    }

    /// Number of operator nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(Self::node_count).sum::<usize>()
    }

    /// Indented `EXPLAIN ANALYZE` rendering. With `with_timing` the inclusive
    /// per-operator wall-clock is appended to every line.
    pub fn render_text(&self, with_timing: bool) -> String {
        fn walk(m: &OperatorMetrics, depth: usize, with_timing: bool, out: &mut String) {
            let _ = write!(
                out,
                "{}{} (rows_in={} rows_out={} comparisons={}",
                "  ".repeat(depth),
                m.label,
                m.rows_in,
                m.rows_out,
                m.comparisons
            );
            if m.partitions > 0 {
                let _ = write!(out, " partitions={}", m.partitions);
            }
            if m.segments_total > 0 {
                let _ = write!(
                    out,
                    " segments_total={} segments_pruned={} segments_scanned={}",
                    m.segments_total, m.segments_pruned, m.segments_scanned
                );
            }
            if m.batches_processed > 0 {
                let _ = write!(out, " batches={}", m.batches_processed);
            }
            if m.selection_avoided_copies > 0 {
                let _ = write!(
                    out,
                    " selection_avoided_copies={}",
                    m.selection_avoided_copies
                );
            }
            if m.hash_ops > 0 {
                let _ = write!(
                    out,
                    " hash_ops={} hash_collisions={} probe_memcmps={} key_bytes={}",
                    m.hash_ops, m.hash_collisions, m.probe_memcmps, m.key_bytes_encoded
                );
            }
            if with_timing {
                let _ = write!(out, " time={:.3}ms", m.wall_nanos as f64 / 1e6);
            }
            let _ = writeln!(out, ")");
            for c in &m.children {
                walk(c, depth + 1, with_timing, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, with_timing, &mut out);
        out
    }

    /// Machine-readable tree. Timing is emitted under the `time_ms` key only
    /// when requested so deterministic snapshots stay byte-stable.
    pub fn to_json(&self, with_timing: bool) -> Json {
        let mut obj = Json::obj()
            .set("operator", self.name.as_str())
            .set("label", self.label.as_str())
            .set("rows_in", self.rows_in)
            .set("rows_out", self.rows_out)
            .set("comparisons", self.comparisons)
            .set("partitions", self.partitions)
            .set("segments_total", self.segments_total)
            .set("segments_pruned", self.segments_pruned)
            .set("segments_scanned", self.segments_scanned)
            .set("batches_processed", self.batches_processed)
            .set("selection_avoided_copies", self.selection_avoided_copies)
            .set("hash_ops", self.hash_ops)
            .set("hash_collisions", self.hash_collisions)
            .set("probe_memcmps", self.probe_memcmps)
            .set("key_bytes_encoded", self.key_bytes_encoded);
        if with_timing {
            obj = obj.set("time_ms", Json::Num(self.wall_nanos as f64 / 1e6));
        }
        obj.set(
            "children",
            Json::Arr(
                self.children
                    .iter()
                    .map(|c| c.to_json(with_timing))
                    .collect(),
            ),
        )
    }
}

/// Addressable handle for an open metrics frame, returned by
/// [`MetricsCollector::enter`]. Streaming operators hold their frame's id so
/// interleaved `next_chunk` calls can record work against the right node —
/// the innermost-frame `add_*` methods would misattribute it (while a
/// pipeline streams, the stack holds every operator in the pipeline, with
/// the source on top).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameId(u64);

/// One operator frame while its `execute` is on the stack.
#[derive(Debug)]
struct PendingNode {
    id: u64,
    name: &'static str,
    label: String,
    /// Explicitly recorded input rows (scans); defaults to the sum of the
    /// children's `rows_out` when absent.
    rows_in: Option<u64>,
    comparisons: u64,
    partitions: u64,
    segments_total: u64,
    segments_pruned: u64,
    segments_scanned: u64,
    batches_processed: u64,
    selection_avoided_copies: u64,
    hash: HashStats,
    children: Vec<OperatorMetrics>,
}

/// Builds the [`OperatorMetrics`] tree as operators execute. The
/// instrumented [`PhysicalOperator::execute`](super::PhysicalOperator::execute)
/// wrapper drives `enter`/`exit`; operator bodies record their own work
/// through the `add_*` methods, which always target the innermost frame —
/// the operator currently executing.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    stack: Vec<PendingNode>,
    root: Option<OperatorMetrics>,
    next_id: u64,
}

impl MetricsCollector {
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    /// Open a frame for an operator about to execute (or stream). The
    /// returned id addresses this frame until its matching `exit`.
    pub fn enter(&mut self, name: &'static str, label: String) -> FrameId {
        let id = self.next_id;
        self.next_id += 1;
        self.stack.push(PendingNode {
            id,
            name,
            label,
            rows_in: None,
            comparisons: 0,
            partitions: 0,
            segments_total: 0,
            segments_pruned: 0,
            segments_scanned: 0,
            batches_processed: 0,
            selection_avoided_copies: 0,
            hash: HashStats::default(),
            children: Vec::new(),
        });
        FrameId(id)
    }

    /// Close the innermost frame, attaching it to its parent (or making it
    /// the root). `rows_out` is 0 when the operator failed.
    pub fn exit(&mut self, rows_out: u64, wall_nanos: u64) {
        let Some(node) = self.stack.pop() else {
            debug_assert!(false, "MetricsCollector::exit without matching enter");
            return;
        };
        let rows_in = node
            .rows_in
            .unwrap_or_else(|| node.children.iter().map(|c| c.rows_out).sum());
        let done = OperatorMetrics {
            name: node.name.to_string(),
            label: node.label,
            rows_in,
            rows_out,
            comparisons: node.comparisons,
            partitions: node.partitions,
            segments_total: node.segments_total,
            segments_pruned: node.segments_pruned,
            segments_scanned: node.segments_scanned,
            batches_processed: node.batches_processed,
            selection_avoided_copies: node.selection_avoided_copies,
            hash_ops: node.hash.hash_ops,
            hash_collisions: node.hash.hash_collisions,
            probe_memcmps: node.hash.probe_memcmps,
            key_bytes_encoded: node.hash.key_bytes_encoded,
            wall_nanos,
            children: node.children,
        };
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(done),
            None => self.root = Some(done),
        }
    }

    /// Record elementary work units against the operator currently executing.
    pub fn add_comparisons(&mut self, n: u64) {
        if let Some(top) = self.stack.last_mut() {
            top.comparisons += n;
        }
    }

    /// Record hash-kernel work against the operator currently executing.
    pub fn add_hash(&mut self, h: &HashStats) {
        if let Some(top) = self.stack.last_mut() {
            top.hash.merge(h);
        }
    }

    /// Record window partitions against the operator currently executing.
    pub fn add_partitions(&mut self, n: u64) {
        if let Some(top) = self.stack.last_mut() {
            top.partitions += n;
        }
    }

    /// Record the rows a leaf operator fetched itself (overrides the
    /// children-sum default for `rows_in`).
    pub fn set_rows_in(&mut self, n: u64) {
        if let Some(top) = self.stack.last_mut() {
            top.rows_in = Some(n);
        }
    }

    /// Record a zone-map pruning decision against the operator currently
    /// executing (scans only).
    pub fn add_segments(&mut self, total: u64, pruned: u64, scanned: u64) {
        if let Some(top) = self.stack.last_mut() {
            top.segments_total += total;
            top.segments_pruned += pruned;
            top.segments_scanned += scanned;
        }
    }

    fn frame_mut(&mut self, id: FrameId) -> Option<&mut PendingNode> {
        self.stack.iter_mut().rev().find(|n| n.id == id.0)
    }

    /// Record elementary work units against a specific open frame — used by
    /// streaming operators whose frames are not the innermost while the
    /// pipeline runs.
    pub fn add_comparisons_to(&mut self, id: FrameId, n: u64) {
        if let Some(f) = self.frame_mut(id) {
            f.comparisons += n;
        }
    }

    /// Record one emitted chunk (and any column gathers it avoided by
    /// carrying a selection vector) against a specific open frame.
    pub fn record_chunk(&mut self, id: FrameId, avoided_copies: u64) {
        if let Some(f) = self.frame_mut(id) {
            f.batches_processed += 1;
            f.selection_avoided_copies += avoided_copies;
        }
    }

    /// The completed tree (the last fully executed root operator).
    pub fn finish(self) -> Option<OperatorMetrics> {
        self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OperatorMetrics {
        let mut c = MetricsCollector::new();
        c.enter("FilterExec", "FilterExec: x > 1".into());
        c.enter("ScanExec", "ScanExec: r".into());
        c.set_rows_in(100);
        c.add_comparisons(100);
        c.exit(40, 1_000_000);
        c.add_comparisons(40);
        c.exit(7, 3_000_000);
        c.finish().unwrap()
    }

    #[test]
    fn tree_shape_and_rows_in() {
        let m = sample();
        assert_eq!(m.name, "FilterExec");
        assert_eq!(m.children.len(), 1);
        // Filter's rows_in defaults to its child's rows_out.
        assert_eq!(m.rows_in, 40);
        assert_eq!(m.rows_out, 7);
        // Scan's rows_in was set explicitly (pre-residual fetch).
        assert_eq!(m.children[0].rows_in, 100);
        assert_eq!(m.total_comparisons(), 140);
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn deterministic_view_ignores_timing() {
        let a = sample();
        let mut b = sample();
        b.wall_nanos = 999;
        b.children[0].wall_nanos = 1;
        assert_ne!(a, b);
        assert_eq!(a.deterministic(), b.deterministic());
    }

    #[test]
    fn render_and_json() {
        let m = sample();
        let text = m.render_text(false);
        assert!(text.contains("FilterExec: x > 1 (rows_in=40 rows_out=7 comparisons=40)"));
        assert!(text.contains("  ScanExec: r (rows_in=100"));
        assert!(!text.contains("time="));
        assert!(m.render_text(true).contains("time="));

        let j = m.to_json(false);
        assert_eq!(j.get("operator").and_then(Json::as_str), Some("FilterExec"));
        assert_eq!(j.get("rows_out").and_then(Json::as_u64), Some(7));
        assert!(j.get("time_ms").is_none());
        let child = &j.get("children").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(child.get("comparisons").and_then(Json::as_u64), Some(100));
        assert!(m.to_json(true).get("time_ms").is_some());
    }

    #[test]
    fn segment_counters_render_only_when_present() {
        let mut c = MetricsCollector::new();
        c.enter("ScanExec", "ScanExec: caser".into());
        c.add_segments(8, 6, 2);
        c.exit(10, 100);
        let m = c.finish().unwrap();
        assert_eq!(m.segments_total, 8);
        assert_eq!(m.deterministic().segments_pruned, 6);
        let text = m.render_text(false);
        assert!(text.contains("segments_total=8 segments_pruned=6 segments_scanned=2"));
        assert_eq!(
            m.to_json(false)
                .get("segments_pruned")
                .and_then(Json::as_u64),
            Some(6)
        );
        // Operators with no pruning activity keep their old rendering.
        let plain = sample().render_text(false);
        assert!(!plain.contains("segments_total"));
    }

    #[test]
    fn failed_subtree_still_attaches() {
        let mut c = MetricsCollector::new();
        c.enter("FilterExec", "FilterExec".into());
        c.enter("ScanExec", "ScanExec".into());
        c.exit(0, 10); // failed: no rows
        c.exit(0, 20);
        let m = c.finish().unwrap();
        assert_eq!(m.children.len(), 1);
        assert_eq!(m.rows_out, 0);
    }
}
