//! Schema requalification for derived tables.

use super::{ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;
use std::sync::Arc;

#[derive(Debug)]
pub struct PhysicalSubqueryAlias {
    pub input: Box<dyn PhysicalOperator>,
    pub alias: String,
}

impl PhysicalOperator for PhysicalSubqueryAlias {
    fn name(&self) -> &'static str {
        "SubqueryAliasExec"
    }

    fn label(&self) -> String {
        format!("SubqueryAliasExec: {}", self.alias)
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = self.input.execute(ctx)?;
        let schema = Arc::new(b.schema().with_qualifier(&self.alias));
        b.with_schema(schema)
    }
}
