//! Schema requalification for derived tables.

use super::metrics::FrameId;
use super::{ChunkStream, ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;
use crate::schema::SchemaRef;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
pub struct PhysicalSubqueryAlias {
    pub input: Box<dyn PhysicalOperator>,
    pub alias: String,
}

impl PhysicalOperator for PhysicalSubqueryAlias {
    fn name(&self) -> &'static str {
        "SubqueryAliasExec"
    }

    fn label(&self) -> String {
        format!("SubqueryAliasExec: {}", self.alias)
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = self.input.execute(ctx)?;
        let schema = Arc::new(b.schema().with_qualifier(&self.alias));
        b.with_schema(schema)
    }

    fn open_chunks<'a>(&'a self, ctx: &mut ExecContext<'_>) -> Result<Box<dyn ChunkStream + 'a>> {
        ctx.budget.check()?;
        let id = ctx.metrics.enter(self.name(), self.label());
        let start = Instant::now();
        let child = match self.input.open_chunks(ctx) {
            Ok(c) => c,
            Err(e) => {
                ctx.metrics.exit(0, start.elapsed().as_nanos() as u64);
                return Err(e);
            }
        };
        let schema = Arc::new(child.schema().with_qualifier(&self.alias));
        Ok(Box::new(AliasStream {
            child,
            schema,
            id,
            rows_out: 0,
            nanos: start.elapsed().as_nanos() as u64,
        }))
    }
}

/// Streaming requalification: re-schemas each chunk, selection preserved.
struct AliasStream<'a> {
    child: Box<dyn ChunkStream + 'a>,
    schema: SchemaRef,
    id: FrameId,
    rows_out: u64,
    nanos: u64,
}

impl ChunkStream for AliasStream<'_> {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn next_chunk(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        ctx.budget.check()?;
        let start = Instant::now();
        let chunk = match self.child.next_chunk(ctx) {
            Ok(Some(c)) => c,
            Ok(None) => {
                self.nanos += start.elapsed().as_nanos() as u64;
                return Ok(None);
            }
            Err(e) => {
                self.nanos += start.elapsed().as_nanos() as u64;
                return Err(e);
            }
        };
        let out = match chunk.with_schema(self.schema.clone()) {
            Ok(b) => b,
            Err(e) => {
                self.nanos += start.elapsed().as_nanos() as u64;
                return Err(e);
            }
        };
        ctx.metrics.record_chunk(self.id, 0);
        ctx.stats.batches_processed += 1;
        let rows = out.num_rows() as u64;
        self.rows_out += rows;
        ctx.rows_emitted += rows;
        self.nanos += start.elapsed().as_nanos() as u64;
        ctx.budget.check_rows(ctx.rows_emitted)?;
        Ok(Some(out))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.child.close(ctx);
        ctx.metrics.exit(self.rows_out, self.nanos);
    }
}
