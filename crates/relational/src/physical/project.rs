//! Expression projection with output aliases.

use super::{ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;
use crate::expr::Expr;
use crate::schema::{Field, Schema};
use std::sync::Arc;

#[derive(Debug)]
pub struct PhysicalProject {
    pub input: Box<dyn PhysicalOperator>,
    pub exprs: Vec<(Expr, String)>,
}

impl PhysicalOperator for PhysicalProject {
    fn name(&self) -> &'static str {
        "ProjectExec"
    }

    fn label(&self) -> String {
        let cols: Vec<String> = self
            .exprs
            .iter()
            .map(|(e, a)| format!("{e} AS {a}"))
            .collect();
        format!("ProjectExec: {}", cols.join(", "))
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = self.input.execute(ctx)?;
        // One expression-evaluation pass per input row.
        ctx.metrics.add_comparisons(b.num_rows() as u64);
        let mut cols = Vec::with_capacity(self.exprs.len());
        let mut fields = Vec::with_capacity(self.exprs.len());
        for (e, alias) in &self.exprs {
            let c = e.evaluate(&b)?;
            fields.push(Field::from_flat_name(alias, c.data_type()));
            cols.push(c);
        }
        Batch::new(Arc::new(Schema::new(fields)), cols)
    }
}
