//! Expression projection with output aliases.

use super::metrics::FrameId;
use super::{ChunkStream, ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;
use crate::expr::Expr;
use crate::schema::{Field, Schema, SchemaRef};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
pub struct PhysicalProject {
    pub input: Box<dyn PhysicalOperator>,
    pub exprs: Vec<(Expr, String)>,
}

impl PhysicalOperator for PhysicalProject {
    fn name(&self) -> &'static str {
        "ProjectExec"
    }

    fn label(&self) -> String {
        let cols: Vec<String> = self
            .exprs
            .iter()
            .map(|(e, a)| format!("{e} AS {a}"))
            .collect();
        format!("ProjectExec: {}", cols.join(", "))
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.input.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let b = self.input.execute(ctx)?;
        // One expression-evaluation pass per input row.
        ctx.metrics.add_comparisons(b.num_rows() as u64);
        self.project(&b)
    }

    fn open_chunks<'a>(&'a self, ctx: &mut ExecContext<'_>) -> Result<Box<dyn ChunkStream + 'a>> {
        ctx.budget.check()?;
        let id = ctx.metrics.enter(self.name(), self.label());
        let start = Instant::now();
        let child = match self.input.open_chunks(ctx) {
            Ok(c) => c,
            Err(e) => {
                ctx.metrics.exit(0, start.elapsed().as_nanos() as u64);
                return Err(e);
            }
        };
        // Output types are a pure function of expression + input schema, so
        // projecting a zero-row batch yields the stream's schema through the
        // exact code path every chunk takes.
        let schema = match self.project(&Batch::empty(child.schema())) {
            Ok(b) => b.schema().clone(),
            Err(e) => {
                let mut child = child;
                child.close(ctx);
                ctx.metrics.exit(0, start.elapsed().as_nanos() as u64);
                return Err(e);
            }
        };
        Ok(Box::new(ProjectStream {
            op: self,
            child,
            schema,
            id,
            rows_out: 0,
            nanos: start.elapsed().as_nanos() as u64,
        }))
    }
}

impl PhysicalProject {
    /// Evaluate the projection list over one batch (selection honored by
    /// [`Expr::evaluate`]; output is always flat).
    fn project(&self, b: &Batch) -> Result<Batch> {
        let mut cols = Vec::with_capacity(self.exprs.len());
        let mut fields = Vec::with_capacity(self.exprs.len());
        for (e, alias) in &self.exprs {
            let c = e.evaluate(b)?;
            fields.push(Field::from_flat_name(alias, c.data_type()));
            cols.push(c);
        }
        Batch::new(Arc::new(Schema::new(fields)), cols)
    }
}

/// Streaming projection: evaluates the expression list chunk by chunk.
struct ProjectStream<'a> {
    op: &'a PhysicalProject,
    child: Box<dyn ChunkStream + 'a>,
    schema: SchemaRef,
    id: FrameId,
    rows_out: u64,
    nanos: u64,
}

impl ChunkStream for ProjectStream<'_> {
    fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn next_chunk(&mut self, ctx: &mut ExecContext<'_>) -> Result<Option<Batch>> {
        ctx.budget.check()?;
        let start = Instant::now();
        let chunk = match self.child.next_chunk(ctx) {
            Ok(Some(c)) => c,
            Ok(None) => {
                self.nanos += start.elapsed().as_nanos() as u64;
                return Ok(None);
            }
            Err(e) => {
                self.nanos += start.elapsed().as_nanos() as u64;
                return Err(e);
            }
        };
        // One expression-evaluation pass per input row, as materialized.
        ctx.metrics
            .add_comparisons_to(self.id, chunk.num_rows() as u64);
        let out = match self.op.project(&chunk) {
            Ok(b) => b,
            Err(e) => {
                self.nanos += start.elapsed().as_nanos() as u64;
                return Err(e);
            }
        };
        ctx.metrics.record_chunk(self.id, 0);
        ctx.stats.batches_processed += 1;
        let rows = out.num_rows() as u64;
        self.rows_out += rows;
        ctx.rows_emitted += rows;
        self.nanos += start.elapsed().as_nanos() as u64;
        ctx.budget.check_rows(ctx.rows_emitted)?;
        Ok(Some(out))
    }

    fn close(&mut self, ctx: &mut ExecContext<'_>) {
        self.child.close(ctx);
        ctx.metrics.exit(self.rows_out, self.nanos);
    }
}
