//! Lowering: [`LogicalPlan`] → [`PhysicalOperator`] tree.
//!
//! This pass is where optimizer decisions become explicit physical
//! structure instead of runtime re-derivation:
//!
//! * **Index bounds** — for each scan with a pushed-down filter, the
//!   per-column range bounds and IN-lists implied by the predicate
//!   (including bounds shared by every OR branch, which is how the paper's
//!   §5.2 relaxed expanded condition becomes index-usable) are derived here
//!   and stored on the [`PhysicalScan`] as [`IndexCandidate`]s. At runtime
//!   the scan only picks the most selective candidate on the actual table —
//!   a data-dependent choice, not a plan-level one.
//! * **Sort placement** — a `Window` whose `presorted` flag was set by the
//!   optimizer (order sharing) lowers to a bare [`PhysicalWindow`]; an
//!   unsorted one gets an explicit [`PhysicalSort`] on (partition keys,
//!   order keys) inserted in front. The physical window operator itself
//!   never sorts.

use super::aggregate::PhysicalAggregate;
use super::distinct::PhysicalDistinct;
use super::filter::PhysicalFilter;
use super::hash_join::PhysicalHashJoin;
use super::limit::PhysicalLimit;
use super::project::PhysicalProject;
use super::scan::{IndexCandidate, PhysicalScan};
use super::semi_join::PhysicalSemiJoin;
use super::sort::PhysicalSort;
use super::subquery_alias::PhysicalSubqueryAlias;
use super::union::PhysicalUnion;
use super::window::PhysicalWindow;
use super::PhysicalOperator;
use crate::error::Result;
use crate::expr::{split_conjuncts, Expr};
use crate::index::ScanBound;
use crate::join::JoinType;
use crate::plan::{window_sort_keys, LogicalPlan};
use crate::schema::Schema;
use crate::table::{Catalog, Table};
use crate::value::Value;

/// Lower a logical plan to an executable physical operator tree.
pub fn lower(plan: &LogicalPlan, catalog: &Catalog) -> Result<Box<dyn PhysicalOperator>> {
    Ok(match plan {
        LogicalPlan::Scan {
            table,
            alias,
            filter,
        } => {
            let t = catalog.get(table)?;
            let candidates = match filter {
                Some(f) => {
                    // The scan's output schema (possibly requalified by the
                    // alias) is what the filter's column references resolve
                    // against; it is positionally identical to the table.
                    let scan_schema = match alias {
                        Some(a) => t.schema().with_qualifier(a),
                        None => t.schema().as_ref().clone(),
                    };
                    derive_index_candidates(&t, &scan_schema, f)
                }
                None => Vec::new(),
            };
            Box::new(PhysicalScan {
                table: table.clone(),
                alias: alias.clone(),
                filter: filter.clone(),
                candidates,
            })
        }
        LogicalPlan::Filter { input, predicate } => Box::new(PhysicalFilter {
            input: lower(input, catalog)?,
            predicate: predicate.clone(),
        }),
        LogicalPlan::Project { input, exprs } => Box::new(PhysicalProject {
            input: lower(input, catalog)?,
            exprs: exprs.clone(),
        }),
        LogicalPlan::Sort { input, keys } => Box::new(PhysicalSort {
            input: lower(input, catalog)?,
            keys: keys.clone(),
            run_hint_table: table_order_source(input),
        }),
        LogicalPlan::Window {
            input,
            partition_by,
            order_by,
            exprs,
            presorted,
        } => {
            let mut child = lower(input, catalog)?;
            if !presorted {
                // The optimizer did not find a shared order: make the sort
                // an explicit physical operator (same counter semantics as
                // a logical Sort node).
                child = Box::new(PhysicalSort {
                    input: child,
                    keys: window_sort_keys(partition_by, order_by),
                    run_hint_table: table_order_source(input),
                });
            }
            // RANGE frames need the single order key for binary searches.
            let order_key = if order_by.len() == 1 {
                Some(order_by[0].expr.clone())
            } else {
                None
            };
            Box::new(PhysicalWindow {
                input: child,
                partition_by: partition_by.clone(),
                order_key,
                exprs: exprs.clone(),
            })
        }
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
        } => {
            let l = lower(left, catalog)?;
            let r = lower(right, catalog)?;
            match join_type {
                JoinType::Inner => Box::new(PhysicalHashJoin {
                    left: l,
                    right: r,
                    left_keys: left_keys.clone(),
                    right_keys: right_keys.clone(),
                }),
                JoinType::LeftSemi => Box::new(PhysicalSemiJoin {
                    left: l,
                    right: r,
                    left_keys: left_keys.clone(),
                    right_keys: right_keys.clone(),
                }),
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => Box::new(PhysicalAggregate {
            input: lower(input, catalog)?,
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        }),
        LogicalPlan::Distinct { input } => Box::new(PhysicalDistinct {
            input: lower(input, catalog)?,
        }),
        LogicalPlan::Union { inputs } => Box::new(PhysicalUnion {
            inputs: inputs
                .iter()
                .map(|p| lower(p, catalog))
                .collect::<Result<_>>()?,
        }),
        LogicalPlan::Limit { input, fetch } => Box::new(PhysicalLimit {
            input: lower(input, catalog)?,
            fetch: *fetch,
        }),
        LogicalPlan::SubqueryAlias { input, alias } => Box::new(PhysicalSubqueryAlias {
            input: lower(input, catalog)?,
            alias: alias.clone(),
        }),
    })
}

/// The catalog table whose rows a sort placed directly above `input` would
/// receive *in table row order*, if any. Only an unfiltered scan qualifies:
/// a filtered scan may answer through an index (index order, not table
/// order), and any other operator reshapes or reorders rows. Used to attach
/// segment-metadata run hints to [`PhysicalSort`].
fn table_order_source(input: &LogicalPlan) -> Option<String> {
    match input {
        LogicalPlan::Scan {
            table,
            filter: None,
            ..
        } => Some(table.clone()),
        LogicalPlan::SubqueryAlias { input, .. } => table_order_source(input),
        _ => None,
    }
}

/// Range bounds accumulated for one column while deriving candidates.
#[derive(Default)]
struct ColBounds {
    lower: Option<(Value, bool)>, // (value, inclusive)
    upper: Option<(Value, bool)>,
    in_values: Option<Vec<Value>>,
}

impl ColBounds {
    fn tighten_lower(&mut self, v: Value, inclusive: bool) {
        let replace = match &self.lower {
            None => true,
            Some((cur, cur_inc)) => match v.total_cmp(cur) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => *cur_inc && !inclusive,
                std::cmp::Ordering::Less => false,
            },
        };
        if replace {
            self.lower = Some((v, inclusive));
        }
    }

    fn tighten_upper(&mut self, v: Value, inclusive: bool) {
        let replace = match &self.upper {
            None => true,
            Some((cur, cur_inc)) => match v.total_cmp(cur) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => *cur_inc && !inclusive,
                std::cmp::Ordering::Greater => false,
            },
        };
        if replace {
            self.upper = Some((v, inclusive));
        }
    }

    fn lower_bound(&self) -> ScanBound {
        match &self.lower {
            None => ScanBound::Unbounded,
            Some((v, true)) => ScanBound::Inclusive(v.clone()),
            Some((v, false)) => ScanBound::Exclusive(v.clone()),
        }
    }

    fn upper_bound(&self) -> ScanBound {
        match &self.upper {
            None => ScanBound::Unbounded,
            Some((v, true)) => ScanBound::Inclusive(v.clone()),
            Some((v, false)) => ScanBound::Exclusive(v.clone()),
        }
    }
}

/// Derive the per-column index-access candidates implied by `filter`:
/// range bounds from the whole predicate (including bounds every OR branch
/// shares) plus positive IN-lists. Candidates are ordered by column
/// position for deterministic tie-breaking at runtime.
fn derive_index_candidates(
    table: &Table,
    scan_schema: &Schema,
    filter: &Expr,
) -> Vec<IndexCandidate> {
    use std::collections::HashMap;
    let mut bounds: HashMap<usize, ColBounds> = HashMap::new();
    for (ci, interval) in crate::constraint::implied_bounds_resolved(filter, scan_schema) {
        let b = bounds.entry(ci).or_default();
        if let Some(l) = &interval.lower {
            b.tighten_lower(l.value.clone(), l.inclusive);
        }
        if let Some(u) = &interval.upper {
            b.tighten_upper(u.value.clone(), u.inclusive);
        }
    }
    for conj in split_conjuncts(filter) {
        if let Expr::InList {
            expr,
            list,
            negated: false,
        } = &conj
        {
            if let Expr::Column(c) = expr.as_ref() {
                if let Ok(ci) = scan_schema.index_of(c.qualifier.as_deref(), &c.name) {
                    bounds.entry(ci).or_default().in_values = Some(list.clone());
                }
            }
        } else if let Expr::InSet {
            expr,
            set,
            negated: false,
            ..
        } = &conj
        {
            if let Expr::Column(c) = expr.as_ref() {
                if let Ok(ci) = scan_schema.index_of(c.qualifier.as_deref(), &c.name) {
                    bounds.entry(ci).or_default().in_values = Some(set.iter().cloned().collect());
                }
            }
        }
    }

    let mut candidates: Vec<(usize, IndexCandidate)> = bounds
        .into_iter()
        .filter(|(_, b)| b.in_values.is_some() || b.lower.is_some() || b.upper.is_some())
        .map(|(ci, b)| {
            // Scan schema is positionally identical to the table schema.
            let column = table.schema().field(ci).name.clone();
            (
                ci,
                IndexCandidate {
                    column,
                    lower: b.lower_bound(),
                    upper: b.upper_bound(),
                    in_values: b.in_values,
                },
            )
        })
        .collect();
    candidates.sort_by_key(|(ci, _)| *ci);
    candidates.into_iter().map(|(_, c)| c).collect()
}
