//! Left semi join — keeps left rows with at least one right match (the
//! shape joinback (q_j) rewrites use to re-fetch surviving base rows).

use super::{ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;
use crate::expr::Expr;
use crate::join::{hash_join_with, JoinType};

#[derive(Debug)]
pub struct PhysicalSemiJoin {
    pub left: Box<dyn PhysicalOperator>,
    pub right: Box<dyn PhysicalOperator>,
    pub left_keys: Vec<Expr>,
    pub right_keys: Vec<Expr>,
}

impl PhysicalOperator for PhysicalSemiJoin {
    fn name(&self) -> &'static str {
        "SemiJoinExec"
    }

    fn label(&self) -> String {
        let pairs: Vec<String> = self
            .left_keys
            .iter()
            .zip(&self.right_keys)
            .map(|(l, r)| format!("{l} = {r}"))
            .collect();
        format!("SemiJoinExec: on [{}]", pairs.join(", "))
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        vec![self.left.as_ref(), self.right.as_ref()]
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let l = super::collect_input(self.left.as_ref(), ctx)?;
        let r = super::collect_input(self.right.as_ref(), ctx)?;
        let (out, work) = hash_join_with(
            &l,
            &r,
            &self.left_keys,
            &self.right_keys,
            JoinType::LeftSemi,
            &ctx.budget,
            ctx.options.rowwise_hash,
        )?;
        ctx.stats.join_probes += work.probes;
        ctx.stats.add_hash(&work.hash);
        ctx.metrics.add_comparisons(work.probes);
        ctx.metrics.add_hash(&work.hash);
        Ok(out)
    }
}
