//! Bag UNION ALL of same-shape inputs (qualifiers are dropped, as in SQL).

use super::{ExecContext, PhysicalOperator};
use crate::batch::Batch;
use crate::error::Result;
use std::sync::Arc;

#[derive(Debug)]
pub struct PhysicalUnion {
    pub inputs: Vec<Box<dyn PhysicalOperator>>,
}

impl PhysicalOperator for PhysicalUnion {
    fn name(&self) -> &'static str {
        "UnionExec"
    }

    fn children(&self) -> Vec<&dyn PhysicalOperator> {
        self.inputs.iter().map(|b| b.as_ref()).collect()
    }

    fn execute_op(&self, ctx: &mut ExecContext<'_>) -> Result<Batch> {
        let batches: Vec<Batch> = self
            .inputs
            .iter()
            .map(|p| super::collect_input(p.as_ref(), ctx))
            .collect::<Result<_>>()?;
        let out = Batch::concat(&batches)?;
        // UNION output columns lose their source qualifiers.
        let schema = Arc::new(out.schema().unqualified());
        out.with_schema(schema)
    }
}
