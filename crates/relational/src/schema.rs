//! Schemas: ordered collections of named, typed fields.
//!
//! Column resolution supports both bare names (`rtime`) and qualified names
//! (`c.rtime`). A field stores its bare name plus an optional qualifier (a
//! table name or alias); unqualified lookups match the bare name and are
//! ambiguous if more than one field shares it.

use crate::error::{Error, Result};
use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// A single column descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Optional qualifier (table name or alias), lowercase.
    pub qualifier: Option<String>,
    /// Bare column name, lowercase.
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            qualifier: None,
            name: name.into().to_ascii_lowercase(),
            data_type,
        }
    }

    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Self {
        Field {
            qualifier: Some(qualifier.into().to_ascii_lowercase()),
            name: name.into().to_ascii_lowercase(),
            data_type,
        }
    }

    /// Re-qualify this field (used when a table is aliased in a query).
    pub fn with_qualifier(mut self, qualifier: impl Into<String>) -> Self {
        self.qualifier = Some(qualifier.into().to_ascii_lowercase());
        self
    }

    /// Build a field from a flat name: `"c.epc"` becomes qualifier `c`,
    /// name `epc`; a bare name stays unqualified. Lets projections emit
    /// qualified output columns.
    pub fn from_flat_name(flat: &str, data_type: DataType) -> Self {
        match flat.split_once('.') {
            Some((q, n)) => Field::qualified(q, n, data_type),
            None => Field::new(flat, data_type),
        }
    }

    /// Does `name` (optionally qualified) refer to this field?
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|fq| fq.eq_ignore_ascii_case(q)),
        }
    }

    /// `qualifier.name` or bare `name`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.qualified_name(), self.data_type)
    }
}

/// An ordered list of fields. Cheap to clone (`Arc` inside `SchemaRef`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    pub fn empty() -> Self {
        Schema { fields: vec![] }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Resolve a possibly-qualified column name to its index.
    ///
    /// Unqualified names are ambiguous if they match several fields; qualified
    /// names must match exactly one.
    pub fn index_of(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(qualifier, name) {
                if found.is_some() {
                    return Err(Error::Plan(format!(
                        "ambiguous column reference '{}{}'",
                        qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
                        name
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            Error::Plan(format!(
                "no such column '{}{}' in schema [{}]",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
                name,
                self
            ))
        })
    }

    /// Parse `a.b` / `b` and resolve.
    pub fn index_of_name(&self, name: &str) -> Result<usize> {
        match name.split_once('.') {
            Some((q, n)) => self.index_of(Some(q), n),
            None => self.index_of(None, name),
        }
    }

    /// Concatenate two schemas (for joins).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// A copy of this schema with every field re-qualified.
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| f.clone().with_qualifier(qualifier))
                .collect(),
        }
    }

    /// A copy with all qualifiers stripped (e.g. output of a derived table).
    pub fn unqualified(&self) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field::new(f.name.clone(), f.data_type))
                .collect(),
        }
    }

    /// True if both schemas have the same types in the same positions
    /// (names may differ) — the requirement for UNION inputs.
    pub fn types_compatible(&self, other: &Schema) -> bool {
        self.len() == other.len()
            && self
                .fields
                .iter()
                .zip(other.fields.iter())
                .all(|(a, b)| a.data_type == b.data_type)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for field in &self.fields {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("c", "epc", DataType::Str),
            Field::qualified("c", "rtime", DataType::Int),
            Field::qualified("l", "gln", DataType::Str),
        ])
    }

    #[test]
    fn unqualified_lookup() {
        let s = schema();
        assert_eq!(s.index_of(None, "rtime").unwrap(), 1);
        assert_eq!(s.index_of_name("gln").unwrap(), 2);
    }

    #[test]
    fn qualified_lookup() {
        let s = schema();
        assert_eq!(s.index_of(Some("c"), "epc").unwrap(), 0);
        assert_eq!(s.index_of_name("l.gln").unwrap(), 2);
        assert!(s.index_of(Some("l"), "epc").is_err());
    }

    #[test]
    fn ambiguity_detected() {
        let s = Schema::new(vec![
            Field::qualified("a", "x", DataType::Int),
            Field::qualified("b", "x", DataType::Int),
        ]);
        assert!(s.index_of(None, "x").is_err());
        assert_eq!(s.index_of(Some("b"), "x").unwrap(), 1);
    }

    #[test]
    fn case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of(Some("C"), "EPC").unwrap(), 0);
    }

    #[test]
    fn join_concatenates() {
        let s = schema();
        let j = s.join(&Schema::new(vec![Field::new("y", DataType::Bool)]));
        assert_eq!(j.len(), 4);
        assert_eq!(j.index_of_name("y").unwrap(), 3);
    }

    #[test]
    fn union_type_compat() {
        let a = Schema::new(vec![Field::new("x", DataType::Int)]);
        let b = Schema::new(vec![Field::new("z", DataType::Int)]);
        let c = Schema::new(vec![Field::new("z", DataType::Str)]);
        assert!(a.types_compatible(&b));
        assert!(!a.types_compatible(&c));
    }
}
