//! `Batch`: a relation fragment — a schema plus equal-length columns.
//!
//! Columns are Arc-backed windows, so cloning and slicing a batch is O(1).
//! A batch may additionally carry a **selection vector**: a list of
//! surviving physical row indices produced by a filter. Selection lets a
//! filter mark survivors without gathering any column data; the logical row
//! count (`num_rows`) and row accessors see only the selected rows.
//! `flatten` compacts a selected batch back to a dense one; operators that
//! index columns physically must flatten (or consume `selection()`) first.

use crate::column::{Column, ColumnBuilder};
use crate::error::{Error, Result};
use crate::schema::{Schema, SchemaRef};
use crate::value::Value;
use std::sync::Arc;

/// A table fragment: one column per schema field, all the same physical
/// length, with an optional selection vector choosing a subset of rows.
/// Operators consume and produce batches.
#[derive(Debug, Clone)]
pub struct Batch {
    schema: SchemaRef,
    columns: Vec<Column>,
    /// Physical rows in each column.
    rows: usize,
    /// When present: logical row `k` is physical row `selection[k]`.
    selection: Option<Arc<Vec<u32>>>,
}

impl Batch {
    pub fn new(schema: SchemaRef, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(Error::Schema(format!(
                "schema has {} fields but {} columns supplied",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, Column::len);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(Error::Schema(format!(
                    "column {i} ('{}') has {} rows, expected {rows}",
                    schema.field(i).name,
                    c.len()
                )));
            }
            if c.data_type() != schema.field(i).data_type {
                return Err(Error::Schema(format!(
                    "column {i} ('{}') has type {} but schema says {}",
                    schema.field(i).name,
                    c.data_type(),
                    schema.field(i).data_type
                )));
            }
        }
        Ok(Batch {
            schema,
            columns,
            rows,
            selection: None,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type, 0).finish())
            .collect();
        Batch {
            schema,
            columns,
            rows: 0,
            selection: None,
        }
    }

    /// Build a batch from rows of scalar values (test/generator convenience).
    pub fn from_rows(schema: SchemaRef, rows: &[Vec<Value>]) -> Result<Self> {
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type, rows.len()))
            .collect();
        for (rn, row) in rows.iter().enumerate() {
            if row.len() != schema.len() {
                return Err(Error::Schema(format!(
                    "row {rn} has {} values, schema has {} fields",
                    row.len(),
                    schema.len()
                )));
            }
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v)?;
            }
        }
        Batch::new(
            schema,
            builders.into_iter().map(ColumnBuilder::finish).collect(),
        )
    }

    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Logical rows: the selection length when one is present, otherwise the
    /// physical column length.
    pub fn num_rows(&self) -> usize {
        match &self.selection {
            Some(sel) => sel.len(),
            None => self.rows,
        }
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Column `i` — **physical** rows. When a selection vector is present the
    /// column still holds every pre-filter row; map logical indices through
    /// `selection()` or `flatten()` first.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by (possibly qualified) name. Physical rows — see [`Batch::column`].
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of_name(name)?])
    }

    /// The selection vector, if this batch carries one.
    pub fn selection(&self) -> Option<&[u32]> {
        self.selection.as_deref().map(Vec::as_slice)
    }

    /// True when there is no selection vector (logical rows == physical rows).
    pub fn is_flat(&self) -> bool {
        self.selection.is_none()
    }

    /// Attach a selection vector over this batch's physical rows without
    /// copying any column data. Indices must be in-bounds and, when composing
    /// with an existing selection, must already be resolved to physical rows.
    pub fn with_selection(&self, selection: Vec<u32>) -> Batch {
        debug_assert!(selection.iter().all(|&i| (i as usize) < self.rows));
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.clone(),
            rows: self.rows,
            selection: Some(Arc::new(selection)),
        }
    }

    /// Compact to a dense batch: gathers the selected rows once. A flat
    /// batch returns an O(1) clone.
    pub fn flatten(&self) -> Batch {
        match &self.selection {
            None => self.clone(),
            Some(sel) => {
                let indices: Vec<usize> = sel.iter().map(|&i| i as usize).collect();
                Batch {
                    schema: self.schema.clone(),
                    columns: self.columns.iter().map(|c| c.take(&indices)).collect(),
                    rows: indices.len(),
                    selection: None,
                }
            }
        }
    }

    /// Zero-copy chunk view: logical rows `[offset, offset + len)`. O(1) for
    /// flat batches (column windows are shared); for a selected batch only
    /// the selection subrange is copied, never column data — the slice of a
    /// selected batch *is* the slice of its selection, so logical row `i`
    /// of the result equals logical row `offset + i` of the input.
    ///
    /// Panics when the window falls outside the logical row range; use
    /// [`Batch::try_slice`] for a recoverable, field-named error.
    pub fn slice(&self, offset: usize, len: usize) -> Batch {
        self.try_slice(offset, len)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`Batch::slice`]: `Err` names the offending fields
    /// (`offset`, `len`, logical `rows`, selection length) instead of
    /// panicking, so operator code can surface a typed error.
    pub fn try_slice(&self, offset: usize, len: usize) -> Result<Batch> {
        let end = offset.checked_add(len).ok_or_else(|| {
            Error::Execution(format!(
                "slice: offset={offset} + len={len} overflows usize"
            ))
        })?;
        if end > self.num_rows() {
            return Err(Error::Execution(format!(
                "slice: window [offset={offset}, offset+len={end}) out of bounds for \
                 batch with rows={}{}",
                self.num_rows(),
                match &self.selection {
                    Some(sel) => format!(" (selection of {} entries)", sel.len()),
                    None => String::new(),
                }
            )));
        }
        Ok(match &self.selection {
            None => Batch {
                schema: self.schema.clone(),
                columns: self.columns.iter().map(|c| c.slice(offset, len)).collect(),
                rows: len,
                selection: None,
            },
            Some(sel) => Batch {
                schema: self.schema.clone(),
                columns: self.columns.clone(),
                rows: self.rows,
                selection: Some(Arc::new(sel[offset..end].to_vec())),
            },
        })
    }

    /// Row `i` (logical) as scalar values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        let phys = match &self.selection {
            Some(sel) => sel[i] as usize,
            None => i,
        };
        self.columns.iter().map(|c| c.value(phys)).collect()
    }

    /// Gather logical rows by index into a new (flat) batch.
    pub fn take(&self, indices: &[usize]) -> Batch {
        let phys: Vec<usize> = match &self.selection {
            Some(sel) => indices.iter().map(|&i| sel[i] as usize).collect(),
            None => indices.to_vec(),
        };
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(&phys)).collect(),
            rows: phys.len(),
            selection: None,
        }
    }

    /// Replace the schema (must have identical types) — used to re-qualify
    /// fields when a table is aliased. Preserves any selection vector.
    pub fn with_schema(&self, schema: SchemaRef) -> Result<Batch> {
        if !self.schema.types_compatible(&schema) {
            return Err(Error::Schema(format!(
                "cannot rebrand batch [{}] as [{}]",
                self.schema, schema
            )));
        }
        Ok(Batch {
            schema,
            columns: self.columns.clone(),
            rows: self.rows,
            selection: self.selection.clone(),
        })
    }

    /// Vertically concatenate batches with type-compatible schemas; the
    /// first batch's schema is kept. Selected batches are compacted first.
    pub fn concat(parts: &[Batch]) -> Result<Batch> {
        let Some(first) = parts.first() else {
            return Err(Error::Internal("concat of zero batches".into()));
        };
        for p in parts {
            if !p.schema.types_compatible(&first.schema) {
                return Err(Error::Schema(format!(
                    "union schema mismatch: [{}] vs [{}]",
                    p.schema, first.schema
                )));
            }
        }
        let flats: Vec<Batch> = parts.iter().map(Batch::flatten).collect();
        let mut columns = Vec::with_capacity(first.num_columns());
        for ci in 0..first.num_columns() {
            let cols: Vec<&Column> = flats.iter().map(|p| p.column(ci)).collect();
            columns.push(Column::concat(&cols)?);
        }
        let rows = flats.iter().map(Batch::num_rows).sum();
        Ok(Batch {
            schema: first.schema.clone(),
            columns,
            rows,
            selection: None,
        })
    }

    /// All rows as vectors of values, sorted with `Value::total_cmp` —
    /// the canonical multiset form used to compare query results in tests.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = (0..self.num_rows()).map(|i| self.row(i)).collect();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let o = x.total_cmp(y);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }

    /// Render as an ASCII table (for examples and the repro binary).
    pub fn to_pretty_string(&self, max_rows: usize) -> String {
        use std::fmt::Write;
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.qualified_name())
            .collect();
        let total = self.num_rows();
        let shown = total.min(max_rows);
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for r in 0..shown {
            let row: Vec<String> = self.row(r).iter().map(Value::to_string).collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            let _ = write!(out, " {h:w$} |");
        }
        out.push('\n');
        sep(&mut out);
        for row in &cells {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(out, " {cell:w$} |");
            }
            out.push('\n');
        }
        sep(&mut out);
        if total > shown {
            let _ = writeln!(out, "... {} more rows", total - shown);
        }
        out
    }
}

/// Shared convenience: wrap a schema into a ref.
pub fn schema_ref(schema: Schema) -> SchemaRef {
    Arc::new(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn sample() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("e1"), Value::Int(10)],
                vec![Value::str("e2"), Value::Int(20)],
                vec![Value::str("e1"), Value::Int(30)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks_lengths_and_types() {
        let schema = schema_ref(Schema::new(vec![Field::new("a", DataType::Int)]));
        let wrong = Column::from_values(DataType::Str, &[Value::str("x")]).unwrap();
        let err = Batch::new(schema, vec![wrong]).unwrap_err().to_string();
        assert!(err.contains("'a'"), "type error names the field: {err}");
    }

    #[test]
    fn length_mismatch_error_names_the_field() {
        let schema = schema_ref(Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]));
        let c0 = Column::from_values(DataType::Int, &[Value::Int(1), Value::Int(2)]).unwrap();
        let c1 = Column::from_values(DataType::Int, &[Value::Int(1)]).unwrap();
        let err = Batch::new(schema, vec![c0, c1]).unwrap_err().to_string();
        assert!(err.contains("'b'"), "length error names the field: {err}");
        assert!(err.contains("expected 2"), "{err}");
    }

    #[test]
    fn row_access() {
        let b = sample();
        assert_eq!(b.row(1), vec![Value::str("e2"), Value::Int(20)]);
        assert_eq!(b.column_by_name("rtime").unwrap().int_at(2), Some(30));
    }

    #[test]
    fn take_rows() {
        let b = sample().take(&[2, 0]);
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.row(0), vec![Value::str("e1"), Value::Int(30)]);
    }

    #[test]
    fn concat_batches() {
        let b = sample();
        let c = Batch::concat(&[b.clone(), b]).unwrap();
        assert_eq!(c.num_rows(), 6);
    }

    #[test]
    fn sorted_rows_is_canonical() {
        let a = sample();
        let b = a.take(&[2, 1, 0]);
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn pretty_print_smoke() {
        let s = sample().to_pretty_string(2);
        assert!(s.contains("epc"));
        assert!(s.contains("1 more rows"));
    }

    #[test]
    fn selection_changes_logical_view_without_copying() {
        let b = sample().with_selection(vec![2, 0]);
        assert_eq!(b.num_rows(), 2);
        assert!(!b.is_flat());
        assert_eq!(b.row(0), vec![Value::str("e1"), Value::Int(30)]);
        assert_eq!(b.row(1), vec![Value::str("e1"), Value::Int(10)]);
        // Physical columns still hold all three rows.
        assert_eq!(b.column(0).len(), 3);
        // flatten() compacts to a dense batch with the same logical rows.
        let flat = b.flatten();
        assert!(flat.is_flat());
        assert_eq!(flat.num_rows(), 2);
        assert_eq!(flat.sorted_rows(), b.sorted_rows());
        // take() through a selection resolves logical indices.
        let t = b.take(&[1]);
        assert_eq!(t.row(0), vec![Value::str("e1"), Value::Int(10)]);
    }

    #[test]
    fn slice_of_flat_batch_shares_columns() {
        let b = sample();
        let s = b.slice(1, 2);
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.row(0), vec![Value::str("e2"), Value::Int(20)]);
        assert_eq!(s.row(1), vec![Value::str("e1"), Value::Int(30)]);
        // A slice of a slice stays consistent.
        let s2 = s.slice(1, 1);
        assert_eq!(s2.row(0), vec![Value::str("e1"), Value::Int(30)]);
    }

    #[test]
    fn slice_of_selected_batch_slices_the_selection() {
        let b = sample().with_selection(vec![2, 1, 0]);
        let s = b.slice(1, 2);
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.row(0), vec![Value::str("e2"), Value::Int(20)]);
        assert_eq!(s.row(1), vec![Value::str("e1"), Value::Int(10)]);
    }

    #[test]
    fn concat_compacts_selections() {
        let a = sample().with_selection(vec![0]);
        let b = sample().with_selection(vec![2]);
        let c = Batch::concat(&[a, b]).unwrap();
        assert!(c.is_flat());
        assert_eq!(c.num_rows(), 2);
        assert_eq!(c.row(1), vec![Value::str("e1"), Value::Int(30)]);
    }
}
