//! `Batch`: a fully materialized relation — a schema plus equal-length columns.

use crate::column::{Column, ColumnBuilder};
use crate::error::{Error, Result};
use crate::schema::{Schema, SchemaRef};
use crate::value::Value;
use std::sync::Arc;

/// A materialized table fragment: one column per schema field, all the same
/// length. Operators consume and produce batches.
#[derive(Debug, Clone)]
pub struct Batch {
    schema: SchemaRef,
    columns: Vec<Column>,
    rows: usize,
}

impl Batch {
    pub fn new(schema: SchemaRef, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(Error::Schema(format!(
                "schema has {} fields but {} columns supplied",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, Column::len);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(Error::Schema(format!(
                    "column {i} has {} rows, expected {rows}",
                    c.len()
                )));
            }
            if c.data_type() != schema.field(i).data_type {
                return Err(Error::Schema(format!(
                    "column {i} ('{}') has type {} but schema says {}",
                    schema.field(i).name,
                    c.data_type(),
                    schema.field(i).data_type
                )));
            }
        }
        Ok(Batch {
            schema,
            columns,
            rows,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type, 0).finish())
            .collect();
        Batch {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Build a batch from rows of scalar values (test/generator convenience).
    pub fn from_rows(schema: SchemaRef, rows: &[Vec<Value>]) -> Result<Self> {
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type, rows.len()))
            .collect();
        for (rn, row) in rows.iter().enumerate() {
            if row.len() != schema.len() {
                return Err(Error::Schema(format!(
                    "row {rn} has {} values, schema has {} fields",
                    row.len(),
                    schema.len()
                )));
            }
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v)?;
            }
        }
        Batch::new(
            schema,
            builders.into_iter().map(ColumnBuilder::finish).collect(),
        )
    }

    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by (possibly qualified) name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of_name(name)?])
    }

    /// Row `i` as scalar values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Gather rows by index into a new batch.
    pub fn take(&self, indices: &[usize]) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// Replace the schema (must have identical types) — used to re-qualify
    /// fields when a table is aliased.
    pub fn with_schema(&self, schema: SchemaRef) -> Result<Batch> {
        if !self.schema.types_compatible(&schema) {
            return Err(Error::Schema(format!(
                "cannot rebrand batch [{}] as [{}]",
                self.schema, schema
            )));
        }
        Ok(Batch {
            schema,
            columns: self.columns.clone(),
            rows: self.rows,
        })
    }

    /// Vertically concatenate batches with type-compatible schemas; the
    /// first batch's schema is kept.
    pub fn concat(parts: &[Batch]) -> Result<Batch> {
        let Some(first) = parts.first() else {
            return Err(Error::Internal("concat of zero batches".into()));
        };
        for p in parts {
            if !p.schema.types_compatible(&first.schema) {
                return Err(Error::Schema(format!(
                    "union schema mismatch: [{}] vs [{}]",
                    p.schema, first.schema
                )));
            }
        }
        let mut columns = Vec::with_capacity(first.num_columns());
        for ci in 0..first.num_columns() {
            let cols: Vec<&Column> = parts.iter().map(|p| p.column(ci)).collect();
            columns.push(Column::concat(&cols)?);
        }
        let rows = parts.iter().map(Batch::num_rows).sum();
        Ok(Batch {
            schema: first.schema.clone(),
            columns,
            rows,
        })
    }

    /// All rows as vectors of values, sorted with `Value::total_cmp` —
    /// the canonical multiset form used to compare query results in tests.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = (0..self.rows).map(|i| self.row(i)).collect();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let o = x.total_cmp(y);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }

    /// Render as an ASCII table (for examples and the repro binary).
    pub fn to_pretty_string(&self, max_rows: usize) -> String {
        use std::fmt::Write;
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.qualified_name())
            .collect();
        let shown = self.rows.min(max_rows);
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for r in 0..shown {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|c| c.value(r).to_string())
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            let _ = write!(out, " {h:w$} |");
        }
        out.push('\n');
        sep(&mut out);
        for row in &cells {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(out, " {cell:w$} |");
            }
            out.push('\n');
        }
        sep(&mut out);
        if self.rows > shown {
            let _ = writeln!(out, "... {} more rows", self.rows - shown);
        }
        out
    }
}

/// Shared convenience: wrap a schema into a ref.
pub fn schema_ref(schema: Schema) -> SchemaRef {
    Arc::new(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn sample() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("e1"), Value::Int(10)],
                vec![Value::str("e2"), Value::Int(20)],
                vec![Value::str("e1"), Value::Int(30)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks_lengths_and_types() {
        let schema = schema_ref(Schema::new(vec![Field::new("a", DataType::Int)]));
        let wrong = Column::from_values(DataType::Str, &[Value::str("x")]).unwrap();
        assert!(Batch::new(schema, vec![wrong]).is_err());
    }

    #[test]
    fn row_access() {
        let b = sample();
        assert_eq!(b.row(1), vec![Value::str("e2"), Value::Int(20)]);
        assert_eq!(b.column_by_name("rtime").unwrap().int_at(2), Some(30));
    }

    #[test]
    fn take_rows() {
        let b = sample().take(&[2, 0]);
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.row(0), vec![Value::str("e1"), Value::Int(30)]);
    }

    #[test]
    fn concat_batches() {
        let b = sample();
        let c = Batch::concat(&[b.clone(), b]).unwrap();
        assert_eq!(c.num_rows(), 6);
    }

    #[test]
    fn sorted_rows_is_canonical() {
        let a = sample();
        let b = a.take(&[2, 1, 0]);
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn pretty_print_smoke() {
        let s = sample().to_pretty_string(2);
        assert!(s.contains("epc"));
        assert!(s.contains("1 more rows"));
    }
}
