//! Hash joins: inner and left-semi.
//!
//! The paper's workloads join the reads table with *n-to-1 reference tables*
//! (locations, steps, products) and use semi-joins to restrict the set of
//! EPC sequences before cleansing (join-back rewrite, §5.3). NULL keys never
//! match, per SQL semantics.

use crate::batch::Batch;
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Supported join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner equi-join; output schema is `left ++ right`.
    Inner,
    /// Left semi-join: left rows with at least one right match; left schema.
    LeftSemi,
}

impl std::fmt::Display for JoinType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinType::Inner => f.write_str("INNER"),
            JoinType::LeftSemi => f.write_str("LEFT SEMI"),
        }
    }
}

/// Evaluate key expressions into per-row key tuples; `None` if any key part
/// is NULL (such rows never join).
fn key_rows(batch: &Batch, keys: &[Expr]) -> Result<Vec<Option<Vec<Value>>>> {
    let cols: Vec<_> = keys
        .iter()
        .map(|k| k.evaluate(batch))
        .collect::<Result<Vec<_>>>()?;
    let n = batch.num_rows();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if cols.iter().any(|c| c.is_null(i)) {
            out.push(None);
        } else {
            out.push(Some(cols.iter().map(|c| c.value(i)).collect()));
        }
    }
    Ok(out)
}

/// Hash join two batches on equi-key expressions.
///
/// The hash table is always built on the right input (the caller puts the
/// smaller/reference side on the right, as the planner does for dimension
/// tables). Returns the joined batch and the number of probe comparisons,
/// which the executor accumulates as a work counter.
pub fn hash_join(
    left: &Batch,
    right: &Batch,
    left_keys: &[Expr],
    right_keys: &[Expr],
    join_type: JoinType,
) -> Result<(Batch, u64)> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(Error::Plan(format!(
            "join requires matching non-empty key lists, got {} and {}",
            left_keys.len(),
            right_keys.len()
        )));
    }
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, key) in key_rows(right, right_keys)?.into_iter().enumerate() {
        if let Some(k) = key {
            table.entry(k).or_default().push(i);
        }
    }

    let left_keys_eval = key_rows(left, left_keys)?;
    let mut probes: u64 = 0;
    match join_type {
        JoinType::Inner => {
            let mut li = Vec::new();
            let mut ri = Vec::new();
            for (i, key) in left_keys_eval.into_iter().enumerate() {
                probes += 1;
                let Some(k) = key else { continue };
                if let Some(matches) = table.get(&k) {
                    for &m in matches {
                        li.push(i);
                        ri.push(m);
                    }
                }
            }
            let lt = left.take(&li);
            let rt = right.take(&ri);
            let schema = Arc::new(lt.schema().join(rt.schema()));
            let mut cols = lt.columns().to_vec();
            cols.extend(rt.columns().iter().cloned());
            Ok((Batch::new(schema, cols)?, probes))
        }
        JoinType::LeftSemi => {
            let mut li = Vec::new();
            for (i, key) in left_keys_eval.into_iter().enumerate() {
                probes += 1;
                let Some(k) = key else { continue };
                if table.contains_key(&k) {
                    li.push(i);
                }
            }
            Ok((left.take(&li), probes))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn reads() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::qualified("c", "epc", DataType::Str),
            Field::qualified("c", "biz_loc", DataType::Str),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("e1"), Value::str("l1")],
                vec![Value::str("e2"), Value::str("l2")],
                vec![Value::str("e3"), Value::Null],
                vec![Value::str("e4"), Value::str("l1")],
            ],
        )
        .unwrap()
    }

    fn locs() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::qualified("l", "gln", DataType::Str),
            Field::qualified("l", "site", DataType::Str),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("l1"), Value::str("dc1")],
                vec![Value::str("l3"), Value::str("dc2")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn inner_join_basics() {
        let (out, _) = hash_join(
            &reads(),
            &locs(),
            &[Expr::col("c.biz_loc")],
            &[Expr::col("l.gln")],
            JoinType::Inner,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.num_columns(), 4);
        let epcs: Vec<Value> = (0..2).map(|i| out.row(i)[0].clone()).collect();
        assert_eq!(epcs, vec![Value::str("e1"), Value::str("e4")]);
        assert_eq!(
            out.column_by_name("l.site").unwrap().value(0),
            Value::str("dc1")
        );
    }

    #[test]
    fn null_keys_never_match() {
        // e3 has NULL biz_loc; even a NULL on the right must not match it.
        let schema = schema_ref(Schema::new(vec![Field::new("gln", DataType::Str)]));
        let right = Batch::from_rows(schema, &[vec![Value::Null]]).unwrap();
        let (out, _) = hash_join(
            &reads(),
            &right,
            &[Expr::col("c.biz_loc")],
            &[Expr::col("gln")],
            JoinType::Inner,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn semi_join_keeps_left_schema_and_dedupes() {
        // Duplicate right keys must not duplicate left rows.
        let schema = schema_ref(Schema::new(vec![Field::new("gln", DataType::Str)]));
        let right =
            Batch::from_rows(schema, &[vec![Value::str("l1")], vec![Value::str("l1")]]).unwrap();
        let (out, _) = hash_join(
            &reads(),
            &right,
            &[Expr::col("c.biz_loc")],
            &[Expr::col("gln")],
            JoinType::LeftSemi,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.num_columns(), 2);
    }

    #[test]
    fn multi_key_join() {
        let schema = schema_ref(Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::Str),
        ]));
        let left = Batch::from_rows(
            schema.clone(),
            &[
                vec![Value::str("x"), Value::str("1")],
                vec![Value::str("x"), Value::str("2")],
            ],
        )
        .unwrap();
        let schema_r = schema_ref(Schema::new(vec![
            Field::new("c", DataType::Str),
            Field::new("d", DataType::Str),
        ]));
        let right = Batch::from_rows(schema_r, &[vec![Value::str("x"), Value::str("2")]]).unwrap();
        let (out, _) = hash_join(
            &left,
            &right,
            &[Expr::col("a"), Expr::col("b")],
            &[Expr::col("c"), Expr::col("d")],
            JoinType::Inner,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[1], Value::str("2"));
    }

    #[test]
    fn one_to_many_inner_multiplies() {
        let schema = schema_ref(Schema::new(vec![Field::new("gln", DataType::Str)]));
        let right =
            Batch::from_rows(schema, &[vec![Value::str("l1")], vec![Value::str("l1")]]).unwrap();
        let (out, _) = hash_join(
            &reads(),
            &right,
            &[Expr::col("c.biz_loc")],
            &[Expr::col("gln")],
            JoinType::Inner,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 4); // e1 x2, e4 x2
    }

    #[test]
    fn empty_key_list_rejected() {
        assert!(hash_join(&reads(), &locs(), &[], &[], JoinType::Inner).is_err());
    }
}
