//! Hash joins: inner and left-semi.
//!
//! The paper's workloads join the reads table with *n-to-1 reference tables*
//! (locations, steps, products) and use semi-joins to restrict the set of
//! EPC sequences before cleansing (join-back rewrite, §5.3). NULL keys never
//! match, per SQL semantics.

use crate::batch::Batch;
use crate::column::Column;
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::hash::{encode_keys, HashStats, NullKeys, RawKeyTable};
use crate::physical::QueryBudget;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Rows between cooperative budget checkpoints inside the build and probe
/// loops. Large joins must notice cancellation/deadlines promptly instead of
/// only at operator boundaries.
const BUDGET_CHECK_INTERVAL: usize = 1024;

/// Supported join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner equi-join; output schema is `left ++ right`.
    Inner,
    /// Left semi-join: left rows with at least one right match; left schema.
    LeftSemi,
}

impl std::fmt::Display for JoinType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinType::Inner => f.write_str("INNER"),
            JoinType::LeftSemi => f.write_str("LEFT SEMI"),
        }
    }
}

/// Evaluate key expressions into per-row key tuples; `None` if any key part
/// is NULL (such rows never join).
fn key_rows(batch: &Batch, keys: &[Expr]) -> Result<Vec<Option<Vec<Value>>>> {
    let cols: Vec<_> = keys
        .iter()
        .map(|k| k.evaluate(batch))
        .collect::<Result<Vec<_>>>()?;
    let n = batch.num_rows();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if cols.iter().any(|c| c.is_null(i)) {
            out.push(None);
        } else {
            out.push(Some(cols.iter().map(|c| c.value(i)).collect()));
        }
    }
    Ok(out)
}

/// Work performed by one hash join: probe count (the historical counter)
/// plus the hash-kernel counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinWork {
    /// One per left row, NULL-keyed rows included.
    pub probes: u64,
    pub hash: HashStats,
}

/// Hash join two batches on equi-key expressions.
///
/// The hash table is always built on the right input (the caller puts the
/// smaller/reference side on the right, as the planner does for dimension
/// tables). Returns the joined batch and the number of probe comparisons,
/// which the executor accumulates as a work counter.
///
/// Convenience wrapper over [`hash_join_with`]: unlimited budget, vectorized
/// hash path.
pub fn hash_join(
    left: &Batch,
    right: &Batch,
    left_keys: &[Expr],
    right_keys: &[Expr],
    join_type: JoinType,
) -> Result<(Batch, u64)> {
    let (batch, work) = hash_join_with(
        left,
        right,
        left_keys,
        right_keys,
        join_type,
        &QueryBudget::unlimited(),
        false,
    )?;
    Ok((batch, work.probes))
}

/// [`hash_join`] with a cooperative budget (checked every
/// `BUDGET_CHECK_INTERVAL` rows inside both the build and probe loops) and
/// an explicit path selector: `rowwise` runs the retained
/// `HashMap<Vec<Value>, _>` oracle the property suite compares against,
/// otherwise build and probe run on the vectorized kernels of
/// [`crate::hash`].
pub fn hash_join_with(
    left: &Batch,
    right: &Batch,
    left_keys: &[Expr],
    right_keys: &[Expr],
    join_type: JoinType,
    budget: &QueryBudget,
    rowwise: bool,
) -> Result<(Batch, JoinWork)> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(Error::Plan(format!(
            "join requires matching non-empty key lists, got {} and {}",
            left_keys.len(),
            right_keys.len()
        )));
    }
    if rowwise {
        hash_join_rowwise(left, right, left_keys, right_keys, join_type, budget)
    } else {
        hash_join_vectorized(left, right, left_keys, right_keys, join_type, budget)
    }
}

/// Assemble the inner-join output from gathered row indices.
fn emit_inner(left: &Batch, right: &Batch, li: &[usize], ri: &[usize]) -> Result<Batch> {
    let lt = left.take(li);
    let rt = right.take(ri);
    let schema = Arc::new(lt.schema().join(rt.schema()));
    let mut cols = lt.columns().to_vec();
    cols.extend(rt.columns().iter().cloned());
    Batch::new(schema, cols)
}

/// The vectorized path: normalized-key build table with CSR match lists
/// (per-key build rows stay in ascending order, matching the oracle's
/// insertion order), hash-first probe with memcmp only on candidate
/// collision.
fn hash_join_vectorized(
    left: &Batch,
    right: &Batch,
    left_keys: &[Expr],
    right_keys: &[Expr],
    join_type: JoinType,
    budget: &QueryBudget,
) -> Result<(Batch, JoinWork)> {
    let mut hash = HashStats::default();
    const NO_SLOT: u32 = u32::MAX;

    // Build side.
    let rcols: Vec<Column> = right_keys
        .iter()
        .map(|k| k.evaluate(right))
        .collect::<Result<_>>()?;
    let rn = right.num_rows();
    let rkeys = encode_keys(&rcols, None, rn, NullKeys::Never, &mut hash)?;
    let mut table = RawKeyTable::with_capacity(rn);
    let mut slot_of_row: Vec<u32> = Vec::with_capacity(rn);
    let mut counts: Vec<u32> = Vec::new();
    for i in 0..rn {
        if i % BUDGET_CHECK_INTERVAL == 0 {
            budget.check()?;
        }
        if !rkeys.is_joinable(i) {
            slot_of_row.push(NO_SLOT);
            continue;
        }
        let (slot, fresh) = table.insert(rkeys.hash(i), rkeys.key(i), &mut hash);
        if fresh {
            counts.push(0);
        }
        counts[slot] += 1;
        slot_of_row.push(slot as u32);
    }
    // CSR layout: slot -> build rows, ascending.
    let mut offsets = vec![0u32; counts.len() + 1];
    for s in 0..counts.len() {
        offsets[s + 1] = offsets[s] + counts[s];
    }
    let mut match_rows = vec![0u32; offsets[counts.len()] as usize];
    let mut cursor = offsets[..counts.len()].to_vec();
    for (i, &s) in slot_of_row.iter().enumerate() {
        if s != NO_SLOT {
            match_rows[cursor[s as usize] as usize] = i as u32;
            cursor[s as usize] += 1;
        }
    }

    // Probe side.
    let lcols: Vec<Column> = left_keys
        .iter()
        .map(|k| k.evaluate(left))
        .collect::<Result<_>>()?;
    let ln = left.num_rows();
    let lkeys = encode_keys(&lcols, None, ln, NullKeys::Never, &mut hash)?;
    let mut probes: u64 = 0;
    let batch = match join_type {
        JoinType::Inner => {
            let mut li = Vec::new();
            let mut ri = Vec::new();
            for i in 0..ln {
                if i % BUDGET_CHECK_INTERVAL == 0 {
                    budget.check()?;
                }
                probes += 1;
                if !lkeys.is_joinable(i) {
                    continue;
                }
                if let Some(slot) = table.get(lkeys.hash(i), lkeys.key(i), &mut hash) {
                    for &m in &match_rows[offsets[slot] as usize..offsets[slot + 1] as usize] {
                        li.push(i);
                        ri.push(m as usize);
                    }
                }
            }
            emit_inner(left, right, &li, &ri)?
        }
        JoinType::LeftSemi => {
            let mut li = Vec::new();
            for i in 0..ln {
                if i % BUDGET_CHECK_INTERVAL == 0 {
                    budget.check()?;
                }
                probes += 1;
                if !lkeys.is_joinable(i) {
                    continue;
                }
                if table.get(lkeys.hash(i), lkeys.key(i), &mut hash).is_some() {
                    li.push(i);
                }
            }
            left.take(&li)
        }
    };
    Ok((batch, JoinWork { probes, hash }))
}

/// The retained `Vec<Value>` oracle path (equivalence baseline for the
/// vectorized kernels), with the same cooperative budget checkpoints.
fn hash_join_rowwise(
    left: &Batch,
    right: &Batch,
    left_keys: &[Expr],
    right_keys: &[Expr],
    join_type: JoinType,
    budget: &QueryBudget,
) -> Result<(Batch, JoinWork)> {
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, key) in key_rows(right, right_keys)?.into_iter().enumerate() {
        if i % BUDGET_CHECK_INTERVAL == 0 {
            budget.check()?;
        }
        if let Some(k) = key {
            table.entry(k).or_default().push(i);
        }
    }

    let left_keys_eval = key_rows(left, left_keys)?;
    let mut probes: u64 = 0;
    let work = |probes| JoinWork {
        probes,
        hash: HashStats::default(),
    };
    match join_type {
        JoinType::Inner => {
            let mut li = Vec::new();
            let mut ri = Vec::new();
            for (i, key) in left_keys_eval.into_iter().enumerate() {
                if i % BUDGET_CHECK_INTERVAL == 0 {
                    budget.check()?;
                }
                probes += 1;
                let Some(k) = key else { continue };
                if let Some(matches) = table.get(&k) {
                    for &m in matches {
                        li.push(i);
                        ri.push(m);
                    }
                }
            }
            Ok((emit_inner(left, right, &li, &ri)?, work(probes)))
        }
        JoinType::LeftSemi => {
            let mut li = Vec::new();
            for (i, key) in left_keys_eval.into_iter().enumerate() {
                if i % BUDGET_CHECK_INTERVAL == 0 {
                    budget.check()?;
                }
                probes += 1;
                let Some(k) = key else { continue };
                if table.contains_key(&k) {
                    li.push(i);
                }
            }
            Ok((left.take(&li), work(probes)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn reads() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::qualified("c", "epc", DataType::Str),
            Field::qualified("c", "biz_loc", DataType::Str),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("e1"), Value::str("l1")],
                vec![Value::str("e2"), Value::str("l2")],
                vec![Value::str("e3"), Value::Null],
                vec![Value::str("e4"), Value::str("l1")],
            ],
        )
        .unwrap()
    }

    fn locs() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::qualified("l", "gln", DataType::Str),
            Field::qualified("l", "site", DataType::Str),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("l1"), Value::str("dc1")],
                vec![Value::str("l3"), Value::str("dc2")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn inner_join_basics() {
        let (out, _) = hash_join(
            &reads(),
            &locs(),
            &[Expr::col("c.biz_loc")],
            &[Expr::col("l.gln")],
            JoinType::Inner,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.num_columns(), 4);
        let epcs: Vec<Value> = (0..2).map(|i| out.row(i)[0].clone()).collect();
        assert_eq!(epcs, vec![Value::str("e1"), Value::str("e4")]);
        assert_eq!(
            out.column_by_name("l.site").unwrap().value(0),
            Value::str("dc1")
        );
    }

    #[test]
    fn null_keys_never_match() {
        // e3 has NULL biz_loc; even a NULL on the right must not match it.
        let schema = schema_ref(Schema::new(vec![Field::new("gln", DataType::Str)]));
        let right = Batch::from_rows(schema, &[vec![Value::Null]]).unwrap();
        let (out, _) = hash_join(
            &reads(),
            &right,
            &[Expr::col("c.biz_loc")],
            &[Expr::col("gln")],
            JoinType::Inner,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn semi_join_keeps_left_schema_and_dedupes() {
        // Duplicate right keys must not duplicate left rows.
        let schema = schema_ref(Schema::new(vec![Field::new("gln", DataType::Str)]));
        let right =
            Batch::from_rows(schema, &[vec![Value::str("l1")], vec![Value::str("l1")]]).unwrap();
        let (out, _) = hash_join(
            &reads(),
            &right,
            &[Expr::col("c.biz_loc")],
            &[Expr::col("gln")],
            JoinType::LeftSemi,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.num_columns(), 2);
    }

    #[test]
    fn multi_key_join() {
        let schema = schema_ref(Schema::new(vec![
            Field::new("a", DataType::Str),
            Field::new("b", DataType::Str),
        ]));
        let left = Batch::from_rows(
            schema.clone(),
            &[
                vec![Value::str("x"), Value::str("1")],
                vec![Value::str("x"), Value::str("2")],
            ],
        )
        .unwrap();
        let schema_r = schema_ref(Schema::new(vec![
            Field::new("c", DataType::Str),
            Field::new("d", DataType::Str),
        ]));
        let right = Batch::from_rows(schema_r, &[vec![Value::str("x"), Value::str("2")]]).unwrap();
        let (out, _) = hash_join(
            &left,
            &right,
            &[Expr::col("a"), Expr::col("b")],
            &[Expr::col("c"), Expr::col("d")],
            JoinType::Inner,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[1], Value::str("2"));
    }

    #[test]
    fn one_to_many_inner_multiplies() {
        let schema = schema_ref(Schema::new(vec![Field::new("gln", DataType::Str)]));
        let right =
            Batch::from_rows(schema, &[vec![Value::str("l1")], vec![Value::str("l1")]]).unwrap();
        let (out, _) = hash_join(
            &reads(),
            &right,
            &[Expr::col("c.biz_loc")],
            &[Expr::col("gln")],
            JoinType::Inner,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 4); // e1 x2, e4 x2
    }

    #[test]
    fn empty_key_list_rejected() {
        assert!(hash_join(&reads(), &locs(), &[], &[], JoinType::Inner).is_err());
    }

    /// A wide batch of `n` rows with int, str, and NULL-bearing key columns.
    fn wide(n: usize, null_every: usize, salt: i64) -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("s", DataType::Str),
        ]));
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                let k = if null_every > 0 && i % null_every == 0 {
                    Value::Null
                } else {
                    Value::Int((i as i64 * salt) % 97)
                };
                vec![k, Value::str(format!("s{}", i % 13))]
            })
            .collect();
        Batch::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn vectorized_path_matches_rowwise_oracle() {
        let budget = QueryBudget::unlimited();
        for jt in [JoinType::Inner, JoinType::LeftSemi] {
            for (l, r) in [
                (wide(200, 7, 3), wide(40, 0, 5)),
                (wide(50, 0, 1), wide(50, 3, 1)),
                (wide(0, 0, 1), wide(10, 0, 1)),
            ] {
                let keys = [Expr::col("k"), Expr::col("s")];
                let (vb, vw) = hash_join_with(&l, &r, &keys, &keys, jt, &budget, false).unwrap();
                let (ob, ow) = hash_join_with(&l, &r, &keys, &keys, jt, &budget, true).unwrap();
                assert_eq!(vb.num_rows(), ob.num_rows(), "{jt}");
                for i in 0..vb.num_rows() {
                    assert_eq!(vb.row(i), ob.row(i), "{jt} row {i}");
                }
                assert_eq!(vw.probes, ow.probes, "{jt} probes");
                assert!(vw.hash.hash_ops > 0);
            }
        }
    }

    #[test]
    fn expired_budget_aborts_inside_build_and_probe() {
        // An already-expired deadline must abort the join from inside its
        // loops — both paths, both phases (the first checkpoint fires at
        // row 0 of the build loop).
        let budget = QueryBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let l = wide(100, 0, 1);
        let r = wide(100, 0, 1);
        let keys = [Expr::col("k")];
        for rowwise in [false, true] {
            let err = hash_join_with(&l, &r, &keys, &keys, JoinType::Inner, &budget, rowwise)
                .unwrap_err();
            assert!(
                matches!(err, Error::Aborted(_)),
                "rowwise={rowwise}: {err:?}"
            );
        }
    }
}
