//! Logical query plans.
//!
//! Plans are trees of relational operators. A plan knows its output schema
//! and its *output ordering* (the sort keys its result is guaranteed to
//! satisfy), which the optimizer uses to eliminate redundant sorts — the
//! "order sharing" behaviour the paper's §6.2 highlights: a cleansing rule
//! and a downstream SQL/OLAP query that require the same (epc, rtime) order
//! pay for one sort only.

use crate::agg::AggExpr;
use crate::error::Result;
use crate::expr::Expr;
use crate::join::JoinType;
use crate::schema::{Field, Schema, SchemaRef};
use crate::sort::SortKey;
use crate::table::Catalog;
use crate::window::WindowExpr;
use std::fmt::Write as _;
use std::sync::Arc;

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a catalog table, optionally under an alias, with an optional
    /// pushed-down filter (the executor turns it into an index range scan
    /// when possible).
    Scan {
        table: String,
        alias: Option<String>,
        filter: Option<Expr>,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    /// Projection: each output column is `(expr, alias)`.
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<(Expr, String)>,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    /// SQL/OLAP window computation. Appends one column per window expression.
    /// `presorted` is set by the optimizer when the input already delivers
    /// the (partition, order) ordering, eliminating this node's sort.
    Window {
        input: Box<LogicalPlan>,
        partition_by: Vec<Expr>,
        order_by: Vec<SortKey>,
        exprs: Vec<WindowExpr>,
        presorted: bool,
    },
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        join_type: JoinType,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<(Expr, String)>,
        aggs: Vec<AggExpr>,
    },
    Distinct {
        input: Box<LogicalPlan>,
    },
    Union {
        inputs: Vec<LogicalPlan>,
    },
    Limit {
        input: Box<LogicalPlan>,
        fetch: usize,
    },
    /// Re-qualify a derived table's output columns under an alias
    /// (`FROM (subquery) AS v1` / CTE references).
    SubqueryAlias {
        input: Box<LogicalPlan>,
        alias: String,
    },
}

impl LogicalPlan {
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            alias: None,
            filter: None,
        }
    }

    pub fn scan_as(table: impl Into<String>, alias: impl Into<String>) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            alias: Some(alias.into()),
            filter: None,
        }
    }

    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    pub fn project(self, exprs: Vec<(Expr, String)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    pub fn sort(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    pub fn window(
        self,
        partition_by: Vec<Expr>,
        order_by: Vec<SortKey>,
        exprs: Vec<WindowExpr>,
    ) -> LogicalPlan {
        LogicalPlan::Window {
            input: Box::new(self),
            partition_by,
            order_by,
            exprs,
            presorted: false,
        }
    }

    pub fn join(
        self,
        right: LogicalPlan,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        join_type: JoinType,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_keys,
            right_keys,
            join_type,
        }
    }

    pub fn aggregate(self, group_by: Vec<(Expr, String)>, aggs: Vec<AggExpr>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }

    pub fn distinct(self) -> LogicalPlan {
        LogicalPlan::Distinct {
            input: Box::new(self),
        }
    }

    pub fn limit(self, fetch: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            fetch,
        }
    }

    pub fn alias(self, alias: impl Into<String>) -> LogicalPlan {
        LogicalPlan::SubqueryAlias {
            input: Box::new(self),
            alias: alias.into().to_ascii_lowercase(),
        }
    }

    /// Compute the output schema against a catalog.
    pub fn schema(&self, catalog: &Catalog) -> Result<SchemaRef> {
        match self {
            LogicalPlan::Scan { table, alias, .. } => {
                let t = catalog.get(table)?;
                let schema = match alias {
                    Some(a) => t.schema().with_qualifier(a),
                    None => t.schema().as_ref().clone(),
                };
                Ok(Arc::new(schema))
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => input.schema(catalog),
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema(catalog)?;
                let fields = exprs
                    .iter()
                    .map(|(e, alias)| Ok(Field::from_flat_name(alias, e.data_type(&in_schema)?)))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Arc::new(Schema::new(fields)))
            }
            LogicalPlan::Window { input, exprs, .. } => {
                let in_schema = input.schema(catalog)?;
                let mut fields = in_schema.fields().to_vec();
                for we in exprs {
                    fields.push(Field::new(we.alias.clone(), we.data_type(&in_schema)?));
                }
                Ok(Arc::new(Schema::new(fields)))
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                ..
            } => {
                let l = left.schema(catalog)?;
                match join_type {
                    JoinType::Inner => {
                        let r = right.schema(catalog)?;
                        Ok(Arc::new(l.join(&r)))
                    }
                    JoinType::LeftSemi => Ok(l),
                }
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema(catalog)?;
                let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
                for (e, alias) in group_by {
                    fields.push(Field::new(alias.clone(), e.data_type(&in_schema)?));
                }
                for a in aggs {
                    fields.push(Field::new(a.alias.clone(), a.func.output_type(&in_schema)?));
                }
                Ok(Arc::new(Schema::new(fields)))
            }
            LogicalPlan::Union { inputs } => inputs
                .first()
                .ok_or_else(|| crate::error::Error::Plan("UNION of zero inputs".into()))?
                .schema(catalog),
            LogicalPlan::SubqueryAlias { input, alias } => {
                Ok(Arc::new(input.schema(catalog)?.with_qualifier(alias)))
            }
        }
    }

    /// The ordering this plan's output is guaranteed to satisfy.
    ///
    /// Conservative: only orderings produced by explicit sorts (or window
    /// nodes, which sort) and preserved by order-preserving operators
    /// (filter, limit, window-on-sorted, our hash joins which keep left
    /// order, and pass-through projections).
    pub fn output_ordering(&self) -> Vec<SortKey> {
        match self {
            LogicalPlan::Scan { .. }
            | LogicalPlan::Union { .. }
            | LogicalPlan::Aggregate { .. } => {
                vec![]
            }
            LogicalPlan::Sort { keys, .. } => keys.clone(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.output_ordering(),
            LogicalPlan::SubqueryAlias { input, alias } => {
                // Re-qualify unqualified ordering key columns under the alias.
                let mut kept = Vec::new();
                for k in input.output_ordering() {
                    match &k.expr {
                        Expr::Column(c) if c.qualifier.is_none() => kept.push(SortKey {
                            expr: Expr::Column(crate::expr::ColumnRef::qualified(
                                alias.clone(),
                                c.name.clone(),
                            )),
                            ascending: k.ascending,
                            nulls_first: k.nulls_first,
                        }),
                        _ => break,
                    }
                }
                kept
            }
            LogicalPlan::Window {
                input,
                partition_by,
                order_by,
                presorted,
                ..
            } => {
                if *presorted {
                    input.output_ordering()
                } else {
                    // This node sorts by (partition, order).
                    window_sort_keys(partition_by, order_by)
                }
            }
            // Our hash join streams left rows in order.
            LogicalPlan::Join { left, .. } => left.output_ordering(),
            LogicalPlan::Project { input, exprs } => {
                // Ordering survives if every ordering key is passed through
                // unchanged under the same name.
                let inner = input.output_ordering();
                let mut kept = Vec::new();
                for k in inner {
                    let passes = exprs.iter().any(|(e, alias)| {
                        e == &k.expr
                            && matches!(&k.expr, Expr::Column(c) if c.flat_name().eq_ignore_ascii_case(alias))
                    });
                    if passes {
                        kept.push(k);
                    } else {
                        break;
                    }
                }
                kept
            }
        }
    }

    /// Children of this node.
    pub fn inputs(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Window { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::SubqueryAlias { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::Union { inputs } => inputs.iter().collect(),
        }
    }

    /// One-line description of this node (no children).
    pub fn node_label(&self) -> String {
        match self {
            LogicalPlan::Scan {
                table,
                alias,
                filter,
            } => {
                let mut s = format!("Scan {table}");
                if let Some(a) = alias {
                    let _ = write!(s, " AS {a}");
                }
                if let Some(f) = filter {
                    let _ = write!(s, " [pushed: {f}]");
                }
                s
            }
            LogicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            LogicalPlan::Project { exprs, .. } => {
                let cols: Vec<String> = exprs.iter().map(|(e, a)| format!("{e} AS {a}")).collect();
                format!("Project [{}]", cols.join(", "))
            }
            LogicalPlan::Sort { keys, .. } => {
                let ks: Vec<String> = keys.iter().map(SortKey::to_string).collect();
                format!("Sort [{}]", ks.join(", "))
            }
            LogicalPlan::Window {
                partition_by,
                order_by,
                exprs,
                presorted,
                ..
            } => {
                let parts: Vec<String> = partition_by.iter().map(Expr::to_string).collect();
                let ords: Vec<String> = order_by.iter().map(SortKey::to_string).collect();
                let ws: Vec<String> = exprs.iter().map(WindowExpr::to_string).collect();
                format!(
                    "Window partition=[{}] order=[{}]{} [{}]",
                    parts.join(", "),
                    ords.join(", "),
                    if *presorted {
                        " (order shared)"
                    } else {
                        " (sorts input)"
                    },
                    ws.join("; ")
                )
            }
            LogicalPlan::Join {
                left_keys,
                right_keys,
                join_type,
                ..
            } => {
                let pairs: Vec<String> = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(l, r)| format!("{l} = {r}"))
                    .collect();
                format!("{join_type} Join on [{}]", pairs.join(" AND "))
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let gs: Vec<String> = group_by
                    .iter()
                    .map(|(e, a)| format!("{e} AS {a}"))
                    .collect();
                let as_: Vec<String> = aggs
                    .iter()
                    .map(|a| format!("{} AS {}", a.func, a.alias))
                    .collect();
                format!(
                    "Aggregate group=[{}] aggs=[{}]",
                    gs.join(", "),
                    as_.join(", ")
                )
            }
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
            LogicalPlan::Union { inputs } => format!("Union ({} inputs)", inputs.len()),
            LogicalPlan::Limit { fetch, .. } => format!("Limit {fetch}"),
            LogicalPlan::SubqueryAlias { alias, .. } => format!("SubqueryAlias {alias}"),
        }
    }

    /// Multi-line EXPLAIN rendering.
    pub fn display_indent(&self) -> String {
        fn walk(plan: &LogicalPlan, depth: usize, out: &mut String) {
            let _ = writeln!(out, "{}{}", "  ".repeat(depth), plan.node_label());
            for c in plan.inputs() {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }
}

/// The sort keys implied by a window's (partition, order) requirement:
/// partition keys ascending, then the order keys.
pub fn window_sort_keys(partition_by: &[Expr], order_by: &[SortKey]) -> Vec<SortKey> {
    let mut keys: Vec<SortKey> = partition_by.iter().cloned().map(SortKey::asc).collect();
    keys.extend(order_by.iter().cloned());
    keys
}

/// Does an available ordering `provided` satisfy `required` (prefix match)?
pub fn ordering_satisfies(provided: &[SortKey], required: &[SortKey]) -> bool {
    required.len() <= provided.len()
        && provided
            .iter()
            .zip(required)
            .all(|(p, r)| p.expr == r.expr && p.ascending == r.ascending)
}

impl std::fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.display_indent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{schema_ref, Batch};
    use crate::table::Table;
    use crate::value::{DataType, Value};

    fn catalog() -> Catalog {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        let b = Batch::from_rows(schema, &[vec![Value::str("e1"), Value::Int(1)]]).unwrap();
        let cat = Catalog::new();
        cat.register(Table::new("r", b));
        cat
    }

    #[test]
    fn scan_alias_requalifies_schema() {
        let cat = catalog();
        let s = LogicalPlan::scan_as("r", "c").schema(&cat).unwrap();
        assert_eq!(s.index_of_name("c.epc").unwrap(), 0);
    }

    #[test]
    fn window_schema_appends_columns() {
        let cat = catalog();
        let plan = LogicalPlan::scan("r").window(
            vec![Expr::col("epc")],
            vec![SortKey::asc(Expr::col("rtime"))],
            vec![WindowExpr {
                func: crate::window::WindowFuncKind::Max,
                arg: Some(Expr::col("rtime")),
                frame: crate::window::Frame::rows(
                    crate::window::FrameBound::Preceding(1),
                    crate::window::FrameBound::Preceding(1),
                ),
                alias: "prev_time".into(),
            }],
        );
        let s = plan.schema(&cat).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.field(2).name, "prev_time");
    }

    #[test]
    fn ordering_propagates_through_filter() {
        let keys = vec![
            SortKey::asc(Expr::col("epc")),
            SortKey::asc(Expr::col("rtime")),
        ];
        let plan = LogicalPlan::scan("r")
            .sort(keys.clone())
            .filter(Expr::col("rtime").gt(Expr::lit(0i64)));
        assert_eq!(plan.output_ordering(), keys);
    }

    #[test]
    fn window_provides_its_sort_order() {
        let plan = LogicalPlan::scan("r").window(
            vec![Expr::col("epc")],
            vec![SortKey::asc(Expr::col("rtime"))],
            vec![],
        );
        let ord = plan.output_ordering();
        assert_eq!(ord.len(), 2);
        assert_eq!(ord[0].expr, Expr::col("epc"));
    }

    #[test]
    fn ordering_satisfies_prefix() {
        let provided = vec![
            SortKey::asc(Expr::col("epc")),
            SortKey::asc(Expr::col("rtime")),
        ];
        let required = vec![SortKey::asc(Expr::col("epc"))];
        assert!(ordering_satisfies(&provided, &required));
        assert!(!ordering_satisfies(&required, &provided));
        let wrong_dir = vec![SortKey::desc(Expr::col("epc"))];
        assert!(!ordering_satisfies(&provided, &wrong_dir));
    }

    #[test]
    fn explain_smoke() {
        let plan = LogicalPlan::scan("r")
            .filter(Expr::col("rtime").lt(Expr::lit(10i64)))
            .sort(vec![SortKey::asc(Expr::col("epc"))]);
        let s = plan.display_indent();
        assert!(s.contains("Sort"));
        assert!(s.contains("  Filter"));
        assert!(s.contains("    Scan r"));
    }
}
