//! Delta-application helpers for incremental standing-query maintenance.
//!
//! The streaming subsystem maintains each standing query's result across
//! epochs by re-executing only the part of the plan touched by an append —
//! the sequences of the appended cluster keys — and diffing the scoped
//! results. Everything here is deliberately engine-agnostic plumbing:
//!
//! * [`scope_plan`] injects a `ckey IN (…)` restriction above every scan of
//!   the cleansed table, producing the "re-cleanse only these sequences"
//!   plan (sound because rules partition by the cluster key, so a
//!   restriction on it commutes with Φ);
//! * [`scan_count`] / [`plan_tables`] answer the decomposability questions
//!   the maintenance planner asks ("how many times does the plan read the
//!   cleansed table?", "does this append touch the query at all?");
//! * [`multiset_diff`] / [`remove_rows`] are the multiset algebra a change
//!   feed is folded with: `new = old − deleted + inserted`.
//!
//! Row identity throughout is **byte identity under the engine's total
//! value order** ([`Value::total_cmp`] lexicographically over the row), the
//! same order `Batch::sorted_rows` canonicalizes with.

use crate::batch::Batch;
use crate::error::{Error, Result};
use crate::exec::ExecStats;
use crate::expr::{ColumnRef, Expr};
use crate::plan::LogicalPlan;
use crate::sort::SortKey;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::BTreeSet;

/// Lexicographic total order over rows (shorter row sorts first on ties).
pub fn cmp_rows(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let o = x.total_cmp(y);
        if o != Ordering::Equal {
            return o;
        }
    }
    a.len().cmp(&b.len())
}

/// Number of `Scan` nodes of `table` (case-insensitive) in the plan.
pub fn scan_count(plan: &LogicalPlan, table: &str) -> usize {
    let mut n = 0;
    if let LogicalPlan::Scan { table: t, .. } = plan {
        if t.eq_ignore_ascii_case(table) {
            n += 1;
        }
    }
    for input in plan.inputs() {
        n += scan_count(input, table);
    }
    n
}

/// Collect every base table the plan scans (lowercased) into `out`.
pub fn plan_tables(plan: &LogicalPlan, out: &mut BTreeSet<String>) {
    if let LogicalPlan::Scan { table, .. } = plan {
        out.insert(table.to_ascii_lowercase());
    }
    for input in plan.inputs() {
        plan_tables(input, out);
    }
}

/// Restrict every scan of `table` to rows whose `column` value is in
/// `keys`, by wrapping the scan in a `Filter(column IN (…))`. The filter
/// references the column through the scan's alias when it has one, so the
/// predicate resolves regardless of how the query qualifies its columns.
///
/// For a cleansed table this is the *re-cleanse-by-ckey* restriction: rules
/// partition sequences by the cluster key, so `Φ(σ_{ckey∈K}(R)) =
/// σ_{ckey∈K}(Φ(R))` and the scoped plan computes exactly the slice of the
/// full answer owned by the keys in `K`.
pub fn scope_plan(plan: &LogicalPlan, table: &str, column: &str, keys: &[Value]) -> LogicalPlan {
    let rebuilt = match plan {
        LogicalPlan::Scan {
            table: t, alias, ..
        } if t.eq_ignore_ascii_case(table) => {
            let col = match alias {
                Some(a) => Expr::Column(ColumnRef::qualified(a.clone(), column)),
                None => Expr::col(column),
            };
            let in_list = Expr::InList {
                expr: Box::new(col),
                list: keys.to_vec(),
                negated: false,
            };
            return LogicalPlan::Filter {
                input: Box::new(plan.clone()),
                predicate: in_list,
            };
        }
        other => other.clone(),
    };
    map_inputs(rebuilt, &|input| scope_plan(&input, table, column, keys))
}

/// Rebuild a node with each direct input replaced by `f(input)`.
fn map_inputs(plan: LogicalPlan, f: &dyn Fn(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(f(*input)),
            exprs,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        LogicalPlan::Window {
            input,
            partition_by,
            order_by,
            exprs,
            presorted,
        } => LogicalPlan::Window {
            input: Box::new(f(*input)),
            partition_by,
            order_by,
            exprs,
            presorted,
        },
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            left_keys,
            right_keys,
            join_type,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)),
            group_by,
            aggs,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
        LogicalPlan::Union { inputs } => LogicalPlan::Union {
            inputs: inputs.into_iter().map(f).collect(),
        },
        LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
            input: Box::new(f(*input)),
            fetch,
        },
        LogicalPlan::SubqueryAlias { input, alias } => LogicalPlan::SubqueryAlias {
            input: Box::new(f(*input)),
            alias,
        },
    }
}

/// Multiset difference both ways: `(old − new, new − old)` — the rows a
/// change feed must delete and insert to turn `old` into `new`. Rows equal
/// under [`cmp_rows`] cancel with multiplicity. Bumps
/// `stats.maintenance_delta_rows` by the total delta size.
pub fn multiset_diff(
    old: &[Vec<Value>],
    new: &[Vec<Value>],
    stats: &mut ExecStats,
) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let mut old_sorted: Vec<&Vec<Value>> = old.iter().collect();
    let mut new_sorted: Vec<&Vec<Value>> = new.iter().collect();
    old_sorted.sort_by(|a, b| cmp_rows(a, b));
    new_sorted.sort_by(|a, b| cmp_rows(a, b));
    let (mut i, mut j) = (0, 0);
    let mut deleted = Vec::new();
    let mut inserted = Vec::new();
    while i < old_sorted.len() && j < new_sorted.len() {
        match cmp_rows(old_sorted[i], new_sorted[j]) {
            Ordering::Equal => {
                i += 1;
                j += 1;
            }
            Ordering::Less => {
                deleted.push(old_sorted[i].clone());
                i += 1;
            }
            Ordering::Greater => {
                inserted.push(new_sorted[j].clone());
                j += 1;
            }
        }
    }
    deleted.extend(old_sorted[i..].iter().map(|r| (*r).clone()));
    inserted.extend(new_sorted[j..].iter().map(|r| (*r).clone()));
    stats.maintenance_delta_rows += (deleted.len() + inserted.len()) as u64;
    (deleted, inserted)
}

/// Remove each row of `deleted` from `current` (first occurrence under byte
/// identity). A row absent from `current` is a maintenance-state divergence
/// and fails loudly rather than silently drifting.
pub fn remove_rows(current: &mut Vec<Vec<Value>>, deleted: &[Vec<Value>]) -> Result<()> {
    for row in deleted {
        match current
            .iter()
            .position(|r| cmp_rows(r, row) == Ordering::Equal)
        {
            Some(pos) => {
                current.remove(pos);
            }
            None => {
                return Err(Error::Internal(format!(
                    "maintenance delta deletes a row not present in the standing result: {row:?}"
                )))
            }
        }
    }
    Ok(())
}

/// Evaluate each sort key over `batch`, returning one key row per batch
/// row (key values in `keys` order).
pub fn eval_key_rows(batch: &Batch, keys: &[SortKey]) -> Result<Vec<Vec<Value>>> {
    let cols = keys
        .iter()
        .map(|k| k.expr.evaluate(batch))
        .collect::<Result<Vec<_>>>()?;
    Ok((0..batch.num_rows())
        .map(|i| cols.iter().map(|c| c.value(i)).collect())
        .collect())
}

/// Compare two pre-evaluated key rows under the keys' directions and null
/// placement — the same order `sort_batch` produces.
pub fn cmp_key_rows(a: &[Value], b: &[Value], keys: &[SortKey]) -> Ordering {
    for ((x, y), k) in a.iter().zip(b.iter()).zip(keys.iter()) {
        let o = match (x.is_null(), y.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if k.nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if k.nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => {
                let o = x.total_cmp(y);
                if k.ascending {
                    o
                } else {
                    o.reverse()
                }
            }
        };
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{schema_ref, Batch};
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn iv(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|v| Value::Int(*v)).collect()
    }

    #[test]
    fn multiset_diff_cancels_with_multiplicity() {
        let old = vec![iv(&[1]), iv(&[2]), iv(&[2]), iv(&[3])];
        let new = vec![iv(&[2]), iv(&[3]), iv(&[3]), iv(&[4])];
        let mut stats = ExecStats::default();
        let (del, ins) = multiset_diff(&old, &new, &mut stats);
        assert_eq!(del, vec![iv(&[1]), iv(&[2])]);
        assert_eq!(ins, vec![iv(&[3]), iv(&[4])]);
        assert_eq!(stats.maintenance_delta_rows, 4);
    }

    #[test]
    fn remove_rows_takes_first_match_and_rejects_absent() {
        let mut cur = vec![iv(&[1]), iv(&[2]), iv(&[2])];
        remove_rows(&mut cur, &[iv(&[2])]).unwrap();
        assert_eq!(cur, vec![iv(&[1]), iv(&[2])]);
        assert!(remove_rows(&mut cur, &[iv(&[9])]).is_err());
    }

    #[test]
    fn scope_plan_wraps_every_reads_scan() {
        let plan = LogicalPlan::scan_as("caser", "c")
            .filter(Expr::col("rtime").gt_eq(Expr::Literal(Value::Int(0))))
            .project(vec![(Expr::col("epc"), "epc".into())]);
        let scoped = scope_plan(&plan, "caser", "epc", &[Value::str("e1")]);
        // The IN-list filter sits directly above the scan.
        let rendered = scoped.display_indent();
        assert!(rendered.contains("IN"), "{rendered}");
        assert_eq!(scan_count(&scoped, "caser"), 1);
        // Scans of other tables are untouched.
        let other = scope_plan(&plan, "locs", "gln", &[Value::str("l1")]);
        assert!(!other.display_indent().contains("IN"));
    }

    #[test]
    fn scoped_execution_restricts_rows() {
        use crate::exec::Executor;
        use crate::table::{Catalog, Table};
        let cat = Catalog::new();
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::str(format!("e{}", i % 3)), Value::Int(i)])
            .collect();
        cat.register(Table::new("r", Batch::from_rows(schema, &rows).unwrap()));
        let plan = LogicalPlan::scan_as("r", "r");
        let scoped = scope_plan(&plan, "r", "epc", &[Value::str("e1")]);
        let mut exec = Executor::new(&cat);
        let out = exec.execute(&scoped).unwrap();
        assert_eq!(out.num_rows(), 3);
        for i in 0..out.num_rows() {
            assert_eq!(out.row(i)[0], Value::str("e1"));
        }
    }

    #[test]
    fn key_rows_order_matches_sort_batch() {
        use crate::sort::sort_batch;
        let schema = schema_ref(Schema::new(vec![Field::new("x", DataType::Int)]));
        let batch =
            Batch::from_rows(schema, &[iv(&[3]), vec![Value::Null], iv(&[1]), iv(&[2])]).unwrap();
        let keys = vec![SortKey::desc(Expr::col("x"))];
        let sorted = sort_batch(&batch, &keys).unwrap();
        let key_rows = eval_key_rows(&sorted, &keys).unwrap();
        for w in key_rows.windows(2) {
            assert_ne!(cmp_key_rows(&w[0], &w[1], &keys), Ordering::Greater);
        }
    }
}
