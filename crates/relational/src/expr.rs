//! Scalar expressions: AST, type inference, and evaluation over batches.
//!
//! Expressions follow SQL three-valued logic: comparisons involving NULL
//! yield NULL, `AND`/`OR` use Kleene semantics, and filters keep only rows
//! whose predicate evaluates to TRUE (not NULL).
//!
//! Aggregates and window functions are *not* scalar expressions here; they
//! are plan-level constructs (see [`crate::plan`]), mirroring how a DBMS
//! separates row expressions from set-level computation.

use crate::batch::Batch;
use crate::column::{Bitmap, Column, ColumnBuilder, ColumnData};
use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::{DataType, Value};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A reference to a column by optional qualifier and bare name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    pub qualifier: Option<String>,
    pub name: String,
}

impl ColumnRef {
    pub fn new(name: impl Into<String>) -> Self {
        let name: String = name.into();
        match name.split_once('.') {
            Some((q, n)) => ColumnRef {
                qualifier: Some(q.to_ascii_lowercase()),
                name: n.to_ascii_lowercase(),
            },
            None => ColumnRef {
                qualifier: None,
                name: name.to_ascii_lowercase(),
            },
        }
    }

    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(qualifier.into().to_ascii_lowercase()),
            name: name.into().to_ascii_lowercase(),
        }
    }

    pub fn flat_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.flat_name())
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Multiply,
    Divide,
    And,
    Or,
}

impl BinaryOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Multiply | BinaryOp::Divide
        )
    }

    /// The comparison with swapped operands (a OP b == b OP' a).
    pub fn swap(self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            other => other,
        }
    }

    /// The negated comparison (NOT (a OP b) == a OP' b) under two-valued
    /// logic; callers must handle NULLs separately.
    pub fn negate(self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::NotEq,
            BinaryOp::NotEq => BinaryOp::Eq,
            BinaryOp::Lt => BinaryOp::GtEq,
            BinaryOp::LtEq => BinaryOp::Gt,
            BinaryOp::Gt => BinaryOp::LtEq,
            BinaryOp::GtEq => BinaryOp::Lt,
            _ => return None,
        })
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// Scalar expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column(ColumnRef),
    Literal(Value),
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)` with literal list elements.
    InList {
        expr: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// `expr IN (<materialized set>)` — produced when the planner evaluates
    /// an uncorrelated IN-subquery; `label` keeps the original SQL for
    /// EXPLAIN output.
    InSet {
        expr: Box<Expr>,
        set: Arc<HashSet<Value>>,
        negated: bool,
        label: String,
    },
    /// `CASE WHEN c1 THEN r1 [WHEN ...] [ELSE e] END` (searched form).
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// `count(<predicate>)` over a *set* pattern reference in a cleansing
    /// rule condition (the paper's §4.3 count() extension: "how many reads
    /// ... should be observed before taking an action"). Only valid inside
    /// rule conditions; the rule compiler lowers it to a window aggregate.
    /// Evaluating it directly is an error.
    CountIf(Box<Expr>),
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::new(name))
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::And, other)
    }

    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Or, other)
    }

    pub fn eq(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Eq, other)
    }

    pub fn lt(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Lt, other)
    }

    pub fn lt_eq(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::LtEq, other)
    }

    pub fn gt(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Gt, other)
    }

    pub fn gt_eq(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::GtEq, other)
    }

    /// Infer the result type against a schema.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            Expr::Column(c) => {
                let i = schema.index_of(c.qualifier.as_deref(), &c.name)?;
                Ok(schema.field(i).data_type)
            }
            Expr::Literal(v) => Ok(v.data_type().unwrap_or(DataType::Int)),
            Expr::Binary { left, op, right } => {
                if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) {
                    Ok(DataType::Bool)
                } else {
                    let lt = left.data_type(schema)?;
                    let rt = right.data_type(schema)?;
                    if !lt.is_numeric() || !rt.is_numeric() {
                        return Err(Error::Plan(format!(
                            "arithmetic '{op}' requires numeric operands, got {lt} and {rt}"
                        )));
                    }
                    if lt == DataType::Double || rt == DataType::Double || *op == BinaryOp::Divide {
                        Ok(DataType::Double)
                    } else {
                        Ok(DataType::Int)
                    }
                }
            }
            Expr::Not(_) | Expr::IsNull { .. } | Expr::InList { .. } | Expr::InSet { .. } => {
                Ok(DataType::Bool)
            }
            Expr::CountIf(_) => Ok(DataType::Int),
            Expr::Case {
                branches,
                else_expr,
            } => {
                // The result type is the widest branch type.
                let mut dt: Option<DataType> = None;
                let mut consider = |t: DataType| match dt {
                    None => dt = Some(t),
                    Some(cur) => {
                        if cur == DataType::Int && t == DataType::Double {
                            dt = Some(DataType::Double);
                        }
                    }
                };
                for (_, r) in branches {
                    consider(r.data_type(schema)?);
                }
                if let Some(e) = else_expr {
                    consider(e.data_type(schema)?);
                }
                dt.ok_or_else(|| Error::Plan("CASE with no branches".into()))
            }
        }
    }

    /// Evaluate over a batch, producing one value per logical row.
    ///
    /// This is the kernel-accelerated path: binary arithmetic, comparisons,
    /// `AND`/`OR`, `IS NULL`, and `IN` dispatch once on the operand
    /// `ColumnData` types and run tight loops over native slices, honoring
    /// the batch's selection vector when one is present (only selected rows
    /// are evaluated — so error behavior matches a pre-compacted batch).
    /// Type combinations without a kernel fall back to the per-row `Value`
    /// path with identical semantics. [`Expr::evaluate_rowwise`] is the
    /// retained `Value`-boxed oracle the property suite compares against.
    pub fn evaluate(&self, batch: &Batch) -> Result<Column> {
        let mut ks = KernelStats::default();
        eval_vec(self, batch, batch.selection(), &mut ks)
    }

    /// The original per-row `Value`-boxing evaluator, kept verbatim as the
    /// equivalence oracle for the typed kernels. Produces one value per
    /// logical row (selected batches are compacted first).
    pub fn evaluate_rowwise(&self, batch: &Batch) -> Result<Column> {
        if !batch.is_flat() {
            return self.evaluate_rowwise(&batch.flatten());
        }
        let n = batch.num_rows();
        match self {
            Expr::Column(c) => {
                let i = batch.schema().index_of(c.qualifier.as_deref(), &c.name)?;
                Ok(batch.column(i).clone())
            }
            Expr::Literal(v) => {
                let dt = v.data_type().unwrap_or(DataType::Int);
                let mut b = ColumnBuilder::new(dt, n);
                for _ in 0..n {
                    b.push(v)?;
                }
                Ok(b.finish())
            }
            Expr::Binary { left, op, right } => {
                let l = left.evaluate_rowwise(batch)?;
                let r = right.evaluate_rowwise(batch)?;
                eval_binary_rowwise(&l, *op, &r, self)
            }
            Expr::Not(inner) => {
                let c = inner.evaluate_rowwise(batch)?;
                let mut b = ColumnBuilder::new(DataType::Bool, n);
                for i in 0..n {
                    match c.value(i) {
                        Value::Null => b.push_null(),
                        Value::Bool(x) => b.push(&Value::Bool(!x))?,
                        other => {
                            return Err(Error::Execution(format!(
                                "NOT applied to non-boolean {other}"
                            )))
                        }
                    }
                }
                Ok(b.finish())
            }
            Expr::IsNull { expr, negated } => {
                let c = expr.evaluate_rowwise(batch)?;
                let mut b = ColumnBuilder::new(DataType::Bool, n);
                for i in 0..n {
                    let is_null = c.is_null(i);
                    b.push(&Value::Bool(is_null != *negated))?;
                }
                Ok(b.finish())
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let set: HashSet<Value> = list.iter().cloned().collect();
                eval_in_rowwise(&expr.evaluate_rowwise(batch)?, &set, *negated)
            }
            Expr::InSet {
                expr, set, negated, ..
            } => eval_in_rowwise(&expr.evaluate_rowwise(batch)?, set, *negated),
            Expr::CountIf(_) => Err(Error::Plan(
                "count(<predicate>) is only valid inside a cleansing rule \
                 condition over a set reference"
                    .into(),
            )),
            Expr::Case {
                branches,
                else_expr,
            } => {
                let dt = self.data_type(batch.schema())?;
                let conds: Vec<Column> = branches
                    .iter()
                    .map(|(c, _)| c.evaluate_rowwise(batch))
                    .collect::<Result<_>>()?;
                let results: Vec<Column> = branches
                    .iter()
                    .map(|(_, r)| r.evaluate_rowwise(batch))
                    .collect::<Result<_>>()?;
                let else_col = else_expr
                    .as_ref()
                    .map(|e| e.evaluate_rowwise(batch))
                    .transpose()?;
                let mut b = ColumnBuilder::new(dt, n);
                'row: for i in 0..n {
                    for (c, r) in conds.iter().zip(&results) {
                        if c.value(i).as_bool() == Some(true) {
                            b.push(&r.value(i))?;
                            continue 'row;
                        }
                    }
                    match &else_col {
                        Some(e) => b.push(&e.value(i))?,
                        None => b.push_null(),
                    }
                }
                Ok(b.finish())
            }
        }
    }

    /// Evaluate a predicate and return the indices of rows where it is TRUE.
    pub fn filter_indices(&self, batch: &Batch) -> Result<Vec<usize>> {
        let c = self.evaluate(batch)?;
        if c.data_type() != DataType::Bool {
            return Err(Error::Execution(format!(
                "filter predicate produced {} not BOOLEAN",
                c.data_type()
            )));
        }
        let mut out = Vec::new();
        for i in 0..c.len() {
            if !c.is_null(i) && c.value(i).as_bool() == Some(true) {
                out.push(i);
            }
        }
        Ok(out)
    }

    /// All column references in this expression.
    pub fn referenced_columns(&self, out: &mut Vec<ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Not(e) => e.referenced_columns(out),
            Expr::IsNull { expr, .. } => expr.referenced_columns(out),
            Expr::InList { expr, .. } | Expr::InSet { expr, .. } => expr.referenced_columns(out),
            Expr::CountIf(inner) => inner.referenced_columns(out),
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    c.referenced_columns(out);
                    r.referenced_columns(out);
                }
                if let Some(e) = else_expr {
                    e.referenced_columns(out);
                }
            }
        }
    }

    /// Apply `f` bottom-up to every node, rebuilding the tree.
    pub fn transform(&self, f: &impl Fn(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Column(_) | Expr::Literal(_) => self.clone(),
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.transform(f)),
                op: *op,
                right: Box::new(right.transform(f)),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.transform(f))),
            Expr::CountIf(inner) => Expr::CountIf(Box::new(inner.transform(f))),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.clone(),
                negated: *negated,
            },
            Expr::InSet {
                expr,
                set,
                negated,
                label,
            } => Expr::InSet {
                expr: Box::new(expr.transform(f)),
                set: set.clone(),
                negated: *negated,
                label: label.clone(),
            },
            Expr::Case {
                branches,
                else_expr,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| (c.transform(f), r.transform(f)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.transform(f))),
            },
        };
        f(rebuilt)
    }
}

fn eval_in_rowwise(c: &Column, set: &HashSet<Value>, negated: bool) -> Result<Column> {
    let mut b = ColumnBuilder::new(DataType::Bool, c.len());
    for i in 0..c.len() {
        if c.is_null(i) {
            b.push_null();
        } else {
            let hit = set.contains(&c.value(i));
            b.push(&Value::Bool(hit != negated))?;
        }
    }
    Ok(b.finish())
}

fn eval_binary_rowwise(l: &Column, op: BinaryOp, r: &Column, ctx: &Expr) -> Result<Column> {
    let n = l.len();
    if op.is_comparison() {
        let mut b = ColumnBuilder::new(DataType::Bool, n);
        for i in 0..n {
            let lv = l.value(i);
            let rv = r.value(i);
            match lv.sql_cmp(&rv) {
                None => b.push_null(),
                Some(o) => {
                    let t = match op {
                        BinaryOp::Eq => o == std::cmp::Ordering::Equal,
                        BinaryOp::NotEq => o != std::cmp::Ordering::Equal,
                        BinaryOp::Lt => o == std::cmp::Ordering::Less,
                        BinaryOp::LtEq => o != std::cmp::Ordering::Greater,
                        BinaryOp::Gt => o == std::cmp::Ordering::Greater,
                        BinaryOp::GtEq => o != std::cmp::Ordering::Less,
                        _ => unreachable!(),
                    };
                    b.push(&Value::Bool(t))?;
                }
            }
        }
        return Ok(b.finish());
    }
    match op {
        BinaryOp::And | BinaryOp::Or => {
            let mut b = ColumnBuilder::new(DataType::Bool, n);
            for i in 0..n {
                let lv = if l.is_null(i) {
                    None
                } else {
                    l.value(i).as_bool()
                };
                let rv = if r.is_null(i) {
                    None
                } else {
                    r.value(i).as_bool()
                };
                // Kleene three-valued logic.
                let out = if op == BinaryOp::And {
                    match (lv, rv) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    }
                } else {
                    match (lv, rv) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    }
                };
                match out {
                    Some(v) => b.push(&Value::Bool(v))?,
                    None => b.push_null(),
                }
            }
            Ok(b.finish())
        }
        BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Multiply | BinaryOp::Divide => {
            let int_result = l.data_type() == DataType::Int
                && r.data_type() == DataType::Int
                && op != BinaryOp::Divide;
            let dt = if int_result {
                DataType::Int
            } else {
                DataType::Double
            };
            let mut b = ColumnBuilder::new(dt, n);
            for i in 0..n {
                let lv = l.value(i);
                let rv = r.value(i);
                if lv.is_null() || rv.is_null() {
                    b.push_null();
                    continue;
                }
                if int_result {
                    let (x, y) = (lv.as_int().unwrap(), rv.as_int().unwrap());
                    let out = match op {
                        BinaryOp::Plus => x.checked_add(y),
                        BinaryOp::Minus => x.checked_sub(y),
                        BinaryOp::Multiply => x.checked_mul(y),
                        _ => unreachable!(),
                    };
                    match out {
                        Some(v) => b.push(&Value::Int(v))?,
                        None => {
                            return Err(Error::Execution(format!(
                                "integer overflow evaluating {ctx}"
                            )))
                        }
                    }
                } else {
                    let (x, y) = (
                        lv.as_double().ok_or_else(|| {
                            Error::Execution(format!("non-numeric operand {lv} in {ctx}"))
                        })?,
                        rv.as_double().ok_or_else(|| {
                            Error::Execution(format!("non-numeric operand {rv} in {ctx}"))
                        })?,
                    );
                    let out = match op {
                        BinaryOp::Plus => x + y,
                        BinaryOp::Minus => x - y,
                        BinaryOp::Multiply => x * y,
                        BinaryOp::Divide => {
                            if y == 0.0 {
                                b.push_null();
                                continue;
                            }
                            x / y
                        }
                        _ => unreachable!(),
                    };
                    b.push(&Value::Double(out))?;
                }
            }
            Ok(b.finish())
        }
        _ => Err(Error::Internal(format!("unhandled binary op {op}"))),
    }
}

/// Work accounting for the typed kernels: `kernel_ops` counts one op per
/// (compute node, evaluated row) on a typed fast path; `fallback_rows` counts
/// rows that went through the per-row `Value` path instead.
#[derive(Debug, Default, Clone, Copy)]
pub struct KernelStats {
    pub kernel_ops: u64,
    pub fallback_rows: u64,
}

impl KernelStats {
    /// True when every compute node ran on a typed kernel.
    pub fn all_kernel(&self) -> bool {
        self.fallback_rows == 0
    }
}

/// Result of [`filter_chunk`]: the surviving **physical** row indices of the
/// chunk (a subset of its selection vector when it carried one), plus kernel
/// work accounting.
#[derive(Debug)]
pub struct FilterOutcome {
    pub selected: Vec<u32>,
    pub stats: KernelStats,
}

/// Evaluate a predicate over a chunk and return the physical rows where it
/// is TRUE, without gathering any column data.
///
/// Only the chunk's *selected* rows are evaluated (all of them when the
/// chunk is flat), so a row removed by an upstream filter can never raise an
/// evaluation error here — matching the materialized path, which compacts
/// between filters.
pub fn filter_chunk(pred: &Expr, chunk: &Batch) -> Result<FilterOutcome> {
    let mut stats = KernelStats::default();
    let sel = chunk.selection();
    let c = eval_vec(pred, chunk, sel, &mut stats)?;
    if c.data_type() != DataType::Bool {
        return Err(Error::Execution(format!(
            "filter predicate produced {} not BOOLEAN",
            c.data_type()
        )));
    }
    let mut selected = Vec::new();
    for k in 0..c.len() {
        if !c.is_null(k) && c.value(k).as_bool() == Some(true) {
            let phys = match sel {
                Some(rows) => rows[k],
                None => k as u32,
            };
            selected.push(phys);
        }
    }
    Ok(FilterOutcome { selected, stats })
}

/// A binary-kernel operand: either a physical leaf column (indexed through
/// the selection map) or a dense intermediate (indexed positionally).
enum Operand<'a> {
    Leaf(&'a Column),
    Owned(Column),
}

impl Operand<'_> {
    #[inline]
    fn col(&self) -> &Column {
        match self {
            Operand::Leaf(c) => c,
            Operand::Owned(c) => c,
        }
    }

    /// Physical index of logical position `k` for this operand.
    #[inline]
    fn map(&self, sel: Option<&[u32]>, k: usize) -> usize {
        match (self, sel) {
            (Operand::Leaf(_), Some(rows)) => rows[k] as usize,
            _ => k,
        }
    }
}

fn operand<'a>(
    e: &Expr,
    batch: &'a Batch,
    sel: Option<&[u32]>,
    ks: &mut KernelStats,
) -> Result<Operand<'a>> {
    match e {
        Expr::Column(c) => {
            let i = batch.schema().index_of(c.qualifier.as_deref(), &c.name)?;
            Ok(Operand::Leaf(batch.column(i)))
        }
        other => Ok(Operand::Owned(eval_vec(other, batch, sel, ks)?)),
    }
}

/// Vectorized evaluation core: produce a dense column with one entry per
/// evaluated row (`sel` when present, else every batch row). Semantics are
/// identical to [`Expr::evaluate_rowwise`] restricted to those rows.
fn eval_vec(
    expr: &Expr,
    batch: &Batch,
    sel: Option<&[u32]>,
    ks: &mut KernelStats,
) -> Result<Column> {
    let n = sel.map_or_else(|| batch.num_rows(), <[u32]>::len);
    match expr {
        Expr::Column(c) => {
            let i = batch.schema().index_of(c.qualifier.as_deref(), &c.name)?;
            match sel {
                None => Ok(batch.column(i).clone()),
                Some(rows) => {
                    let idx: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
                    Ok(batch.column(i).take(&idx))
                }
            }
        }
        Expr::Literal(v) => {
            let dt = v.data_type().unwrap_or(DataType::Int);
            let mut b = ColumnBuilder::new(dt, n);
            for _ in 0..n {
                b.push(v)?;
            }
            Ok(b.finish())
        }
        Expr::Binary { left, op, right } => {
            let l = operand(left, batch, sel, ks)?;
            let r = operand(right, batch, sel, ks)?;
            eval_binary_vec(&l, *op, &r, sel, n, expr, ks)
        }
        Expr::Not(inner) => {
            let c = eval_vec(inner, batch, sel, ks)?;
            if let Some(vals) = c.bool_values() {
                ks.kernel_ops += n as u64;
                let mut out = Vec::with_capacity(n);
                let mut validity = Bitmap::new(n, true);
                let mut has_null = false;
                for (k, v) in vals.iter().enumerate() {
                    if c.is_null(k) {
                        validity.set(k, false);
                        has_null = true;
                        out.push(false);
                    } else {
                        out.push(!v);
                    }
                }
                return finish_col(ColumnData::Bool(out), validity, has_null);
            }
            ks.fallback_rows += n as u64;
            let mut b = ColumnBuilder::new(DataType::Bool, n);
            for k in 0..n {
                match c.value(k) {
                    Value::Null => b.push_null(),
                    Value::Bool(x) => b.push(&Value::Bool(!x))?,
                    other => {
                        return Err(Error::Execution(format!(
                            "NOT applied to non-boolean {other}"
                        )))
                    }
                }
            }
            Ok(b.finish())
        }
        Expr::IsNull { expr, negated } => {
            let op = operand(expr, batch, sel, ks)?;
            ks.kernel_ops += n as u64;
            let mut out = Vec::with_capacity(n);
            for k in 0..n {
                out.push(op.col().is_null(op.map(sel, k)) != *negated);
            }
            Ok(Column::from_data(ColumnData::Bool(out)))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let set: HashSet<Value> = list.iter().cloned().collect();
            let op = operand(expr, batch, sel, ks)?;
            eval_in_vec(&op, &set, *negated, sel, n, ks)
        }
        Expr::InSet {
            expr, set, negated, ..
        } => {
            let op = operand(expr, batch, sel, ks)?;
            eval_in_vec(&op, set, *negated, sel, n, ks)
        }
        Expr::CountIf(_) => Err(Error::Plan(
            "count(<predicate>) is only valid inside a cleansing rule \
             condition over a set reference"
                .into(),
        )),
        Expr::Case {
            branches,
            else_expr,
        } => {
            let dt = expr.data_type(batch.schema())?;
            let conds: Vec<Column> = branches
                .iter()
                .map(|(c, _)| eval_vec(c, batch, sel, ks))
                .collect::<Result<_>>()?;
            let results: Vec<Column> = branches
                .iter()
                .map(|(_, r)| eval_vec(r, batch, sel, ks))
                .collect::<Result<_>>()?;
            let else_col = else_expr
                .as_ref()
                .map(|e| eval_vec(e, batch, sel, ks))
                .transpose()?;
            let mut b = ColumnBuilder::new(dt, n);
            'row: for k in 0..n {
                for (c, r) in conds.iter().zip(&results) {
                    if c.value(k).as_bool() == Some(true) {
                        b.push(&r.value(k))?;
                        continue 'row;
                    }
                }
                match &else_col {
                    Some(e) => b.push(&e.value(k))?,
                    None => b.push_null(),
                }
            }
            Ok(b.finish())
        }
    }
}

#[inline]
fn cmp_truth(op: BinaryOp, o: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering;
    match op {
        BinaryOp::Eq => o == Ordering::Equal,
        BinaryOp::NotEq => o != Ordering::Equal,
        BinaryOp::Lt => o == Ordering::Less,
        BinaryOp::LtEq => o != Ordering::Greater,
        BinaryOp::Gt => o == Ordering::Greater,
        BinaryOp::GtEq => o != Ordering::Less,
        _ => unreachable!("cmp_truth on non-comparison"),
    }
}

fn finish_col(data: ColumnData, validity: Bitmap, has_null: bool) -> Result<Column> {
    Column::new(data, if has_null { Some(validity) } else { None })
}

/// A numeric payload widened to f64 on read — used by the mixed Int/Double
/// comparison and arithmetic kernels (`sql_cmp` compares those as f64).
enum NumSlice<'a> {
    I(&'a [i64]),
    F(&'a [f64]),
}

impl NumSlice<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            NumSlice::I(v) => v[i] as f64,
            NumSlice::F(v) => v[i],
        }
    }
}

fn num_slice(c: &Column) -> Option<NumSlice<'_>> {
    if let Some(v) = c.int_values() {
        return Some(NumSlice::I(v));
    }
    c.double_values().map(NumSlice::F)
}

fn eval_binary_vec(
    l: &Operand<'_>,
    op: BinaryOp,
    r: &Operand<'_>,
    sel: Option<&[u32]>,
    n: usize,
    ctx: &Expr,
    ks: &mut KernelStats,
) -> Result<Column> {
    let (lc, rc) = (l.col(), r.col());
    if op.is_comparison() {
        let mut out = Vec::with_capacity(n);
        let mut validity = Bitmap::new(n, true);
        let mut has_null = false;
        let null_at = |validity: &mut Bitmap, out: &mut Vec<bool>, k: usize| {
            validity.set(k, false);
            out.push(false);
        };
        // Int/Int compares exactly; any Double side compares as f64 (NaN
        // compares as NULL) — both mirror `Value::sql_cmp`.
        if let (Some(la), Some(ra)) = (lc.int_values(), rc.int_values()) {
            ks.kernel_ops += n as u64;
            for k in 0..n {
                let (li, ri) = (l.map(sel, k), r.map(sel, k));
                if lc.is_null(li) || rc.is_null(ri) {
                    has_null = true;
                    null_at(&mut validity, &mut out, k);
                } else {
                    out.push(cmp_truth(op, la[li].cmp(&ra[ri])));
                }
            }
            return finish_col(ColumnData::Bool(out), validity, has_null);
        }
        if let (Some(ln), Some(rn)) = (num_slice(lc), num_slice(rc)) {
            ks.kernel_ops += n as u64;
            for k in 0..n {
                let (li, ri) = (l.map(sel, k), r.map(sel, k));
                if lc.is_null(li) || rc.is_null(ri) {
                    has_null = true;
                    null_at(&mut validity, &mut out, k);
                } else {
                    match ln.get(li).partial_cmp(&rn.get(ri)) {
                        Some(o) => out.push(cmp_truth(op, o)),
                        None => {
                            has_null = true;
                            null_at(&mut validity, &mut out, k);
                        }
                    }
                }
            }
            return finish_col(ColumnData::Bool(out), validity, has_null);
        }
        if let (Some(la), Some(ra)) = (lc.str_values(), rc.str_values()) {
            ks.kernel_ops += n as u64;
            for k in 0..n {
                let (li, ri) = (l.map(sel, k), r.map(sel, k));
                if lc.is_null(li) || rc.is_null(ri) {
                    has_null = true;
                    null_at(&mut validity, &mut out, k);
                } else {
                    out.push(cmp_truth(op, la[li].as_ref().cmp(ra[ri].as_ref())));
                }
            }
            return finish_col(ColumnData::Bool(out), validity, has_null);
        }
        if let (Some(la), Some(ra)) = (lc.bool_values(), rc.bool_values()) {
            ks.kernel_ops += n as u64;
            for k in 0..n {
                let (li, ri) = (l.map(sel, k), r.map(sel, k));
                if lc.is_null(li) || rc.is_null(ri) {
                    has_null = true;
                    null_at(&mut validity, &mut out, k);
                } else {
                    out.push(cmp_truth(op, la[li].cmp(&ra[ri])));
                }
            }
            return finish_col(ColumnData::Bool(out), validity, has_null);
        }
        // Mixed incomparable types: `sql_cmp` yields NULL per row.
        ks.fallback_rows += n as u64;
        let mut b = ColumnBuilder::new(DataType::Bool, n);
        for k in 0..n {
            let (li, ri) = (l.map(sel, k), r.map(sel, k));
            match lc.value(li).sql_cmp(&rc.value(ri)) {
                None => b.push_null(),
                Some(o) => b.push(&Value::Bool(cmp_truth(op, o)))?,
            }
        }
        return Ok(b.finish());
    }
    match op {
        BinaryOp::And | BinaryOp::Or => {
            if let (Some(la), Some(ra)) = (lc.bool_values(), rc.bool_values()) {
                ks.kernel_ops += n as u64;
                let mut out = Vec::with_capacity(n);
                let mut validity = Bitmap::new(n, true);
                let mut has_null = false;
                for k in 0..n {
                    let (li, ri) = (l.map(sel, k), r.map(sel, k));
                    let lv = (!lc.is_null(li)).then(|| la[li]);
                    let rv = (!rc.is_null(ri)).then(|| ra[ri]);
                    match kleene(op, lv, rv) {
                        Some(v) => out.push(v),
                        None => {
                            validity.set(k, false);
                            has_null = true;
                            out.push(false);
                        }
                    }
                }
                return finish_col(ColumnData::Bool(out), validity, has_null);
            }
            ks.fallback_rows += n as u64;
            let mut b = ColumnBuilder::new(DataType::Bool, n);
            for k in 0..n {
                let (li, ri) = (l.map(sel, k), r.map(sel, k));
                let lv = if lc.is_null(li) {
                    None
                } else {
                    lc.value(li).as_bool()
                };
                let rv = if rc.is_null(ri) {
                    None
                } else {
                    rc.value(ri).as_bool()
                };
                match kleene(op, lv, rv) {
                    Some(v) => b.push(&Value::Bool(v))?,
                    None => b.push_null(),
                }
            }
            Ok(b.finish())
        }
        BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Multiply | BinaryOp::Divide => {
            let int_result = lc.data_type() == DataType::Int
                && rc.data_type() == DataType::Int
                && op != BinaryOp::Divide;
            if int_result {
                let (la, ra) = (lc.int_values().unwrap(), rc.int_values().unwrap());
                ks.kernel_ops += n as u64;
                let mut out = Vec::with_capacity(n);
                let mut validity = Bitmap::new(n, true);
                let mut has_null = false;
                for k in 0..n {
                    let (li, ri) = (l.map(sel, k), r.map(sel, k));
                    if lc.is_null(li) || rc.is_null(ri) {
                        validity.set(k, false);
                        has_null = true;
                        out.push(0);
                        continue;
                    }
                    let (x, y) = (la[li], ra[ri]);
                    let v = match op {
                        BinaryOp::Plus => x.checked_add(y),
                        BinaryOp::Minus => x.checked_sub(y),
                        BinaryOp::Multiply => x.checked_mul(y),
                        _ => unreachable!(),
                    };
                    match v {
                        Some(v) => out.push(v),
                        None => {
                            return Err(Error::Execution(format!(
                                "integer overflow evaluating {ctx}"
                            )))
                        }
                    }
                }
                return finish_col(ColumnData::Int(out), validity, has_null);
            }
            if let (Some(ln), Some(rn)) = (num_slice(lc), num_slice(rc)) {
                ks.kernel_ops += n as u64;
                let mut out = Vec::with_capacity(n);
                let mut validity = Bitmap::new(n, true);
                let mut has_null = false;
                for k in 0..n {
                    let (li, ri) = (l.map(sel, k), r.map(sel, k));
                    if lc.is_null(li) || rc.is_null(ri) {
                        validity.set(k, false);
                        has_null = true;
                        out.push(0.0);
                        continue;
                    }
                    let (x, y) = (ln.get(li), rn.get(ri));
                    let v = match op {
                        BinaryOp::Plus => x + y,
                        BinaryOp::Minus => x - y,
                        BinaryOp::Multiply => x * y,
                        BinaryOp::Divide => {
                            if y == 0.0 {
                                validity.set(k, false);
                                has_null = true;
                                out.push(0.0);
                                continue;
                            }
                            x / y
                        }
                        _ => unreachable!(),
                    };
                    out.push(v);
                }
                return finish_col(ColumnData::Double(out), validity, has_null);
            }
            // Non-numeric operand: reproduce the row-wise error behavior on
            // the evaluated rows.
            ks.fallback_rows += n as u64;
            let mut b = ColumnBuilder::new(DataType::Double, n);
            for k in 0..n {
                let (li, ri) = (l.map(sel, k), r.map(sel, k));
                let (lv, rv) = (lc.value(li), rc.value(ri));
                if lv.is_null() || rv.is_null() {
                    b.push_null();
                    continue;
                }
                let x = lv.as_double().ok_or_else(|| {
                    Error::Execution(format!("non-numeric operand {lv} in {ctx}"))
                })?;
                let y = rv.as_double().ok_or_else(|| {
                    Error::Execution(format!("non-numeric operand {rv} in {ctx}"))
                })?;
                let v = match op {
                    BinaryOp::Plus => x + y,
                    BinaryOp::Minus => x - y,
                    BinaryOp::Multiply => x * y,
                    BinaryOp::Divide => {
                        if y == 0.0 {
                            b.push_null();
                            continue;
                        }
                        x / y
                    }
                    _ => unreachable!(),
                };
                b.push(&Value::Double(v))?;
            }
            Ok(b.finish())
        }
        _ => Err(Error::Internal(format!("unhandled binary op {op}"))),
    }
}

/// Kleene three-valued AND/OR.
#[inline]
fn kleene(op: BinaryOp, lv: Option<bool>, rv: Option<bool>) -> Option<bool> {
    if op == BinaryOp::And {
        match (lv, rv) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        }
    } else {
        match (lv, rv) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        }
    }
}

/// Typed `IN` kernel: extract the set elements matching the probe column's
/// type once (structural equality means cross-type elements can never hit),
/// then probe native values.
fn eval_in_vec(
    op: &Operand<'_>,
    set: &HashSet<Value>,
    negated: bool,
    sel: Option<&[u32]>,
    n: usize,
    ks: &mut KernelStats,
) -> Result<Column> {
    let c = op.col();
    let mut out = Vec::with_capacity(n);
    let mut validity = Bitmap::new(n, true);
    let mut has_null = false;
    macro_rules! probe {
        ($vals:expr, $hit:expr) => {{
            ks.kernel_ops += n as u64;
            let vals = $vals;
            for k in 0..n {
                let i = op.map(sel, k);
                if c.is_null(i) {
                    validity.set(k, false);
                    has_null = true;
                    out.push(false);
                } else {
                    let hit: bool = $hit(&vals[i]);
                    out.push(hit != negated);
                }
            }
            finish_col(ColumnData::Bool(out), validity, has_null)
        }};
    }
    match c.data_type() {
        DataType::Int => {
            let ints: HashSet<i64> = set.iter().filter_map(Value::as_int).collect();
            probe!(c.int_values().unwrap(), |v: &i64| ints.contains(v))
        }
        DataType::Str => {
            let strs: HashSet<&str> = set.iter().filter_map(Value::as_str).collect();
            probe!(c.str_values().unwrap(), |v: &Arc<str>| strs
                .contains(v.as_ref()))
        }
        DataType::Double => {
            let bits: HashSet<u64> = set
                .iter()
                .filter_map(|v| match v {
                    Value::Double(d) => Some(d.to_bits()),
                    _ => None,
                })
                .collect();
            probe!(c.double_values().unwrap(), |v: &f64| bits
                .contains(&v.to_bits()))
        }
        DataType::Bool => {
            let bools: HashSet<bool> = set.iter().filter_map(Value::as_bool).collect();
            probe!(c.bool_values().unwrap(), |v: &bool| bools.contains(v))
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("))")
            }
            Expr::InSet {
                expr,
                negated,
                label,
                ..
            } => write!(
                f,
                "({expr} {}IN ({label}))",
                if *negated { "NOT " } else { "" }
            ),
            Expr::CountIf(inner) => write!(f, "count({inner})"),
            Expr::Case {
                branches,
                else_expr,
            } => {
                f.write_str("CASE")?;
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
        }
    }
}

/// Split an expression into its top-level AND-ed conjuncts.
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            other => out.push(other.clone()),
        }
    }
    walk(expr, &mut out);
    out
}

/// AND together a list of predicates (`None` if empty).
pub fn conjoin(mut exprs: Vec<Expr>) -> Option<Expr> {
    if exprs.is_empty() {
        return None;
    }
    let mut acc = exprs.remove(0);
    for e in exprs {
        acc = acc.and(e);
    }
    Some(acc)
}

/// OR together a list of predicates (`None` if empty).
pub fn disjoin(mut exprs: Vec<Expr>) -> Option<Expr> {
    if exprs.is_empty() {
        return None;
    }
    let mut acc = exprs.remove(0);
    for e in exprs {
        acc = acc.or(e);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;
    use crate::schema::Field;

    fn batch() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
            Field::new("s", DataType::Str),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::Int(1), Value::Int(10), Value::str("x")],
                vec![Value::Int(2), Value::Null, Value::str("y")],
                vec![Value::Int(3), Value::Int(30), Value::str("x")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn comparison_with_null_is_null() {
        let b = batch();
        let e = Expr::col("b").gt(Expr::lit(5i64));
        let c = e.evaluate(&b).unwrap();
        assert_eq!(c.value(0), Value::Bool(true));
        assert!(c.is_null(1));
        assert_eq!(e.filter_indices(&b).unwrap(), vec![0, 2]);
    }

    #[test]
    fn kleene_and_or() {
        let b = batch();
        // (b > 5) OR (a = 2): row 1 has NULL OR TRUE = TRUE
        let e = Expr::col("b")
            .gt(Expr::lit(5i64))
            .or(Expr::col("a").eq(Expr::lit(2i64)));
        assert_eq!(e.filter_indices(&b).unwrap(), vec![0, 1, 2]);
        // (b > 5) AND (a = 2): row 1 has NULL AND TRUE = NULL -> filtered out
        let e = Expr::col("b")
            .gt(Expr::lit(5i64))
            .and(Expr::col("a").eq(Expr::lit(2i64)));
        assert!(e.filter_indices(&b).unwrap().is_empty());
    }

    #[test]
    fn arithmetic_types() {
        let b = batch();
        let e = Expr::binary(Expr::col("a"), BinaryOp::Plus, Expr::lit(100i64));
        let c = e.evaluate(&b).unwrap();
        assert_eq!(c.data_type(), DataType::Int);
        assert_eq!(c.value(2), Value::Int(103));
        let e = Expr::binary(Expr::col("a"), BinaryOp::Divide, Expr::lit(2i64));
        let c = e.evaluate(&b).unwrap();
        assert_eq!(c.data_type(), DataType::Double);
        assert_eq!(c.value(0), Value::Double(0.5));
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let b = batch();
        let e = Expr::binary(Expr::col("b"), BinaryOp::Minus, Expr::col("a"));
        let c = e.evaluate(&b).unwrap();
        assert!(c.is_null(1));
        assert_eq!(c.value(0), Value::Int(9));
    }

    #[test]
    fn is_null_and_not() {
        let b = batch();
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("b")),
            negated: false,
        };
        assert_eq!(e.filter_indices(&b).unwrap(), vec![1]);
        let e = Expr::Not(Box::new(Expr::col("s").eq(Expr::lit("x"))));
        assert_eq!(e.filter_indices(&b).unwrap(), vec![1]);
    }

    #[test]
    fn in_list() {
        let b = batch();
        let e = Expr::InList {
            expr: Box::new(Expr::col("s")),
            list: vec![Value::str("x"), Value::str("z")],
            negated: false,
        };
        assert_eq!(e.filter_indices(&b).unwrap(), vec![0, 2]);
    }

    #[test]
    fn case_expression() {
        let b = batch();
        let e = Expr::Case {
            branches: vec![(Expr::col("s").eq(Expr::lit("x")), Expr::lit(1i64))],
            else_expr: Some(Box::new(Expr::lit(0i64))),
        };
        let c = e.evaluate(&b).unwrap();
        assert_eq!(
            (0..3).map(|i| c.value(i)).collect::<Vec<_>>(),
            vec![Value::Int(1), Value::Int(0), Value::Int(1)]
        );
    }

    #[test]
    fn case_without_else_yields_null() {
        let b = batch();
        let e = Expr::Case {
            branches: vec![(Expr::col("a").eq(Expr::lit(1i64)), Expr::lit(9i64))],
            else_expr: None,
        };
        let c = e.evaluate(&b).unwrap();
        assert_eq!(c.value(0), Value::Int(9));
        assert!(c.is_null(1));
    }

    #[test]
    fn split_and_conjoin_roundtrip() {
        let e = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").gt(Expr::lit(2i64)))
            .and(Expr::col("s").eq(Expr::lit("x")));
        let parts = split_conjuncts(&e);
        assert_eq!(parts.len(), 3);
        let back = conjoin(parts).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn referenced_columns_collects_all() {
        let e = Expr::col("t.a").eq(Expr::col("b"));
        let mut cols = vec![];
        e.referenced_columns(&mut cols);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].qualifier.as_deref(), Some("t"));
    }

    #[test]
    fn transform_rewrites_columns() {
        let e = Expr::col("a").eq(Expr::lit(1i64));
        let out = e.transform(&|node| match node {
            Expr::Column(c) if c.name == "a" => Expr::col("z"),
            other => other,
        });
        assert_eq!(out, Expr::col("z").eq(Expr::lit(1i64)));
    }

    #[test]
    fn overflow_is_an_error() {
        let schema = schema_ref(Schema::new(vec![Field::new("a", DataType::Int)]));
        let b = Batch::from_rows(schema, &[vec![Value::Int(i64::MAX)]]).unwrap();
        let e = Expr::binary(Expr::col("a"), BinaryOp::Plus, Expr::lit(1i64));
        assert!(e.evaluate(&b).is_err());
    }
}
