//! Columnar storage: typed value vectors with validity bitmaps.
//!
//! Operators exchange whole columns. Each `Column` is a typed vector plus an
//! optional validity bitmap (absent means "no nulls"), so the common all-valid
//! case pays nothing for null tracking.

use crate::error::{Error, Result};
use crate::value::{DataType, Value};
use std::sync::Arc;

/// A packed bitmap, one bit per row; bit set = valid (non-null).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all set to `value`.
    pub fn new(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let fill = if value { u64::MAX } else { 0 };
        let mut words = vec![fill; nwords];
        if value {
            // Clear the padding bits past `len` so popcount stays exact.
            let rem = len % 64;
            if rem != 0 {
                if let Some(last) = words.last_mut() {
                    *last &= (1u64 << rem) - 1;
                }
            }
        }
        Bitmap { words, len }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            self.set(self.len - 1, true);
        }
    }

    /// Number of set (valid) bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_set() == self.len
    }
}

/// The typed payload of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Double(Vec<f64>),
    Str(Vec<Arc<str>>),
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Double(_) => DataType::Double,
            ColumnData::Str(_) => DataType::Str,
        }
    }

    fn with_capacity(dt: DataType, cap: usize) -> ColumnData {
        match dt {
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Double => ColumnData::Double(Vec::with_capacity(cap)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        }
    }
}

/// A column: typed data + optional validity bitmap (`None` = all valid).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Option<Bitmap>,
}

impl Column {
    pub fn new(data: ColumnData, validity: Option<Bitmap>) -> Result<Self> {
        if let Some(v) = &validity {
            if v.len() != data.len() {
                return Err(Error::Schema(format!(
                    "validity length {} != data length {}",
                    v.len(),
                    data.len()
                )));
            }
        }
        Ok(Column { data, validity })
    }

    /// An all-valid column from raw data.
    pub fn from_data(data: ColumnData) -> Self {
        Column {
            data,
            validity: None,
        }
    }

    /// Build a column of the given type from scalar values (NULLs allowed).
    pub fn from_values(dt: DataType, values: &[Value]) -> Result<Self> {
        let mut b = ColumnBuilder::new(dt, values.len());
        for v in values {
            b.push(v)?;
        }
        Ok(b.finish())
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match &self.validity {
            Some(b) => !b.get(i),
            None => false,
        }
    }

    pub fn null_count(&self) -> usize {
        match &self.validity {
            Some(b) => b.len() - b.count_set(),
            None => 0,
        }
    }

    /// The scalar value at row `i` (clones the payload — cheap for all types
    /// because strings are `Arc`).
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Double(v) => Value::Double(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// Non-null integer accessor (panics on wrong type; `None` for NULL).
    #[inline]
    pub fn int_at(&self, i: usize) -> Option<i64> {
        if self.is_null(i) {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[i]),
            _ => panic!("int_at on non-int column"),
        }
    }

    /// Non-null string accessor (panics on wrong type; `None` for NULL).
    #[inline]
    pub fn str_at(&self, i: usize) -> Option<&str> {
        if self.is_null(i) {
            return None;
        }
        match &self.data {
            ColumnData::Str(v) => Some(&v[i]),
            _ => panic!("str_at on non-str column"),
        }
    }

    /// Gather rows by index ("take"): the output's row `k` is this column's
    /// row `indices[k]`. The workhorse behind filter, sort, and join.
    pub fn take(&self, indices: &[usize]) -> Column {
        let validity = self.validity.as_ref().map(|v| {
            let mut out = Bitmap::new(indices.len(), false);
            for (k, &i) in indices.iter().enumerate() {
                if v.get(i) {
                    out.set(k, true);
                }
            }
            out
        });
        let data = match &self.data {
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Double(v) => ColumnData::Double(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(indices.iter().map(|&i| v[i].clone()).collect()),
        };
        Column { data, validity }
    }

    /// Concatenate columns of the same type.
    pub fn concat(parts: &[&Column]) -> Result<Column> {
        let Some(first) = parts.first() else {
            return Err(Error::Internal("concat of zero columns".into()));
        };
        let dt = first.data_type();
        let total: usize = parts.iter().map(|c| c.len()).sum();
        let mut b = ColumnBuilder::new(dt, total);
        for c in parts {
            if c.data_type() != dt {
                return Err(Error::Schema(format!(
                    "concat type mismatch: {} vs {dt}",
                    c.data_type()
                )));
            }
            for i in 0..c.len() {
                b.push(&c.value(i))?;
            }
        }
        Ok(b.finish())
    }

    /// Iterate scalar values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }
}

/// Incremental column construction.
#[derive(Debug)]
pub struct ColumnBuilder {
    data: ColumnData,
    validity: Bitmap,
    has_null: bool,
}

impl ColumnBuilder {
    pub fn new(dt: DataType, capacity: usize) -> Self {
        ColumnBuilder {
            data: ColumnData::with_capacity(dt, capacity),
            validity: Bitmap::new(0, false),
            has_null: false,
        }
    }

    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a value; NULL is always accepted, otherwise the value's type
    /// must match (Int is widened to Double for Double columns).
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (&mut self.data, v) {
            (_, Value::Null) => {
                self.push_null_slot();
                return Ok(());
            }
            (ColumnData::Bool(d), Value::Bool(x)) => d.push(*x),
            (ColumnData::Int(d), Value::Int(x)) => d.push(*x),
            (ColumnData::Double(d), Value::Double(x)) => d.push(*x),
            (ColumnData::Double(d), Value::Int(x)) => d.push(*x as f64),
            (ColumnData::Str(d), Value::Str(x)) => d.push(x.clone()),
            (d, v) => {
                return Err(Error::Schema(format!(
                    "cannot append {v} to {} column",
                    d.data_type()
                )))
            }
        }
        self.validity.push(true);
        Ok(())
    }

    pub fn push_null(&mut self) {
        self.push_null_slot();
    }

    fn push_null_slot(&mut self) {
        match &mut self.data {
            ColumnData::Bool(d) => d.push(false),
            ColumnData::Int(d) => d.push(0),
            ColumnData::Double(d) => d.push(0.0),
            ColumnData::Str(d) => d.push(Arc::from("")),
        }
        self.validity.push(false);
        self.has_null = true;
    }

    pub fn finish(self) -> Column {
        Column {
            data: self.data,
            validity: if self.has_null {
                Some(self.validity)
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::new(130, true);
        assert_eq!(b.count_set(), 130);
        assert!(b.all_set());
        b.set(129, false);
        assert!(!b.get(129));
        assert_eq!(b.count_set(), 129);
        b.push(true);
        assert_eq!(b.len(), 131);
        assert!(b.get(130));
    }

    #[test]
    fn bitmap_push_from_empty() {
        let mut b = Bitmap::new(0, false);
        for i in 0..200 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 200);
        assert_eq!(b.count_set(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn builder_roundtrip_with_nulls() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        let c = Column::from_values(DataType::Int, &vals).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.int_at(1), None);
        assert_eq!(c.int_at(2), Some(3));
    }

    #[test]
    fn builder_type_mismatch_rejected() {
        let mut b = ColumnBuilder::new(DataType::Int, 1);
        assert!(b.push(&Value::str("x")).is_err());
        assert!(b.push(&Value::Int(5)).is_ok());
    }

    #[test]
    fn int_widens_to_double() {
        let mut b = ColumnBuilder::new(DataType::Double, 2);
        b.push(&Value::Int(2)).unwrap();
        b.push(&Value::Double(0.5)).unwrap();
        let c = b.finish();
        assert_eq!(c.value(0), Value::Double(2.0));
    }

    #[test]
    fn take_preserves_nulls() {
        let c = Column::from_values(
            DataType::Str,
            &[Value::str("a"), Value::Null, Value::str("c")],
        )
        .unwrap();
        let t = c.take(&[2, 1, 1, 0]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.value(0), Value::str("c"));
        assert!(t.is_null(1) && t.is_null(2));
        assert_eq!(t.value(3), Value::str("a"));
    }

    #[test]
    fn concat_columns() {
        let a = Column::from_values(DataType::Int, &[Value::Int(1), Value::Null]).unwrap();
        let b = Column::from_values(DataType::Int, &[Value::Int(3)]).unwrap();
        let c = Column::concat(&[&a, &b]).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(2), Value::Int(3));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn all_valid_column_has_no_bitmap() {
        let c = Column::from_values(DataType::Int, &[Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(c.null_count(), 0);
        assert!(!c.is_null(0));
    }
}
