//! Columnar storage: typed value vectors with validity bitmaps.
//!
//! Operators exchange whole columns. Each `Column` is a typed vector plus an
//! optional validity bitmap (absent means "no nulls"), so the common all-valid
//! case pays nothing for null tracking.
//!
//! Payload and bitmap are held behind `Arc` together with an `(offset, len)`
//! window, so slicing a column — and therefore slicing a `Batch` into
//! execution chunks — is O(1) and never copies cell data. Builders still
//! produce a full-width window over a freshly built vector, so the change is
//! invisible to code that only constructs and reads columns.

use crate::error::{Error, Result};
use crate::value::{DataType, Value};
use std::sync::Arc;

/// A packed bitmap, one bit per row; bit set = valid (non-null).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` bits, all set to `value`.
    pub fn new(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let fill = if value { u64::MAX } else { 0 };
        let mut words = vec![fill; nwords];
        if value {
            // Clear the padding bits past `len` so popcount stays exact.
            let rem = len % 64;
            if rem != 0 {
                if let Some(last) = words.last_mut() {
                    *last &= (1u64 << rem) - 1;
                }
            }
        }
        Bitmap { words, len }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        if value {
            self.set(self.len - 1, true);
        }
    }

    /// Number of set (valid) bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits in `[start, start + count)`, word-at-a-time.
    pub fn count_set_in(&self, start: usize, count: usize) -> usize {
        debug_assert!(start + count <= self.len);
        let end = start + count;
        let mut total = 0usize;
        let mut i = start;
        while i < end {
            let word = i / 64;
            let lo = i % 64;
            let hi = if word == (end - 1) / 64 && !end.is_multiple_of(64) {
                end % 64
            } else {
                64
            };
            let mut w = self.words[word] >> lo;
            if hi - lo < 64 {
                w &= (1u64 << (hi - lo)) - 1;
            }
            total += w.count_ones() as usize;
            i += hi - lo;
        }
        total
    }

    /// True if every bit is set.
    pub fn all_set(&self) -> bool {
        self.count_set() == self.len
    }
}

/// The typed payload of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Double(Vec<f64>),
    Str(Vec<Arc<str>>),
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Double(_) => DataType::Double,
            ColumnData::Str(_) => DataType::Str,
        }
    }

    fn with_capacity(dt: DataType, cap: usize) -> ColumnData {
        match dt {
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Double => ColumnData::Double(Vec::with_capacity(cap)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        }
    }
}

/// A column: a shared typed payload plus an optional validity bitmap
/// (`None` = all valid), viewed through an `(offset, len)` window.
///
/// Cloning and slicing only bump reference counts; the payload is immutable
/// once built. Equality is *semantic* — two columns are equal when they have
/// the same type, length, and per-row values, regardless of how their
/// windows line up with the underlying buffers.
#[derive(Debug, Clone)]
pub struct Column {
    data: Arc<ColumnData>,
    validity: Option<Arc<Bitmap>>,
    offset: usize,
    len: usize,
}

impl Column {
    pub fn new(data: ColumnData, validity: Option<Bitmap>) -> Result<Self> {
        if let Some(v) = &validity {
            if v.len() != data.len() {
                return Err(Error::Schema(format!(
                    "validity length {} != data length {}",
                    v.len(),
                    data.len()
                )));
            }
        }
        let len = data.len();
        Ok(Column {
            data: Arc::new(data),
            validity: validity.map(Arc::new),
            offset: 0,
            len,
        })
    }

    /// An all-valid column from raw data.
    pub fn from_data(data: ColumnData) -> Self {
        let len = data.len();
        Column {
            data: Arc::new(data),
            validity: None,
            offset: 0,
            len,
        }
    }

    /// Build a column of the given type from scalar values (NULLs allowed).
    pub fn from_values(dt: DataType, values: &[Value]) -> Result<Self> {
        let mut b = ColumnBuilder::new(dt, values.len());
        for v in values {
            b.push(v)?;
        }
        Ok(b.finish())
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// The underlying payload. The window may cover only part of it; use the
    /// typed slice accessors (`int_values`, …) for window-relative access.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Zero-copy sub-view: rows `[offset, offset + len)` of this column.
    /// O(1) — shares the payload and bitmap.
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        assert!(
            offset + len <= self.len,
            "slice [{offset}, {offset}+{len}) out of bounds for column of {} rows",
            self.len
        );
        Column {
            data: self.data.clone(),
            validity: self.validity.clone(),
            offset: self.offset + offset,
            len,
        }
    }

    /// The window as a native `&[i64]`, or `None` for non-int columns.
    /// NULL slots hold an arbitrary placeholder — check `is_null` first.
    #[inline]
    pub fn int_values(&self) -> Option<&[i64]> {
        match self.data.as_ref() {
            ColumnData::Int(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// The window as a native `&[f64]`, or `None` for non-double columns.
    #[inline]
    pub fn double_values(&self) -> Option<&[f64]> {
        match self.data.as_ref() {
            ColumnData::Double(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// The window as `&[bool]`, or `None` for non-bool columns.
    #[inline]
    pub fn bool_values(&self) -> Option<&[bool]> {
        match self.data.as_ref() {
            ColumnData::Bool(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    /// The window as `&[Arc<str>]`, or `None` for non-string columns.
    #[inline]
    pub fn str_values(&self) -> Option<&[Arc<str>]> {
        match self.data.as_ref() {
            ColumnData::Str(v) => Some(&v[self.offset..self.offset + self.len]),
            _ => None,
        }
    }

    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        match &self.validity {
            Some(b) => !b.get(self.offset + i),
            None => false,
        }
    }

    /// Whether any row in the window is NULL — one popcount, not a scan.
    pub fn has_nulls(&self) -> bool {
        self.null_count() > 0
    }

    pub fn null_count(&self) -> usize {
        match &self.validity {
            Some(b) => self.len - b.count_set_in(self.offset, self.len),
            None => 0,
        }
    }

    /// The scalar value at row `i` (clones the payload — cheap for all types
    /// because strings are `Arc`).
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match self.data.as_ref() {
            ColumnData::Bool(v) => Value::Bool(v[self.offset + i]),
            ColumnData::Int(v) => Value::Int(v[self.offset + i]),
            ColumnData::Double(v) => Value::Double(v[self.offset + i]),
            ColumnData::Str(v) => Value::Str(v[self.offset + i].clone()),
        }
    }

    /// Non-null integer accessor (panics on wrong type; `None` for NULL).
    #[inline]
    pub fn int_at(&self, i: usize) -> Option<i64> {
        if self.is_null(i) {
            return None;
        }
        match self.data.as_ref() {
            ColumnData::Int(v) => Some(v[self.offset + i]),
            _ => panic!("int_at on non-int column"),
        }
    }

    /// Non-null string accessor (panics on wrong type; `None` for NULL).
    #[inline]
    pub fn str_at(&self, i: usize) -> Option<&str> {
        if self.is_null(i) {
            return None;
        }
        match self.data.as_ref() {
            ColumnData::Str(v) => Some(&v[self.offset + i]),
            _ => panic!("str_at on non-str column"),
        }
    }

    /// Gather rows by index ("take"): the output's row `k` is this column's
    /// row `indices[k]`. The workhorse behind filter, sort, and join.
    pub fn take(&self, indices: &[usize]) -> Column {
        let validity = self.validity.as_ref().map(|v| {
            let mut out = Bitmap::new(indices.len(), false);
            for (k, &i) in indices.iter().enumerate() {
                if v.get(self.offset + i) {
                    out.set(k, true);
                }
            }
            out
        });
        let off = self.offset;
        let data = match self.data.as_ref() {
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[off + i]).collect()),
            ColumnData::Int(v) => ColumnData::Int(indices.iter().map(|&i| v[off + i]).collect()),
            ColumnData::Double(v) => {
                ColumnData::Double(indices.iter().map(|&i| v[off + i]).collect())
            }
            ColumnData::Str(v) => {
                ColumnData::Str(indices.iter().map(|&i| v[off + i].clone()).collect())
            }
        };
        let len = data.len();
        Column {
            data: Arc::new(data),
            validity: validity.map(Arc::new),
            offset: 0,
            len,
        }
    }

    /// Concatenate columns of the same type.
    pub fn concat(parts: &[&Column]) -> Result<Column> {
        let Some(first) = parts.first() else {
            return Err(Error::Internal("concat of zero columns".into()));
        };
        let dt = first.data_type();
        let total: usize = parts.iter().map(|c| c.len()).sum();
        let mut b = ColumnBuilder::new(dt, total);
        for c in parts {
            if c.data_type() != dt {
                return Err(Error::Schema(format!(
                    "concat type mismatch: {} vs {dt}",
                    c.data_type()
                )));
            }
            for i in 0..c.len() {
                b.push(&c.value(i))?;
            }
        }
        Ok(b.finish())
    }

    /// Iterate scalar values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }
}

impl PartialEq for Column {
    /// Semantic equality: same type, length, and per-row (structural) values.
    /// Window offsets and buffer sharing are representation details.
    fn eq(&self, other: &Column) -> bool {
        if self.len != other.len || self.data_type() != other.data_type() {
            return false;
        }
        (0..self.len).all(|i| self.value(i) == other.value(i))
    }
}

/// Incremental column construction.
#[derive(Debug)]
pub struct ColumnBuilder {
    data: ColumnData,
    validity: Bitmap,
    has_null: bool,
}

impl ColumnBuilder {
    pub fn new(dt: DataType, capacity: usize) -> Self {
        ColumnBuilder {
            data: ColumnData::with_capacity(dt, capacity),
            validity: Bitmap::new(0, false),
            has_null: false,
        }
    }

    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a value; NULL is always accepted, otherwise the value's type
    /// must match (Int is widened to Double for Double columns).
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (&mut self.data, v) {
            (_, Value::Null) => {
                self.push_null_slot();
                return Ok(());
            }
            (ColumnData::Bool(d), Value::Bool(x)) => d.push(*x),
            (ColumnData::Int(d), Value::Int(x)) => d.push(*x),
            (ColumnData::Double(d), Value::Double(x)) => d.push(*x),
            (ColumnData::Double(d), Value::Int(x)) => d.push(*x as f64),
            (ColumnData::Str(d), Value::Str(x)) => d.push(x.clone()),
            (d, v) => {
                return Err(Error::Schema(format!(
                    "cannot append {v} to {} column",
                    d.data_type()
                )))
            }
        }
        self.validity.push(true);
        Ok(())
    }

    pub fn push_null(&mut self) {
        self.push_null_slot();
    }

    fn push_null_slot(&mut self) {
        match &mut self.data {
            ColumnData::Bool(d) => d.push(false),
            ColumnData::Int(d) => d.push(0),
            ColumnData::Double(d) => d.push(0.0),
            ColumnData::Str(d) => d.push(Arc::from("")),
        }
        self.validity.push(false);
        self.has_null = true;
    }

    pub fn finish(self) -> Column {
        let len = self.data.len();
        Column {
            data: Arc::new(self.data),
            validity: if self.has_null {
                Some(Arc::new(self.validity))
            } else {
                None
            },
            offset: 0,
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::new(130, true);
        assert_eq!(b.count_set(), 130);
        assert!(b.all_set());
        b.set(129, false);
        assert!(!b.get(129));
        assert_eq!(b.count_set(), 129);
        b.push(true);
        assert_eq!(b.len(), 131);
        assert!(b.get(130));
    }

    #[test]
    fn bitmap_push_from_empty() {
        let mut b = Bitmap::new(0, false);
        for i in 0..200 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 200);
        assert_eq!(b.count_set(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn bitmap_ranged_popcount() {
        let mut b = Bitmap::new(0, false);
        for i in 0..300 {
            b.push(i % 3 == 0);
        }
        for (start, count) in [(0, 300), (1, 299), (63, 66), (64, 64), (70, 1), (299, 0)] {
            let expect = (start..start + count).filter(|i| b.get(*i)).count();
            assert_eq!(b.count_set_in(start, count), expect, "[{start}, +{count})");
        }
    }

    #[test]
    fn builder_roundtrip_with_nulls() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        let c = Column::from_values(DataType::Int, &vals).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.int_at(1), None);
        assert_eq!(c.int_at(2), Some(3));
    }

    #[test]
    fn builder_type_mismatch_rejected() {
        let mut b = ColumnBuilder::new(DataType::Int, 1);
        assert!(b.push(&Value::str("x")).is_err());
        assert!(b.push(&Value::Int(5)).is_ok());
    }

    #[test]
    fn int_widens_to_double() {
        let mut b = ColumnBuilder::new(DataType::Double, 2);
        b.push(&Value::Int(2)).unwrap();
        b.push(&Value::Double(0.5)).unwrap();
        let c = b.finish();
        assert_eq!(c.value(0), Value::Double(2.0));
    }

    #[test]
    fn take_preserves_nulls() {
        let c = Column::from_values(
            DataType::Str,
            &[Value::str("a"), Value::Null, Value::str("c")],
        )
        .unwrap();
        let t = c.take(&[2, 1, 1, 0]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.value(0), Value::str("c"));
        assert!(t.is_null(1) && t.is_null(2));
        assert_eq!(t.value(3), Value::str("a"));
    }

    #[test]
    fn concat_columns() {
        let a = Column::from_values(DataType::Int, &[Value::Int(1), Value::Null]).unwrap();
        let b = Column::from_values(DataType::Int, &[Value::Int(3)]).unwrap();
        let c = Column::concat(&[&a, &b]).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(2), Value::Int(3));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn all_valid_column_has_no_bitmap() {
        let c = Column::from_values(DataType::Int, &[Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(c.null_count(), 0);
        assert!(!c.is_null(0));
    }

    #[test]
    fn slice_is_a_zero_copy_window() {
        let vals: Vec<Value> = (0..10)
            .map(|i| {
                if i % 4 == 3 {
                    Value::Null
                } else {
                    Value::Int(i)
                }
            })
            .collect();
        let c = Column::from_values(DataType::Int, &vals).unwrap();
        let s = c.slice(2, 5); // rows 2..7
        assert_eq!(s.len(), 5);
        assert_eq!(s.value(0), Value::Int(2));
        assert!(s.is_null(1)); // original row 3
        let expect_nulls = (2..7).filter(|i| i % 4 == 3).count();
        assert_eq!(s.null_count(), expect_nulls);
        // Nested slices compose.
        let s2 = s.slice(1, 3); // original rows 3..6
        assert_eq!(s2.value(1), Value::Int(4));
        assert!(s2.is_null(0));
        // take() through a window gathers window-relative rows.
        let t = s2.take(&[2, 0]);
        assert_eq!(t.value(0), Value::Int(5));
        assert!(t.is_null(1));
    }

    #[test]
    fn equality_is_semantic_across_windows() {
        let c = Column::from_values(
            DataType::Int,
            &[Value::Int(9), Value::Int(1), Value::Null, Value::Int(9)],
        )
        .unwrap();
        let windowed = c.slice(1, 2);
        let rebuilt = Column::from_values(DataType::Int, &[Value::Int(1), Value::Null]).unwrap();
        assert_eq!(windowed, rebuilt);
        assert_ne!(windowed, c.slice(0, 2));
    }

    #[test]
    fn typed_slice_accessors_follow_the_window() {
        let c = Column::from_values(
            DataType::Int,
            &[Value::Int(10), Value::Int(20), Value::Int(30)],
        )
        .unwrap();
        assert_eq!(c.int_values().unwrap(), &[10, 20, 30]);
        assert_eq!(c.slice(1, 2).int_values().unwrap(), &[20, 30]);
        assert!(c.double_values().is_none());
        let d = Column::from_values(DataType::Double, &[Value::Double(0.5)]).unwrap();
        assert_eq!(d.double_values().unwrap(), &[0.5]);
    }
}
