//! Normalization of comparison conjuncts into canonical constraint forms.
//!
//! Both the rule compiler (to derive window frame bounds from sequence-key
//! conditions like `B.rtime - A.rtime < 5 mins`) and the rewrite engine's
//! transitivity analysis (paper §5.2) need conjuncts in one of two shapes:
//!
//! * **difference constraint** — `x OP y + c` between two columns,
//! * **constant constraint** — `x OP c` between a column and a literal.
//!
//! This module recognizes the syntactic variants (`x - y OP c`,
//! `x OP y - c`, reversed operand order, ...) and normalizes them.

use crate::expr::{BinaryOp, ColumnRef, Expr};
use crate::value::Value;
use std::fmt;

/// Comparison operator of a normalized constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    pub fn from_binary(op: BinaryOp) -> Option<CmpOp> {
        Some(match op {
            BinaryOp::Eq => CmpOp::Eq,
            BinaryOp::NotEq => CmpOp::NotEq,
            BinaryOp::Lt => CmpOp::Lt,
            BinaryOp::LtEq => CmpOp::LtEq,
            BinaryOp::Gt => CmpOp::Gt,
            BinaryOp::GtEq => CmpOp::GtEq,
            _ => return None,
        })
    }

    pub fn to_binary(self) -> BinaryOp {
        match self {
            CmpOp::Eq => BinaryOp::Eq,
            CmpOp::NotEq => BinaryOp::NotEq,
            CmpOp::Lt => BinaryOp::Lt,
            CmpOp::LtEq => BinaryOp::LtEq,
            CmpOp::Gt => BinaryOp::Gt,
            CmpOp::GtEq => BinaryOp::GtEq,
        }
    }

    /// Operator with operands swapped: `x OP y` ⇔ `y OP.swap() x`.
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
            other => other,
        }
    }

    /// Is this an upper bound on the left operand (`<` or `<=` or `=`)?
    pub fn is_upper(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::LtEq | CmpOp::Eq)
    }

    /// Is this a lower bound on the left operand (`>` or `>=` or `=`)?
    pub fn is_lower(self) -> bool {
        matches!(self, CmpOp::Gt | CmpOp::GtEq | CmpOp::Eq)
    }

    /// Is the bound strict?
    pub fn is_strict(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Gt)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_binary())
    }
}

/// `x OP y + offset` between two columns.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffConstraint {
    pub x: ColumnRef,
    pub op: CmpOp,
    pub y: ColumnRef,
    pub offset: i64,
}

impl DiffConstraint {
    /// The same constraint written with `y` on the left:
    /// `x OP y + c` ⇔ `y OP.swap() x - c`.
    pub fn swapped(&self) -> DiffConstraint {
        DiffConstraint {
            x: self.y.clone(),
            op: self.op.swap(),
            y: self.x.clone(),
            offset: -self.offset,
        }
    }

    /// Render back to an expression.
    pub fn to_expr(&self) -> Expr {
        let rhs = if self.offset == 0 {
            Expr::Column(self.y.clone())
        } else {
            Expr::binary(
                Expr::Column(self.y.clone()),
                if self.offset > 0 {
                    BinaryOp::Plus
                } else {
                    BinaryOp::Minus
                },
                Expr::lit(self.offset.abs()),
            )
        };
        Expr::binary(Expr::Column(self.x.clone()), self.op.to_binary(), rhs)
    }
}

impl fmt::Display for DiffConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_expr())
    }
}

/// `x OP value` between a column and a literal.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstConstraint {
    pub x: ColumnRef,
    pub op: CmpOp,
    pub value: Value,
}

impl ConstConstraint {
    pub fn to_expr(&self) -> Expr {
        Expr::binary(
            Expr::Column(self.x.clone()),
            self.op.to_binary(),
            Expr::Literal(self.value.clone()),
        )
    }

    /// Shift an integer bound by `delta` (`x OP v` → `x OP v+delta`),
    /// `None` for non-integer values.
    pub fn shifted(&self, delta: i64) -> Option<ConstConstraint> {
        let v = self.value.as_int()?;
        Some(ConstConstraint {
            x: self.x.clone(),
            op: self.op,
            value: Value::Int(v + delta),
        })
    }
}

impl fmt::Display for ConstConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_expr())
    }
}

/// Result of normalizing one conjunct.
#[derive(Debug, Clone, PartialEq)]
pub enum Normalized {
    Diff(DiffConstraint),
    Const(ConstConstraint),
}

/// `col ± literal` and bare `col` / bare literal recognition.
fn as_col_plus_const(e: &Expr) -> Option<(ColumnRef, i64)> {
    match e {
        Expr::Column(c) => Some((c.clone(), 0)),
        Expr::Binary { left, op, right } => {
            let sign = match op {
                BinaryOp::Plus => 1,
                BinaryOp::Minus => -1,
                _ => return None,
            };
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(Value::Int(v))) => Some((c.clone(), sign * v)),
                (Expr::Literal(Value::Int(v)), Expr::Column(c)) if *op == BinaryOp::Plus => {
                    Some((c.clone(), *v))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// `colX - colY` recognition.
fn as_col_minus_col(e: &Expr) -> Option<(ColumnRef, ColumnRef)> {
    if let Expr::Binary {
        left,
        op: BinaryOp::Minus,
        right,
    } = e
    {
        if let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) {
            return Some((a.clone(), b.clone()));
        }
    }
    None
}

/// Normalize a single comparison conjunct. Returns `None` for conjuncts that
/// are not a recognizable column/column±const or column/literal comparison.
pub fn normalize_conjunct(e: &Expr) -> Option<Normalized> {
    let Expr::Binary { left, op, right } = e else {
        return None;
    };
    let op = CmpOp::from_binary(*op)?;

    // col OP literal / literal OP col
    if let (Expr::Column(c), Expr::Literal(v)) = (left.as_ref(), right.as_ref()) {
        if !v.is_null() {
            return Some(Normalized::Const(ConstConstraint {
                x: c.clone(),
                op,
                value: v.clone(),
            }));
        }
        return None;
    }
    if let (Expr::Literal(v), Expr::Column(c)) = (left.as_ref(), right.as_ref()) {
        if !v.is_null() {
            return Some(Normalized::Const(ConstConstraint {
                x: c.clone(),
                op: op.swap(),
                value: v.clone(),
            }));
        }
        return None;
    }

    // (x - y) OP c  =>  x OP y + c
    if let (Some((x, y)), Expr::Literal(Value::Int(c))) = (as_col_minus_col(left), right.as_ref()) {
        return Some(Normalized::Diff(DiffConstraint {
            x,
            op,
            y,
            offset: *c,
        }));
    }
    // c OP (x - y)  =>  x OP.swap() y + c
    if let (Expr::Literal(Value::Int(c)), Some((x, y))) = (left.as_ref(), as_col_minus_col(right)) {
        return Some(Normalized::Diff(DiffConstraint {
            x,
            op: op.swap(),
            y,
            offset: *c,
        }));
    }

    // (x ± a) OP (y ± b)  =>  x OP y + (b - a)
    if let (Some((x, a)), Some((y, b))) = (as_col_plus_const(left), as_col_plus_const(right)) {
        return Some(Normalized::Diff(DiffConstraint {
            x,
            op,
            y,
            offset: b - a,
        }));
    }
    None
}

/// One-sided bound on a column: value plus inclusivity.
#[derive(Debug, Clone, PartialEq)]
pub struct Bound {
    pub value: Value,
    pub inclusive: bool,
}

/// A (possibly half-open) interval implied for one column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Interval {
    pub lower: Option<Bound>,
    pub upper: Option<Bound>,
}

impl Interval {
    fn from_const(c: &ConstConstraint) -> Option<Interval> {
        let b = |inclusive| {
            Some(Bound {
                value: c.value.clone(),
                inclusive,
            })
        };
        Some(match c.op {
            CmpOp::Eq => Interval {
                lower: b(true),
                upper: b(true),
            },
            CmpOp::Lt => Interval {
                lower: None,
                upper: b(false),
            },
            CmpOp::LtEq => Interval {
                lower: None,
                upper: b(true),
            },
            CmpOp::Gt => Interval {
                lower: b(false),
                upper: None,
            },
            CmpOp::GtEq => Interval {
                lower: b(true),
                upper: None,
            },
            CmpOp::NotEq => return None,
        })
    }

    /// Intersection (both intervals hold — AND).
    fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lower: tighter(&self.lower, &other.lower, true),
            upper: tighter(&self.upper, &other.upper, false),
        }
    }

    /// Convex hull (either interval holds — OR). A side unbounded in either
    /// branch is unbounded in the hull.
    fn hull(&self, other: &Interval) -> Interval {
        let weaker = |a: &Option<Bound>, b: &Option<Bound>, is_lower: bool| -> Option<Bound> {
            let (a, b) = (a.as_ref()?, b.as_ref()?);
            let ord = a.value.total_cmp(&b.value);
            let pick_a = match (is_lower, ord) {
                (true, std::cmp::Ordering::Less) => true,
                (true, std::cmp::Ordering::Greater) => false,
                (false, std::cmp::Ordering::Greater) => true,
                (false, std::cmp::Ordering::Less) => false,
                (_, std::cmp::Ordering::Equal) => a.inclusive || !b.inclusive,
            };
            Some(if pick_a { a.clone() } else { b.clone() })
        };
        Interval {
            lower: weaker(&self.lower, &other.lower, true),
            upper: weaker(&self.upper, &other.upper, false),
        }
    }

    /// Render as conjuncts on `col`.
    pub fn to_constraints(&self, col: &ColumnRef) -> Vec<ConstConstraint> {
        let mut out = Vec::new();
        if let Some(l) = &self.lower {
            out.push(ConstConstraint {
                x: col.clone(),
                op: if l.inclusive { CmpOp::GtEq } else { CmpOp::Gt },
                value: l.value.clone(),
            });
        }
        if let Some(u) = &self.upper {
            out.push(ConstConstraint {
                x: col.clone(),
                op: if u.inclusive { CmpOp::LtEq } else { CmpOp::Lt },
                value: u.value.clone(),
            });
        }
        out
    }
}

fn tighter(a: &Option<Bound>, b: &Option<Bound>, is_lower: bool) -> Option<Bound> {
    match (a, b) {
        (None, x) | (x, None) => x.clone(),
        (Some(a), Some(b)) => {
            let ord = a.value.total_cmp(&b.value);
            let pick_a = match (is_lower, ord) {
                (true, std::cmp::Ordering::Greater) => true,
                (true, std::cmp::Ordering::Less) => false,
                (false, std::cmp::Ordering::Less) => true,
                (false, std::cmp::Ordering::Greater) => false,
                (_, std::cmp::Ordering::Equal) => !a.inclusive || b.inclusive,
            };
            Some(if pick_a { a.clone() } else { b.clone() })
        }
    }
}

/// Column bounds implied by an arbitrary boolean predicate.
///
/// Handles AND (intersection) and OR (convex hull: a column bounded in
/// *every* disjunct keeps the weakest bound). This is how the paper's
/// relaxation of the expanded condition to `rtime < T1 + 5 min` (§5.2)
/// falls out: `(rtime ≤ T1) ∨ (reader = 'readerX' ∧ rtime < T1+5min)`
/// implies `rtime < T1 + 5 min`, which an index range scan can use.
pub fn implied_bounds(expr: &Expr) -> Vec<(ColumnRef, Interval)> {
    use std::collections::HashMap;

    fn walk(expr: &Expr) -> HashMap<ColumnRef, Interval> {
        match expr {
            Expr::Binary {
                left,
                op: crate::expr::BinaryOp::And,
                right,
            } => {
                let mut a = walk(left);
                for (col, i) in walk(right) {
                    a.entry(col)
                        .and_modify(|cur| *cur = cur.intersect(&i))
                        .or_insert(i);
                }
                a
            }
            Expr::Binary {
                left,
                op: crate::expr::BinaryOp::Or,
                right,
            } => {
                let a = walk(left);
                let b = walk(right);
                // Only columns bounded in BOTH branches survive, hulled.
                let mut out = HashMap::new();
                for (col, ia) in a {
                    if let Some(ib) = b.get(&col) {
                        let h = ia.hull(ib);
                        if h.lower.is_some() || h.upper.is_some() {
                            out.insert(col, h);
                        }
                    }
                }
                out
            }
            other => match normalize_conjunct(other) {
                Some(Normalized::Const(c)) => match Interval::from_const(&c) {
                    Some(i) => std::iter::once((c.x, i)).collect(),
                    None => HashMap::new(),
                },
                _ => HashMap::new(),
            },
        }
    }
    let mut out: Vec<(ColumnRef, Interval)> = walk(expr).into_iter().collect();
    out.sort_by_key(|a| a.0.flat_name());
    out
}

/// [`implied_bounds`] with column references canonicalized against a schema,
/// keyed by column *position*. `rtime` and `caser.rtime` referring to the
/// same field merge correctly (important for expanded conditions, which mix
/// qualification styles). Unresolvable references keep the predicate from
/// contributing bounds for that column only.
pub fn implied_bounds_resolved(
    expr: &Expr,
    schema: &crate::schema::Schema,
) -> Vec<(usize, Interval)> {
    // Rewrite every resolvable column to a canonical positional name.
    let canon = expr.transform(&|node| match &node {
        Expr::Column(c) => match schema.index_of(c.qualifier.as_deref(), &c.name) {
            Ok(i) => Expr::Column(ColumnRef {
                qualifier: None,
                name: format!("__pos{i}"),
            }),
            Err(_) => node,
        },
        _ => node,
    });
    implied_bounds(&canon)
        .into_iter()
        .filter_map(|(c, i)| {
            c.name
                .strip_prefix("__pos")
                .and_then(|p| p.parse::<usize>().ok())
                .map(|p| (p, i))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(s: &str) -> Expr {
        Expr::col(s)
    }

    #[test]
    fn const_constraint_both_orders() {
        let n = normalize_conjunct(&col("a.rtime").lt(Expr::lit(10i64))).unwrap();
        let Normalized::Const(c) = n else { panic!() };
        assert_eq!(c.op, CmpOp::Lt);
        assert_eq!(c.value, Value::Int(10));

        let n = normalize_conjunct(&Expr::lit(10i64).lt(col("a.rtime"))).unwrap();
        let Normalized::Const(c) = n else { panic!() };
        assert_eq!(c.op, CmpOp::Gt);
    }

    #[test]
    fn difference_form() {
        // B.rtime - A.rtime < 300  =>  B.rtime < A.rtime + 300
        let e = Expr::binary(
            Expr::binary(col("b.rtime"), BinaryOp::Minus, col("a.rtime")),
            BinaryOp::Lt,
            Expr::lit(300i64),
        );
        let Normalized::Diff(d) = normalize_conjunct(&e).unwrap() else {
            panic!()
        };
        assert_eq!(d.x.qualifier.as_deref(), Some("b"));
        assert_eq!(d.op, CmpOp::Lt);
        assert_eq!(d.offset, 300);
    }

    #[test]
    fn reversed_difference() {
        // 300 > B.rtime - A.rtime  =>  B.rtime < A.rtime + 300
        let e = Expr::binary(
            Expr::lit(300i64),
            BinaryOp::Gt,
            Expr::binary(col("b.rtime"), BinaryOp::Minus, col("a.rtime")),
        );
        let Normalized::Diff(d) = normalize_conjunct(&e).unwrap() else {
            panic!()
        };
        assert_eq!(d.op, CmpOp::Lt);
        assert_eq!(d.offset, 300);
    }

    #[test]
    fn col_plus_const_forms() {
        // x < y + 5
        let e = col("x").lt(Expr::binary(col("y"), BinaryOp::Plus, Expr::lit(5i64)));
        let Normalized::Diff(d) = normalize_conjunct(&e).unwrap() else {
            panic!()
        };
        assert_eq!(d.offset, 5);
        // x - 3 >= y  ==  x >= y + 3
        let e = Expr::binary(col("x"), BinaryOp::Minus, Expr::lit(3i64)).gt_eq(col("y"));
        let Normalized::Diff(d) = normalize_conjunct(&e).unwrap() else {
            panic!()
        };
        assert_eq!(d.op, CmpOp::GtEq);
        assert_eq!(d.offset, 3);
    }

    #[test]
    fn plain_column_equality() {
        let e = col("a.epc").eq(col("b.epc"));
        let Normalized::Diff(d) = normalize_conjunct(&e).unwrap() else {
            panic!()
        };
        assert_eq!(d.op, CmpOp::Eq);
        assert_eq!(d.offset, 0);
    }

    #[test]
    fn swapped_diff_is_equivalent() {
        let e = col("x").lt(Expr::binary(col("y"), BinaryOp::Plus, Expr::lit(5i64)));
        let Normalized::Diff(d) = normalize_conjunct(&e).unwrap() else {
            panic!()
        };
        let s = d.swapped();
        assert_eq!(s.op, CmpOp::Gt);
        assert_eq!(s.offset, -5);
        assert_eq!(s.swapped(), d);
    }

    #[test]
    fn unrecognized_forms() {
        assert!(normalize_conjunct(&col("a").and(col("b"))).is_none());
        assert!(normalize_conjunct(&Expr::lit(1i64)).is_none());
        // NULL literal comparisons are never useful constraints.
        assert!(normalize_conjunct(&col("a").eq(Expr::Literal(Value::Null))).is_none());
    }

    #[test]
    fn implied_bounds_through_and() {
        let e = col("rtime")
            .gt_eq(Expr::lit(5i64))
            .and(col("rtime").lt(Expr::lit(100i64)))
            .and(col("loc").eq(Expr::lit("x")));
        let bounds = implied_bounds(&e);
        assert_eq!(bounds.len(), 2);
        let rtime = &bounds.iter().find(|(c, _)| c.name == "rtime").unwrap().1;
        assert_eq!(rtime.lower.as_ref().unwrap().value, Value::Int(5));
        assert!(rtime.lower.as_ref().unwrap().inclusive);
        assert_eq!(rtime.upper.as_ref().unwrap().value, Value::Int(100));
        assert!(!rtime.upper.as_ref().unwrap().inclusive);
    }

    #[test]
    fn implied_bounds_through_or_take_hull() {
        // The paper's ec1: (rtime <= T1) OR (reader='readerX' AND rtime < T1+300)
        // implies rtime < T1+300.
        let t1 = 1000i64;
        let e = col("rtime").lt_eq(Expr::lit(t1)).or(col("reader")
            .eq(Expr::lit("readerX"))
            .and(col("rtime").lt(Expr::lit(t1 + 300))));
        let bounds = implied_bounds(&e);
        assert_eq!(bounds.len(), 1);
        let (c, i) = &bounds[0];
        assert_eq!(c.name, "rtime");
        assert!(i.lower.is_none());
        assert_eq!(i.upper.as_ref().unwrap().value, Value::Int(t1 + 300));
        assert!(!i.upper.as_ref().unwrap().inclusive);
    }

    #[test]
    fn or_drops_columns_missing_in_one_branch() {
        let e = col("a")
            .lt(Expr::lit(5i64))
            .or(col("b").lt(Expr::lit(9i64)));
        assert!(implied_bounds(&e).is_empty());
    }

    #[test]
    fn hull_prefers_inclusive_on_ties() {
        let e = col("a")
            .lt(Expr::lit(5i64))
            .or(col("a").lt_eq(Expr::lit(5i64)));
        let bounds = implied_bounds(&e);
        assert!(bounds[0].1.upper.as_ref().unwrap().inclusive);
    }

    #[test]
    fn interval_to_constraints_roundtrip() {
        let e = col("rtime")
            .gt(Expr::lit(5i64))
            .and(col("rtime").lt_eq(Expr::lit(9i64)));
        let bounds = implied_bounds(&e);
        let cs = bounds[0].1.to_constraints(&ColumnRef::new("rtime"));
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].op, CmpOp::Gt);
        assert_eq!(cs[1].op, CmpOp::LtEq);
    }

    #[test]
    fn roundtrip_to_expr() {
        let d = DiffConstraint {
            x: ColumnRef::new("b.rtime"),
            op: CmpOp::Lt,
            y: ColumnRef::new("a.rtime"),
            offset: 300,
        };
        let Normalized::Diff(d2) = normalize_conjunct(&d.to_expr()).unwrap() else {
            panic!()
        };
        assert_eq!(d, d2);
        let c = ConstConstraint {
            x: ColumnRef::new("b.rtime"),
            op: CmpOp::LtEq,
            value: Value::Int(7),
        };
        let Normalized::Const(c2) = normalize_conjunct(&c.to_expr()).unwrap() else {
            panic!()
        };
        assert_eq!(c, c2);
    }
}
