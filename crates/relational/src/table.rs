//! Tables and the catalog.
//!
//! A [`Table`] is a batch plus its secondary indexes, statistics, and
//! segment metadata; the [`Catalog`] maps names to tables and is shared
//! between the planner, the rewrite engine, and the executor.
//!
//! Tables are immutable once registered — readers always see a consistent
//! snapshot — but grow through [`Catalog::append`], which clones the table,
//! appends a batch (sealing new segments and extending indexes
//! incrementally), and swaps the catalog entry. Readers holding an old
//! `Arc<Table>` keep their snapshot.

use crate::batch::Batch;
use crate::error::{Error, Result};
use crate::index::OrderedIndex;
use crate::schema::SchemaRef;
use crate::segment::seal_segments;
use crate::stats::TableStats;
use crate::value::Value;
use dc_storage::Segment;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A named table: data, indexes, statistics, and sealed segments.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    data: Batch,
    indexes: HashMap<String, OrderedIndex>,
    stats: TableStats,
    /// Sealed row groups with per-column zone maps, covering all rows in
    /// order. A freshly created non-empty table is one segment.
    segments: Vec<Segment<Value>>,
    /// Target rows per segment for bulk loads and appends (`None` = one
    /// segment per creation/append).
    segment_rows: Option<usize>,
    /// Declared sequence order (column positions, e.g. `(ckey, skey)`): the
    /// order future appends are *expected* to arrive in. Sealing verifies it
    /// per segment and records the verified prefix in
    /// [`Segment::sorted_by`]; the declaration itself never asserts
    /// anything about the data.
    seq_order: Vec<usize>,
}

impl Table {
    /// Create a table, computing statistics immediately. Non-empty data is
    /// sealed as a single segment.
    pub fn new(name: impl Into<String>, data: Batch) -> Self {
        Self::with_segment_rows_opt(name, data, None)
    }

    /// Create a table whose data is sealed into segments of at most
    /// `segment_rows` rows; later [`Table::append`]s use the same target.
    pub fn with_segment_rows(name: impl Into<String>, data: Batch, segment_rows: usize) -> Self {
        Self::with_segment_rows_opt(name, data, Some(segment_rows.max(1)))
    }

    fn with_segment_rows_opt(
        name: impl Into<String>,
        data: Batch,
        segment_rows: Option<usize>,
    ) -> Self {
        let stats = TableStats::compute(&data);
        let segments = seal_segments(&data, 0, 0, segment_rows, &[]);
        Table {
            name: name.into().to_ascii_lowercase(),
            data,
            indexes: HashMap::new(),
            stats,
            segments,
            segment_rows,
            seq_order: Vec::new(),
        }
    }

    /// Reassemble a table from recovered durable state: `data` is the
    /// concatenation of decoded segment files in id order and `segments` is
    /// the metadata recorded in the commit log. The metadata is trusted —
    /// segments are immutable and it was derived from the sealed rows — but
    /// its row accounting is validated against the data so a corrupt log
    /// cannot misdescribe row ranges. Statistics are recomputed and indexes
    /// rebuilt (equivalent to the incremental builds the live table did).
    pub fn from_recovered(
        name: impl Into<String>,
        data: Batch,
        segments: Vec<Segment<Value>>,
        segment_rows: Option<usize>,
        seq_order: Vec<usize>,
        indexes: &[String],
    ) -> Result<Self> {
        let ncols = data.schema().len();
        let mut expected_start = 0usize;
        for s in &segments {
            if s.start != expected_start {
                return Err(Error::Catalog(format!(
                    "recovered segment {} starts at row {}, expected {}",
                    s.id, s.start, expected_start
                )));
            }
            if s.zones.len() != ncols {
                return Err(Error::Catalog(format!(
                    "recovered segment {} has {} zone maps for {} columns",
                    s.id,
                    s.zones.len(),
                    ncols
                )));
            }
            expected_start = s.end();
        }
        if expected_start != data.num_rows() {
            return Err(Error::Catalog(format!(
                "recovered segments cover {} rows, data has {}",
                expected_start,
                data.num_rows()
            )));
        }
        if seq_order.iter().any(|&c| c >= ncols) {
            return Err(Error::Catalog(format!(
                "recovered sequence order references column beyond {ncols}"
            )));
        }
        let stats = TableStats::compute(&data);
        let mut t = Table {
            name: name.into().to_ascii_lowercase(),
            data,
            indexes: HashMap::new(),
            stats,
            segments,
            segment_rows,
            seq_order,
        };
        for column in indexes {
            t.create_index(column)?;
        }
        Ok(t)
    }

    /// The configured target rows per sealed segment (`None` = one segment
    /// per creation/append).
    pub fn segment_target_rows(&self) -> Option<usize> {
        self.segment_rows
    }

    /// Declare the table's sequence order (e.g. `("epc", "rtime")` for RFID
    /// reads). Already-sealed segments are re-verified against the new
    /// order; future appends verify it at seal time, making sortedness a
    /// metadata property on the append path.
    pub fn set_sequence_order(&mut self, columns: &[&str]) -> Result<()> {
        self.seq_order = columns
            .iter()
            .map(|c| self.data.schema().index_of_name(&c.to_ascii_lowercase()))
            .collect::<Result<_>>()?;
        for s in &mut self.segments {
            let verified = crate::segment::verified_order_prefix(
                &self.data,
                s.start,
                s.end(),
                &self.seq_order,
            );
            s.sorted_by = self.seq_order[..verified].to_vec();
        }
        Ok(())
    }

    /// The declared sequence order as column positions (empty = undeclared).
    pub fn sequence_order(&self) -> &[usize] {
        &self.seq_order
    }

    /// Metadata-only run cover: if *every* segment is verified sorted on
    /// `columns` (a prefix of its recorded order), the table's rows are a
    /// concatenation of sorted runs whose start offsets this returns — no
    /// data inspection needed. `None` when any segment lacks the order or
    /// the table is empty.
    pub fn segment_runs(&self, columns: &[usize]) -> Option<Vec<usize>> {
        if self.segments.is_empty() || columns.is_empty() {
            return None;
        }
        self.segments
            .iter()
            .all(|s| s.covers_order(columns))
            .then(|| self.segments.iter().map(|s| s.start).collect())
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &SchemaRef {
        self.data.schema()
    }

    pub fn data(&self) -> &Batch {
        &self.data
    }

    pub fn num_rows(&self) -> usize {
        self.data.num_rows()
    }

    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// The sealed segments, in row order.
    pub fn segments(&self) -> &[Segment<Value>] {
        &self.segments
    }

    /// Append a batch: concatenate the rows, seal them as new segment(s),
    /// recompute statistics, and extend every existing index incrementally
    /// (no rebuild — see [`OrderedIndex::extend`]).
    pub fn append(&mut self, batch: Batch) -> Result<()> {
        if batch.num_rows() == 0 {
            return Ok(());
        }
        let start = self.data.num_rows();
        let next_id = self.segments.last().map_or(0, |s| s.id + 1);
        self.data = Batch::concat(&[self.data.clone(), batch])?;
        self.segments.extend(seal_segments(
            &self.data,
            start,
            next_id,
            self.segment_rows,
            &self.seq_order,
        ));
        self.stats = TableStats::compute(&self.data);
        for (column, idx) in &mut self.indexes {
            let ci = self.data.schema().index_of_name(column)?;
            idx.extend(self.data.column(ci));
        }
        Ok(())
    }

    /// Build an ordered index on a column. When the index already exists it
    /// is only extended over rows appended since it was last built — never
    /// silently rebuilt from scratch.
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        let column = column.to_ascii_lowercase();
        let ci = self.data.schema().index_of_name(&column)?;
        match self.indexes.get_mut(&column) {
            Some(idx) => idx.extend(self.data.column(ci)),
            None => {
                let idx = OrderedIndex::build(self.data.column(ci));
                self.indexes.insert(column, idx);
            }
        }
        Ok(())
    }

    /// The index on `column`, if one exists.
    pub fn index(&self, column: &str) -> Option<&OrderedIndex> {
        self.indexes.get(&column.to_ascii_lowercase())
    }

    pub fn indexed_columns(&self) -> Vec<&str> {
        let mut cols: Vec<&str> = self.indexes.keys().map(String::as_str).collect();
        cols.sort_unstable();
        cols
    }

    /// Ids of the segments whose zone range on `column` admits `v` — the
    /// segments that *could* hold rows with that value. Ascending (segments
    /// are stored in seal order). Used as the validity token of the
    /// cleansed-sequence cache: appending rows for a key changes its
    /// covering set, which invalidates exactly that key.
    pub fn covering_segments(&self, column: &str, v: &Value) -> Vec<u64> {
        let Ok(ci) = self
            .data
            .schema()
            .index_of_name(&column.to_ascii_lowercase())
        else {
            return Vec::new();
        };
        self.segments
            .iter()
            .filter(|s| s.zone(ci).is_some_and(|z| z.contains(v)))
            .map(|s| s.id)
            .collect()
    }
}

/// A thread-safe name → table map.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table, replacing any existing table of the same name.
    pub fn register(&self, table: Table) -> Arc<Table> {
        let t = Arc::new(table);
        self.tables
            .write()
            .insert(t.name().to_string(), Arc::clone(&t));
        t
    }

    /// Register an already-shared table handle, replacing any existing
    /// table of the same name. Lets several catalogs (e.g. shard catalogs
    /// replicating a dimension table) share one allocation.
    pub fn register_shared(&self, table: Arc<Table>) -> Arc<Table> {
        self.tables
            .write()
            .insert(table.name().to_string(), Arc::clone(&table));
        table
    }

    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::Catalog(format!("no such table '{name}'")))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| Error::Catalog(format!("no such table '{name}'")))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Append a batch to a registered table. The table is cloned, mutated,
    /// and swapped in under the write lock (copy-on-write): queries holding
    /// the old `Arc<Table>` keep a consistent snapshot, new lookups see the
    /// appended rows, fresh segments, and extended indexes.
    pub fn append(&self, name: &str, batch: Batch) -> Result<Arc<Table>> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        let current = tables
            .get(&key)
            .ok_or_else(|| Error::Catalog(format!("no such table '{name}'")))?;
        let mut t = Table::clone(current);
        t.append(batch)?;
        let t = Arc::new(t);
        tables.insert(key, Arc::clone(&t));
        Ok(t)
    }

    /// A shallow copy of the catalog: same `Arc<Table>` entries, independent
    /// map. Used to register transient tables (e.g. cache-assembled
    /// cleansed rows) without them leaking into the shared catalog.
    pub fn overlay(&self) -> Catalog {
        Catalog {
            tables: RwLock::new(self.tables.read().clone()),
        }
    }
}

/// Shared catalog handle.
pub type CatalogRef = Arc<Catalog>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};

    fn sample_batch() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("e1"), Value::Int(10)],
                vec![Value::str("e2"), Value::Int(20)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn table_with_index_and_stats() {
        let mut t = Table::new("CaseR", sample_batch());
        assert_eq!(t.name(), "caser");
        assert_eq!(t.stats().row_count, 2);
        t.create_index("rtime").unwrap();
        assert!(t.index("RTIME").is_some());
        assert!(t.index("epc").is_none());
        assert_eq!(t.indexed_columns(), vec!["rtime"]);
        assert!(t.create_index("nope").is_err());
    }

    #[test]
    fn catalog_roundtrip() {
        let cat = Catalog::new();
        cat.register(Table::new("caser", sample_batch()));
        assert!(cat.contains("CASER"));
        assert_eq!(cat.get("caser").unwrap().num_rows(), 2);
        assert_eq!(cat.table_names(), vec!["caser"]);
        cat.drop_table("caser").unwrap();
        assert!(cat.get("caser").is_err());
    }

    #[test]
    fn register_replaces() {
        let cat = Catalog::new();
        cat.register(Table::new("t", sample_batch()));
        let b2 = sample_batch().take(&[0]);
        cat.register(Table::new("t", b2));
        assert_eq!(cat.get("t").unwrap().num_rows(), 1);
    }

    #[test]
    fn new_table_is_one_segment() {
        let t = Table::new("t", sample_batch());
        assert_eq!(t.segments().len(), 1);
        assert_eq!(t.segments()[0].rows, 2);
        // An empty table has no segments.
        let empty = Table::new("e", sample_batch().take(&[]));
        assert!(empty.segments().is_empty());
    }

    #[test]
    fn append_seals_segments_and_extends_indexes() {
        let mut t = Table::with_segment_rows("t", sample_batch(), 2);
        t.create_index("rtime").unwrap();
        t.append(sample_batch()).unwrap();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.segments().len(), 2);
        assert_eq!(t.segments()[1].id, 1);
        assert_eq!(t.segments()[1].start, 2);
        assert_eq!(t.stats().row_count, 4);
        // The index was extended over the appended rows without a rebuild,
        // and matches a from-scratch build.
        let idx = t.index("rtime").unwrap();
        assert_eq!(idx.covered_rows(), 4);
        assert_eq!(idx.lookup(&Value::Int(10)), &[0, 2]);
        assert_eq!(*idx, OrderedIndex::build(t.data().column(1)));
        // create_index after append is incremental (watermark already
        // current -> no-op).
        let before = idx.clone();
        t.create_index("rtime").unwrap();
        assert_eq!(*t.index("rtime").unwrap(), before);
    }

    #[test]
    fn covering_segments_tracks_zone_ranges() {
        let mut t = Table::with_segment_rows("t", sample_batch(), 2);
        assert_eq!(t.covering_segments("epc", &Value::str("e1")), vec![0]);
        t.append(
            Batch::from_rows(
                sample_batch().schema().clone(),
                &[vec![Value::str("e1"), Value::Int(99)]],
            )
            .unwrap(),
        )
        .unwrap();
        // The appended segment's epc zone is [e1, e1]: e1's covering set
        // changed, e2's did not.
        assert_eq!(t.covering_segments("epc", &Value::str("e1")), vec![0, 1]);
        assert_eq!(t.covering_segments("epc", &Value::str("e2")), vec![0]);
        assert!(t.covering_segments("nope", &Value::str("e1")).is_empty());
    }

    #[test]
    fn sequence_order_is_verified_per_segment() {
        let mut t = Table::new("t", sample_batch());
        // No declared order -> no metadata runs.
        assert!(t.segment_runs(&[0]).is_none());
        assert!(t.set_sequence_order(&["nope"]).is_err());
        t.set_sequence_order(&["EPC", "rtime"]).unwrap();
        assert_eq!(t.sequence_order(), &[0, 1]);
        // The existing segment was re-verified against the new order.
        assert_eq!(t.segment_runs(&[0]), Some(vec![0]));
        assert_eq!(t.segment_runs(&[0, 1]), Some(vec![0]));
        // A sorted append seals a segment that covers the order: two runs.
        t.append(sample_batch()).unwrap();
        assert_eq!(t.segment_runs(&[0, 1]), Some(vec![0, 2]));
        // An unsorted append (epc descending) covers no prefix, so the
        // whole-table metadata cover disappears.
        t.append(sample_batch().take(&[1, 0])).unwrap();
        assert!(t.segment_runs(&[0]).is_none());
        assert!(t.segment_runs(&[]).is_none());
    }

    #[test]
    fn catalog_append_is_copy_on_write() {
        let cat = Catalog::new();
        cat.register(Table::new("t", sample_batch()));
        let snapshot = cat.get("t").unwrap();
        cat.append("t", sample_batch().take(&[0])).unwrap();
        assert_eq!(snapshot.num_rows(), 2, "old handle keeps its snapshot");
        assert_eq!(cat.get("t").unwrap().num_rows(), 3);
        assert!(cat.append("nope", sample_batch()).is_err());
    }

    #[test]
    fn overlay_is_independent() {
        let cat = Catalog::new();
        cat.register(Table::new("t", sample_batch()));
        let overlay = cat.overlay();
        overlay.register(Table::new("extra", sample_batch()));
        assert!(overlay.contains("t"));
        assert!(overlay.contains("extra"));
        assert!(!cat.contains("extra"));
    }
}
