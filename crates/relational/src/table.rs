//! Tables and the catalog.
//!
//! A [`Table`] is an immutable batch plus its secondary indexes and
//! statistics; the [`Catalog`] maps names to tables and is shared between the
//! planner, the rewrite engine, and the executor.

use crate::batch::Batch;
use crate::error::{Error, Result};
use crate::index::OrderedIndex;
use crate::schema::SchemaRef;
use crate::stats::TableStats;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable named table: data, indexes, statistics.
#[derive(Debug)]
pub struct Table {
    name: String,
    data: Batch,
    indexes: HashMap<String, OrderedIndex>,
    stats: TableStats,
}

impl Table {
    /// Create a table, computing statistics immediately.
    pub fn new(name: impl Into<String>, data: Batch) -> Self {
        let stats = TableStats::compute(&data);
        Table {
            name: name.into().to_ascii_lowercase(),
            data,
            indexes: HashMap::new(),
            stats,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &SchemaRef {
        self.data.schema()
    }

    pub fn data(&self) -> &Batch {
        &self.data
    }

    pub fn num_rows(&self) -> usize {
        self.data.num_rows()
    }

    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Build (or rebuild) an ordered index on a column.
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        let column = column.to_ascii_lowercase();
        let ci = self.data.schema().index_of_name(&column)?;
        let idx = OrderedIndex::build(self.data.column(ci));
        self.indexes.insert(column, idx);
        Ok(())
    }

    /// The index on `column`, if one exists.
    pub fn index(&self, column: &str) -> Option<&OrderedIndex> {
        self.indexes.get(&column.to_ascii_lowercase())
    }

    pub fn indexed_columns(&self) -> Vec<&str> {
        let mut cols: Vec<&str> = self.indexes.keys().map(String::as_str).collect();
        cols.sort_unstable();
        cols
    }
}

/// A thread-safe name → table map.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table, replacing any existing table of the same name.
    pub fn register(&self, table: Table) -> Arc<Table> {
        let t = Arc::new(table);
        self.tables
            .write()
            .insert(t.name().to_string(), Arc::clone(&t));
        t
    }

    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::Catalog(format!("no such table '{name}'")))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| Error::Catalog(format!("no such table '{name}'")))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }
}

/// Shared catalog handle.
pub type CatalogRef = Arc<Catalog>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};

    fn sample_batch() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("e1"), Value::Int(10)],
                vec![Value::str("e2"), Value::Int(20)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn table_with_index_and_stats() {
        let mut t = Table::new("CaseR", sample_batch());
        assert_eq!(t.name(), "caser");
        assert_eq!(t.stats().row_count, 2);
        t.create_index("rtime").unwrap();
        assert!(t.index("RTIME").is_some());
        assert!(t.index("epc").is_none());
        assert_eq!(t.indexed_columns(), vec!["rtime"]);
        assert!(t.create_index("nope").is_err());
    }

    #[test]
    fn catalog_roundtrip() {
        let cat = Catalog::new();
        cat.register(Table::new("caser", sample_batch()));
        assert!(cat.contains("CASER"));
        assert_eq!(cat.get("caser").unwrap().num_rows(), 2);
        assert_eq!(cat.table_names(), vec!["caser"]);
        cat.drop_table("caser").unwrap();
        assert!(cat.get("caser").is_err());
    }

    #[test]
    fn register_replaces() {
        let cat = Catalog::new();
        cat.register(Table::new("t", sample_batch()));
        let b2 = sample_batch().take(&[0]);
        cat.register(Table::new("t", b2));
        assert_eq!(cat.get("t").unwrap().num_rows(), 1);
    }
}
