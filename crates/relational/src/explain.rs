//! Machine-readable EXPLAIN renderings.
//!
//! [`LogicalPlan::display_indent`] and
//! [`display_physical`](crate::physical::display_physical) already render
//! plans as indented text; this module adds the JSON forms consumed by
//! `repro --explain` snapshots and CI artifacts. Shapes:
//!
//! ```text
//! logical:  {"node": <variant>, "label": <one-line>, "children": [...]}
//! physical: {"operator": <name>, "label": <one-line>, "children": [...]}
//! ```
//!
//! Executed-plan metrics (`EXPLAIN ANALYZE`) are rendered separately by
//! [`OperatorMetrics::to_json`](crate::physical::OperatorMetrics::to_json) —
//! same tree shape, annotated with per-operator counters.

use crate::physical::PhysicalOperator;
use crate::plan::LogicalPlan;
use dc_json::Json;

/// The variant name of a logical node, without its operator-specific detail.
fn variant_name(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan { .. } => "Scan",
        LogicalPlan::Filter { .. } => "Filter",
        LogicalPlan::Project { .. } => "Project",
        LogicalPlan::Sort { .. } => "Sort",
        LogicalPlan::Window { .. } => "Window",
        LogicalPlan::Join { .. } => "Join",
        LogicalPlan::Aggregate { .. } => "Aggregate",
        LogicalPlan::Distinct { .. } => "Distinct",
        LogicalPlan::Union { .. } => "Union",
        LogicalPlan::Limit { .. } => "Limit",
        LogicalPlan::SubqueryAlias { .. } => "SubqueryAlias",
    }
}

/// JSON tree of a logical plan.
pub fn logical_to_json(plan: &LogicalPlan) -> Json {
    Json::obj()
        .set("node", variant_name(plan))
        .set("label", plan.node_label())
        .set(
            "children",
            Json::Arr(plan.inputs().into_iter().map(logical_to_json).collect()),
        )
}

/// JSON tree of a physical operator plan (pre-execution — no metrics).
pub fn physical_to_json(op: &dyn PhysicalOperator) -> Json {
    Json::obj()
        .set("operator", op.name())
        .set("label", op.label())
        .set(
            "children",
            Json::Arr(op.children().into_iter().map(physical_to_json).collect()),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{schema_ref, Batch};
    use crate::expr::Expr;
    use crate::physical::lower;
    use crate::schema::{Field, Schema};
    use crate::table::{Catalog, Table};
    use crate::value::{DataType, Value};

    fn catalog() -> Catalog {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        let b = Batch::from_rows(schema, &[vec![Value::str("e1"), Value::Int(1)]]).unwrap();
        let cat = Catalog::new();
        cat.register(Table::new("r", b));
        cat
    }

    #[test]
    fn logical_json_mirrors_tree() {
        let plan = LogicalPlan::scan("r").filter(Expr::col("rtime").lt(Expr::lit(10i64)));
        let j = logical_to_json(&plan);
        assert_eq!(j.get("node").and_then(Json::as_str), Some("Filter"));
        let children = j.get("children").and_then(Json::as_arr).unwrap();
        assert_eq!(children.len(), 1);
        assert_eq!(children[0].get("node").and_then(Json::as_str), Some("Scan"));
        assert!(children[0]
            .get("label")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("Scan r"));
    }

    #[test]
    fn physical_json_mirrors_tree() {
        let cat = catalog();
        let plan = LogicalPlan::scan("r").filter(Expr::col("rtime").lt(Expr::lit(10i64)));
        let physical = lower(&plan, &cat).unwrap();
        let j = physical_to_json(physical.as_ref());
        // The pushed-down filter folds into the scan during lowering; the
        // root here is whatever lower() produced — check shape, not names.
        assert!(j.get("operator").and_then(Json::as_str).is_some());
        assert!(j.get("children").and_then(Json::as_arr).is_some());
    }
}
