//! Multi-key sorting.
//!
//! Sorting is the dominant cost of sequence processing (paper §6.2: "the
//! sorting cost to produce the sequence order may be dominant"), so the
//! executor counts sorted rows and the optimizer eliminates sorts whose
//! ordering is already provided by an upstream operator (order sharing).

use crate::batch::Batch;
use crate::column::Column;
use crate::error::Result;
use crate::expr::Expr;
use std::cmp::Ordering;

/// One sort key: an expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: Expr,
    pub ascending: bool,
    /// SQL default: NULLs sort first when ascending, last when descending.
    pub nulls_first: bool,
}

impl SortKey {
    pub fn asc(expr: Expr) -> Self {
        SortKey {
            expr,
            ascending: true,
            nulls_first: true,
        }
    }

    pub fn desc(expr: Expr) -> Self {
        SortKey {
            expr,
            ascending: false,
            nulls_first: false,
        }
    }
}

impl std::fmt::Display for SortKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}",
            self.expr,
            if self.ascending { "ASC" } else { "DESC" }
        )
    }
}

/// Compare row `a` to row `b` under the given key columns/directions.
fn cmp_rows(key_cols: &[(Column, bool, bool)], a: usize, b: usize) -> Ordering {
    for (col, ascending, nulls_first) in key_cols {
        let an = col.is_null(a);
        let bn = col.is_null(b);
        let o = match (an, bn) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if *nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if *nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => {
                let o = col.value(a).total_cmp(&col.value(b));
                if *ascending {
                    o
                } else {
                    o.reverse()
                }
            }
        };
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Compute the stable sort permutation of `batch` under `keys`.
pub fn sort_permutation(batch: &Batch, keys: &[SortKey]) -> Result<Vec<usize>> {
    let key_cols: Vec<(Column, bool, bool)> = keys
        .iter()
        .map(|k| {
            k.expr
                .evaluate(batch)
                .map(|c| (c, k.ascending, k.nulls_first))
        })
        .collect::<Result<_>>()?;
    let mut perm: Vec<usize> = (0..batch.num_rows()).collect();
    perm.sort_by(|&a, &b| cmp_rows(&key_cols, a, b));
    Ok(perm)
}

/// Sort a batch, returning a new batch in key order.
pub fn sort_batch(batch: &Batch, keys: &[SortKey]) -> Result<Batch> {
    let perm = sort_permutation(batch, keys)?;
    Ok(batch.take(&perm))
}

/// Check whether a batch is already sorted under `keys` (used by tests and
/// by the optimizer's order-property verification in debug builds).
pub fn is_sorted(batch: &Batch, keys: &[SortKey]) -> Result<bool> {
    let key_cols: Vec<(Column, bool, bool)> = keys
        .iter()
        .map(|k| {
            k.expr
                .evaluate(batch)
                .map(|c| (c, k.ascending, k.nulls_first))
        })
        .collect::<Result<_>>()?;
    for i in 1..batch.num_rows() {
        if cmp_rows(&key_cols, i - 1, i) == Ordering::Greater {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};

    fn batch() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("e2"), Value::Int(30)],
                vec![Value::str("e1"), Value::Int(20)],
                vec![Value::str("e1"), Value::Int(10)],
                vec![Value::str("e2"), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn two_key_sort() {
        let b = sort_batch(
            &batch(),
            &[
                SortKey::asc(Expr::col("epc")),
                SortKey::asc(Expr::col("rtime")),
            ],
        )
        .unwrap();
        let rt: Vec<Value> = (0..4).map(|i| b.row(i)[1].clone()).collect();
        assert_eq!(
            rt,
            vec![Value::Int(10), Value::Int(20), Value::Null, Value::Int(30)]
        );
    }

    #[test]
    fn descending_with_nulls_last() {
        let b = sort_batch(&batch(), &[SortKey::desc(Expr::col("rtime"))]).unwrap();
        assert_eq!(b.row(0)[1], Value::Int(30));
        assert_eq!(b.row(3)[1], Value::Null);
    }

    #[test]
    fn stability() {
        // Equal keys keep input order.
        let schema = schema_ref(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("seq", DataType::Int),
        ]));
        let b = Batch::from_rows(
            schema,
            &[
                vec![Value::Int(1), Value::Int(0)],
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(0), Value::Int(2)],
                vec![Value::Int(1), Value::Int(3)],
            ],
        )
        .unwrap();
        let sorted = sort_batch(&b, &[SortKey::asc(Expr::col("k"))]).unwrap();
        let seqs: Vec<Value> = (0..4).map(|i| sorted.row(i)[1].clone()).collect();
        assert_eq!(
            seqs,
            vec![Value::Int(2), Value::Int(0), Value::Int(1), Value::Int(3)]
        );
    }

    #[test]
    fn is_sorted_checks() {
        let keys = [
            SortKey::asc(Expr::col("epc")),
            SortKey::asc(Expr::col("rtime")),
        ];
        assert!(!is_sorted(&batch(), &keys).unwrap());
        let sorted = sort_batch(&batch(), &keys).unwrap();
        assert!(is_sorted(&sorted, &keys).unwrap());
    }
}
