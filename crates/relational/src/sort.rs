//! Multi-key sorting.
//!
//! Sorting is the dominant cost of sequence processing (paper §6.2: "the
//! sorting cost to produce the sequence order may be dominant"), so the
//! executor counts sorted rows and the optimizer eliminates sorts whose
//! ordering is already provided by an upstream operator (order sharing).

use crate::batch::Batch;
use crate::column::Column;
use crate::error::Result;
use crate::expr::Expr;
use std::cmp::Ordering;

/// One sort key: an expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: Expr,
    pub ascending: bool,
    /// SQL default: NULLs sort first when ascending, last when descending.
    pub nulls_first: bool,
}

impl SortKey {
    pub fn asc(expr: Expr) -> Self {
        SortKey {
            expr,
            ascending: true,
            nulls_first: true,
        }
    }

    pub fn desc(expr: Expr) -> Self {
        SortKey {
            expr,
            ascending: false,
            nulls_first: false,
        }
    }
}

impl std::fmt::Display for SortKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}",
            self.expr,
            if self.ascending { "ASC" } else { "DESC" }
        )
    }
}

/// Compare row `a` to row `b` under the given key columns/directions.
fn cmp_rows(key_cols: &[(Column, bool, bool)], a: usize, b: usize) -> Ordering {
    for (col, ascending, nulls_first) in key_cols {
        let an = col.is_null(a);
        let bn = col.is_null(b);
        let o = match (an, bn) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if *nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if *nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => {
                let o = col.value(a).total_cmp(&col.value(b));
                if *ascending {
                    o
                } else {
                    o.reverse()
                }
            }
        };
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Compute the stable sort permutation of `batch` under `keys`.
pub fn sort_permutation(batch: &Batch, keys: &[SortKey]) -> Result<Vec<usize>> {
    let key_cols = eval_keys(batch, keys)?;
    let mut perm: Vec<usize> = (0..batch.num_rows()).collect();
    perm.sort_by(|&a, &b| cmp_rows(&key_cols, a, b));
    Ok(perm)
}

/// Sort a batch, returning a new batch in key order.
pub fn sort_batch(batch: &Batch, keys: &[SortKey]) -> Result<Batch> {
    let perm = sort_permutation(batch, keys)?;
    Ok(batch.take(&perm))
}

fn eval_keys(batch: &Batch, keys: &[SortKey]) -> Result<Vec<(Column, bool, bool)>> {
    keys.iter()
        .map(|k| {
            k.expr
                .evaluate(batch)
                .map(|c| (c, k.ascending, k.nulls_first))
        })
        .collect()
}

/// Work accounting for one run-aware sort (see [`sort_batch_runs`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortEffort {
    /// Key comparisons actually performed (run detection/verification plus
    /// merging). The machine-independent cost of the sort.
    pub comparisons: u64,
    /// Sorted runs the input decomposed into (1 = already sorted).
    pub runs: u64,
    /// Whether the sort was elided entirely: the input was a single
    /// non-descending run, so the batch is returned as-is.
    pub elided: bool,
}

/// Run-aware stable sort: decompose the input into maximal non-descending
/// runs and merge them pairwise bottom-up — a natural merge sort. An input
/// that is already sorted costs n−1 comparisons and is returned unchanged
/// (`elided`); k pre-sorted runs (the segmented append path) merge in
/// O(n log k) instead of a full O(n log n) re-sort.
///
/// `run_hint` optionally gives run start offsets (ascending, starting at 0)
/// whose *interior* sortedness the caller has already verified — e.g. from
/// per-segment [`sorted_by`](dc_storage::Segment::sorted_by) metadata. Only
/// the boundaries between hinted runs are then checked (k−1 comparisons,
/// coalescing adjacent runs that happen to already be in order) instead of
/// scanning all n−1 adjacent pairs.
///
/// The merge is stable and ties between runs break toward the earlier run;
/// since runs are contiguous, ascending blocks of input positions, this
/// reproduces byte-for-byte the permutation of the stable full sort.
pub fn sort_batch_runs(
    batch: &Batch,
    keys: &[SortKey],
    run_hint: Option<&[usize]>,
) -> Result<(Batch, SortEffort)> {
    let key_cols = eval_keys(batch, keys)?;
    let n = batch.num_rows();
    let mut effort = SortEffort::default();
    let mut runs = run_starts(&key_cols, n, run_hint, &mut effort.comparisons);
    effort.runs = runs.len().max(1) as u64;
    if runs.len() <= 1 {
        effort.elided = true;
        return Ok((batch.clone(), effort));
    }
    // Bottom-up rounds of adjacent-pair merges; `runs` holds each run as a
    // sorted index vector from the second round on.
    let mut merged: Vec<Vec<usize>> = {
        runs.push(n);
        runs.windows(2).map(|w| (w[0]..w[1]).collect()).collect()
    };
    while merged.len() > 1 {
        let mut next = Vec::with_capacity(merged.len().div_ceil(2));
        let mut it = merged.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(&key_cols, a, b, &mut effort.comparisons)),
                None => next.push(a),
            }
        }
        merged = next;
    }
    let perm = merged.pop().unwrap_or_default();
    Ok((batch.take(&perm), effort))
}

/// Start offsets of the maximal non-descending runs of rows `[0, n)` under
/// the key columns. With a hint, only run boundaries are compared.
fn run_starts(
    key_cols: &[(Column, bool, bool)],
    n: usize,
    run_hint: Option<&[usize]>,
    comparisons: &mut u64,
) -> Vec<usize> {
    if n == 0 {
        return vec![0];
    }
    match run_hint {
        Some(hint) => {
            let mut out = vec![0];
            for &b in hint.iter().filter(|&&b| b > 0 && b < n) {
                *comparisons += 1;
                if cmp_rows(key_cols, b - 1, b) == Ordering::Greater {
                    out.push(b);
                }
            }
            out
        }
        None => {
            let mut out = vec![0];
            for i in 1..n {
                *comparisons += 1;
                if cmp_rows(key_cols, i - 1, i) == Ordering::Greater {
                    out.push(i);
                }
            }
            out
        }
    }
}

/// Stable two-run merge: `a` precedes `b` in input order, so ties keep `a`.
fn merge_two(
    key_cols: &[(Column, bool, bool)],
    a: Vec<usize>,
    b: Vec<usize>,
    comparisons: &mut u64,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        *comparisons += 1;
        if cmp_rows(key_cols, a[i], b[j]) == Ordering::Greater {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Check whether a batch is already sorted under `keys` (used by tests and
/// by the optimizer's order-property verification in debug builds).
pub fn is_sorted(batch: &Batch, keys: &[SortKey]) -> Result<bool> {
    let key_cols: Vec<(Column, bool, bool)> = keys
        .iter()
        .map(|k| {
            k.expr
                .evaluate(batch)
                .map(|c| (c, k.ascending, k.nulls_first))
        })
        .collect::<Result<_>>()?;
    for i in 1..batch.num_rows() {
        if cmp_rows(&key_cols, i - 1, i) == Ordering::Greater {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};

    fn batch() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("e2"), Value::Int(30)],
                vec![Value::str("e1"), Value::Int(20)],
                vec![Value::str("e1"), Value::Int(10)],
                vec![Value::str("e2"), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn two_key_sort() {
        let b = sort_batch(
            &batch(),
            &[
                SortKey::asc(Expr::col("epc")),
                SortKey::asc(Expr::col("rtime")),
            ],
        )
        .unwrap();
        let rt: Vec<Value> = (0..4).map(|i| b.row(i)[1].clone()).collect();
        assert_eq!(
            rt,
            vec![Value::Int(10), Value::Int(20), Value::Null, Value::Int(30)]
        );
    }

    #[test]
    fn descending_with_nulls_last() {
        let b = sort_batch(&batch(), &[SortKey::desc(Expr::col("rtime"))]).unwrap();
        assert_eq!(b.row(0)[1], Value::Int(30));
        assert_eq!(b.row(3)[1], Value::Null);
    }

    #[test]
    fn stability() {
        // Equal keys keep input order.
        let schema = schema_ref(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("seq", DataType::Int),
        ]));
        let b = Batch::from_rows(
            schema,
            &[
                vec![Value::Int(1), Value::Int(0)],
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(0), Value::Int(2)],
                vec![Value::Int(1), Value::Int(3)],
            ],
        )
        .unwrap();
        let sorted = sort_batch(&b, &[SortKey::asc(Expr::col("k"))]).unwrap();
        let seqs: Vec<Value> = (0..4).map(|i| sorted.row(i)[1].clone()).collect();
        assert_eq!(
            seqs,
            vec![Value::Int(2), Value::Int(0), Value::Int(1), Value::Int(3)]
        );
    }

    /// Count the comparisons a plain stable full sort performs, for
    /// comparing against the run-aware path.
    fn full_sort_comparisons(b: &Batch, keys: &[SortKey]) -> (Vec<usize>, u64) {
        let key_cols = eval_keys(b, keys).unwrap();
        let count = std::cell::Cell::new(0u64);
        let mut perm: Vec<usize> = (0..b.num_rows()).collect();
        perm.sort_by(|&x, &y| {
            count.set(count.get() + 1);
            cmp_rows(&key_cols, x, y)
        });
        (perm, count.get())
    }

    fn col_vals(b: &Batch) -> Vec<Value> {
        b.column(0).iter().collect()
    }

    fn int_batch(vals: &[i64]) -> Batch {
        let schema = schema_ref(Schema::new(vec![Field::new("k", DataType::Int)]));
        let rows: Vec<Vec<Value>> = vals.iter().map(|&v| vec![Value::Int(v)]).collect();
        Batch::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn sorted_input_elides() {
        let b = int_batch(&[1, 2, 2, 5, 9]);
        let keys = [SortKey::asc(Expr::col("k"))];
        let (out, effort) = sort_batch_runs(&b, &keys, None).unwrap();
        assert_eq!(col_vals(&out), col_vals(&b));
        assert!(effort.elided);
        assert_eq!(effort.runs, 1);
        assert_eq!(effort.comparisons, 4);
    }

    #[test]
    fn run_merge_matches_full_sort_with_fewer_comparisons() {
        // Two pre-sorted, value-overlapping blocks — the segmented-append
        // shape (each append batch is ordered, batches overlap in time).
        let mut vals: Vec<i64> = (0..50).collect();
        vals.extend(10..40);
        let b = int_batch(&vals);
        let keys = [SortKey::asc(Expr::col("k"))];
        let (out, effort) = sort_batch_runs(&b, &keys, None).unwrap();
        let (perm, full_cmps) = full_sort_comparisons(&b, &keys);
        assert_eq!(col_vals(&out), col_vals(&b.take(&perm)));
        assert!(!effort.elided);
        assert_eq!(effort.runs, 2);
        assert!(
            effort.comparisons < full_cmps,
            "merge {} !< full {full_cmps}",
            effort.comparisons
        );
    }

    #[test]
    fn run_merge_is_stable() {
        let schema = schema_ref(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("seq", DataType::Int),
        ]));
        // Runs [0,2) and [2,4), equal keys across the boundary.
        let b = Batch::from_rows(
            schema,
            &[
                vec![Value::Int(1), Value::Int(0)],
                vec![Value::Int(3), Value::Int(1)],
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(3), Value::Int(3)],
            ],
        )
        .unwrap();
        let keys = [SortKey::asc(Expr::col("k"))];
        let (out, effort) = sort_batch_runs(&b, &keys, None).unwrap();
        assert_eq!(effort.runs, 2);
        let seqs: Vec<Value> = (0..4).map(|i| out.row(i)[1].clone()).collect();
        assert_eq!(
            seqs,
            vec![Value::Int(0), Value::Int(2), Value::Int(1), Value::Int(3)]
        );
    }

    #[test]
    fn hint_skips_interior_comparisons_and_coalesces() {
        let mut vals: Vec<i64> = (0..50).collect(); // run 1
        vals.extend(10..40); // run 2 (out of order vs run 1)
        let b = int_batch(&vals);
        let keys = [SortKey::asc(Expr::col("k"))];
        let (detected, d_effort) = sort_batch_runs(&b, &keys, None).unwrap();
        let (hinted, h_effort) = sort_batch_runs(&b, &keys, Some(&[0, 50])).unwrap();
        assert_eq!(
            col_vals(&hinted),
            col_vals(&detected),
            "hint changes cost, never the result"
        );
        // Detection paid 79 boundary-scan comparisons; the hint pays 1.
        assert_eq!(h_effort.comparisons + 78, d_effort.comparisons);
        // A boundary that is already in order coalesces into one run.
        let sorted = int_batch(&(0..40).collect::<Vec<_>>());
        let (_, e) = sort_batch_runs(&sorted, &keys, Some(&[0, 20])).unwrap();
        assert!(e.elided);
        assert_eq!(e.comparisons, 1);
    }

    #[test]
    fn degenerate_runs_random_input_still_sorts() {
        // Worst case: strictly descending input = n singleton runs.
        let b = int_batch(&[5, 4, 3, 2, 1, 0]);
        let keys = [SortKey::asc(Expr::col("k"))];
        let (out, effort) = sort_batch_runs(&b, &keys, None).unwrap();
        let expect: Vec<Value> = (0..6).map(Value::Int).collect();
        assert_eq!(col_vals(&out), expect);
        assert_eq!(effort.runs, 6);
        // Empty batch.
        let empty = int_batch(&[]);
        let (out, effort) = sort_batch_runs(&empty, &keys, None).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert!(effort.elided);
    }

    #[test]
    fn is_sorted_checks() {
        let keys = [
            SortKey::asc(Expr::col("epc")),
            SortKey::asc(Expr::col("rtime")),
        ];
        assert!(!is_sorted(&batch(), &keys).unwrap());
        let sorted = sort_batch(&batch(), &keys).unwrap();
        assert!(is_sorted(&sorted, &keys).unwrap());
    }
}
