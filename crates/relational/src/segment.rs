//! Glue between [`dc_storage`]'s generic zone-map machinery and this
//! engine's [`Value`] type.
//!
//! `dc-storage` knows nothing about the relational layer; this module
//! instantiates its generics: [`ZoneValue`] for [`Value`] (via the engine's
//! `total_cmp`, the same order indexes and sorts use — a requirement for
//! pruning soundness), segment sealing over a [`Batch`] row range, and the
//! conversion from the scan's [`IndexCandidate`](crate::physical::scan::IndexCandidate) bounds to
//! [`ZonePredicate`]s.

use crate::batch::Batch;
use crate::index::ScanBound;
use crate::schema::SchemaRef;
use crate::value::Value;
use dc_storage::{Segment, ZoneBound, ZoneMap, ZonePredicate, ZoneValue};
use std::cmp::Ordering;

impl ZoneValue for Value {
    fn zcmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

/// Seal the rows `[start, data.num_rows())` of a batch into segments of at
/// most `target_rows` rows (`None` = one segment), assigning ids from
/// `next_id`. Returns an empty vector when there is nothing to seal.
///
/// `order_hint` names column positions the caller *expects* each segment to
/// be lexicographically non-descending on (e.g. the table's declared
/// sequence order). Sealing verifies the longest prefix of the hint that
/// actually holds for the segment's rows — under the same NULLs-first
/// `total_cmp` order the engine's sorts use — and records it in
/// [`Segment::sorted_by`]. Zone-map-style soundness: the metadata is
/// computed from the sealed, immutable rows themselves, so a later sort may
/// trust it (treating the segment as a pre-sorted run) without any
/// possibility of changing results.
pub fn seal_segments(
    data: &Batch,
    start: usize,
    next_id: u64,
    target_rows: Option<usize>,
    order_hint: &[usize],
) -> Vec<Segment<Value>> {
    let total = data.num_rows();
    if start >= total {
        return Vec::new();
    }
    let chunk = target_rows.unwrap_or(total - start).max(1);
    let mut out = Vec::new();
    let mut id = next_id;
    let mut lo = start;
    while lo < total {
        let hi = (lo + chunk).min(total);
        out.push(seal_one(data, id, lo, hi, order_hint));
        id += 1;
        lo = hi;
    }
    out
}

fn seal_one(data: &Batch, id: u64, lo: usize, hi: usize, order_hint: &[usize]) -> Segment<Value> {
    let zones = (0..data.schema().fields().len())
        .map(|ci| {
            let col = data.column(ci);
            let mut z = ZoneMap::new();
            for i in lo..hi {
                if col.is_null(i) {
                    z.observe_null();
                } else {
                    z.observe(&col.value(i));
                }
            }
            z
        })
        .collect();
    let verified = verified_order_prefix(data, lo, hi, order_hint);
    Segment {
        id,
        start: lo,
        rows: hi - lo,
        zones,
        sorted_by: order_hint[..verified].to_vec(),
    }
}

/// Compare rows `a`, `b` on column `ci`, ascending with NULLs first — the
/// exact order `sort::cmp_rows` uses for `SortKey::asc`, which is what makes
/// trusting the recorded prefix sound for run detection.
fn cmp_on(data: &Batch, ci: usize, a: usize, b: usize) -> Ordering {
    let col = data.column(ci);
    match (col.is_null(a), col.is_null(b)) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => col.value(a).total_cmp(&col.value(b)),
    }
}

/// Length of the longest prefix of `hint` under which rows `[lo, hi)` are
/// lexicographically non-descending. One pass: a pair whose first differing
/// hint column compares `Greater` at depth `d` violates every prefix longer
/// than `d` (prefixes of length ≤ d see the pair as equal), so the answer is
/// the minimum such depth over all adjacent pairs.
pub(crate) fn verified_order_prefix(data: &Batch, lo: usize, hi: usize, hint: &[usize]) -> usize {
    let mut verified = hint.len();
    for i in lo + 1..hi {
        for (depth, &ci) in hint.iter().enumerate().take(verified) {
            match cmp_on(data, ci, i - 1, i) {
                Ordering::Less => break,
                Ordering::Equal => continue,
                Ordering::Greater => {
                    verified = depth;
                    break;
                }
            }
        }
        if verified == 0 {
            break;
        }
    }
    verified
}

fn to_zone_bound(b: &ScanBound) -> ZoneBound<Value> {
    match b {
        ScanBound::Unbounded => ZoneBound::Unbounded,
        ScanBound::Inclusive(v) => ZoneBound::Inclusive(v.clone()),
        ScanBound::Exclusive(v) => ZoneBound::Exclusive(v.clone()),
    }
}

/// Convert one scan candidate (column name + range bounds + optional
/// IN-list) to a zone predicate over a schema's column position. Returns
/// `None` when the column is absent or the candidate carries no constraint.
///
/// Candidates are *necessary* conditions of the scan's residual filter
/// (`derive_index_candidates` extracts only bounds implied by the whole
/// filter), so applying them conjunctively to prune segments is sound.
pub fn candidate_zone_predicate(
    schema: &SchemaRef,
    column: &str,
    lower: &ScanBound,
    upper: &ScanBound,
    in_values: Option<&[Value]>,
) -> Option<ZonePredicate<Value>> {
    let ci = schema
        .fields()
        .iter()
        .position(|f| f.name.eq_ignore_ascii_case(column))?;
    let p = ZonePredicate {
        column: ci,
        lower: to_zone_bound(lower),
        upper: to_zone_bound(upper),
        in_values: in_values.map(<[Value]>::to_vec),
    };
    (!p.is_trivial()).then_some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::schema_ref;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn batch() -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        Batch::from_rows(
            schema,
            &[
                vec![Value::str("e1"), Value::Int(10)],
                vec![Value::str("e1"), Value::Int(20)],
                vec![Value::str("e2"), Value::Null],
                vec![Value::str("e3"), Value::Int(40)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn seal_chunks_and_summarizes() {
        let b = batch();
        let segs = seal_segments(&b, 0, 0, Some(2), &[]);
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].start, segs[0].rows), (0, 2));
        assert_eq!((segs[1].start, segs[1].rows), (2, 2));
        assert_eq!(segs[1].id, 1);
        let z = segs[1].zone(1).unwrap();
        assert_eq!(z.min, Some(Value::Int(40)));
        assert_eq!(z.null_count, 1);
        // Sealing from an offset with fresh ids.
        let more = seal_segments(&b, 3, 7, None, &[]);
        assert_eq!(more.len(), 1);
        assert_eq!((more[0].id, more[0].start, more[0].rows), (7, 3, 1));
        assert!(seal_segments(&b, 4, 9, None, &[]).is_empty());
    }

    #[test]
    fn seal_verifies_longest_order_prefix() {
        // batch() is (epc, rtime)-sorted: every adjacent pair already
        // differs on epc, so the NULL rtime never has to carry the order.
        let b = batch();
        let segs = seal_segments(&b, 0, 0, None, &[0, 1]);
        assert_eq!(segs[0].sorted_by, vec![0, 1]);
        // Reversed rows: not sorted on epc at all.
        let rev = b.take(&[3, 2, 1, 0]);
        let segs = seal_segments(&rev, 0, 0, None, &[0, 1]);
        assert!(segs[0].sorted_by.is_empty());
        // Sorted on epc but with rtime descending within e1: prefix = [0].
        let shuffled = Batch::from_rows(
            b.schema().clone(),
            &[
                vec![Value::str("e1"), Value::Int(20)],
                vec![Value::str("e1"), Value::Int(10)],
                vec![Value::str("e2"), Value::Int(5)],
            ],
        )
        .unwrap();
        let segs = seal_segments(&shuffled, 0, 0, None, &[0, 1]);
        assert_eq!(segs[0].sorted_by, vec![0]);
        // NULLs-first: a NULL rtime before a non-null one within a group is
        // in order; after it is not.
        let nulls = Batch::from_rows(
            b.schema().clone(),
            &[
                vec![Value::str("e1"), Value::Null],
                vec![Value::str("e1"), Value::Int(10)],
            ],
        )
        .unwrap();
        assert_eq!(
            seal_segments(&nulls, 0, 0, None, &[0, 1])[0].sorted_by,
            [0, 1]
        );
        let nulls_last = nulls.take(&[1, 0]);
        assert_eq!(
            seal_segments(&nulls_last, 0, 0, None, &[0, 1])[0].sorted_by,
            [0]
        );
    }

    #[test]
    fn candidate_conversion_prunes() {
        let b = batch();
        let segs = seal_segments(&b, 0, 0, Some(2), &[]);
        let p = candidate_zone_predicate(
            b.schema(),
            "RTIME",
            &ScanBound::Inclusive(Value::Int(30)),
            &ScanBound::Unbounded,
            None,
        )
        .unwrap();
        assert!(!segs[0].may_match_all(std::slice::from_ref(&p)));
        assert!(segs[1].may_match_all(std::slice::from_ref(&p)));
        // Unknown column or no constraint -> no predicate.
        assert!(candidate_zone_predicate(
            b.schema(),
            "nope",
            &ScanBound::Unbounded,
            &ScanBound::Unbounded,
            None
        )
        .is_none());
        assert!(candidate_zone_predicate(
            b.schema(),
            "rtime",
            &ScanBound::Unbounded,
            &ScanBound::Unbounded,
            None
        )
        .is_none());
    }
}
