//! Clean-data generation: supply-chain topology and shipment traces.

use crate::config::GenConfig;
use rand::rngs::StdRng;
use rand::Rng;

/// One site in the three-level distribution topology.
#[derive(Debug, Clone)]
pub struct Site {
    pub name: String,
    /// Global location ids of this site's locations (indexes into
    /// `Topology::glns`).
    pub locations: Vec<usize>,
}

/// The full topology: DCs, warehouses, stores, and the location table rows.
#[derive(Debug)]
pub struct Topology {
    pub sites: Vec<Site>,
    /// Index ranges within `sites`: DCs, then warehouses, then stores.
    pub num_dcs: usize,
    pub num_warehouses: usize,
    pub num_stores: usize,
    /// 13-character Global Location Numbers, indexed by location id.
    pub glns: Vec<String>,
    /// Human-readable location descriptions, parallel to `glns`.
    pub loc_descs: Vec<String>,
    /// Site name per location id.
    pub loc_sites: Vec<String>,
    /// warehouse -> dc, store -> warehouse assignments (site indexes).
    pub warehouse_dc: Vec<usize>,
    pub store_warehouse: Vec<usize>,
}

impl Topology {
    pub fn build(cfg: &GenConfig, rng: &mut StdRng) -> Topology {
        let mut sites = Vec::with_capacity(cfg.num_sites());
        let mut glns = Vec::with_capacity(cfg.num_locations());
        let mut loc_descs = Vec::with_capacity(cfg.num_locations());
        let mut loc_sites = Vec::with_capacity(cfg.num_locations());
        let add_site = |name: String,
                        glns: &mut Vec<String>,
                        loc_descs: &mut Vec<String>,
                        loc_sites: &mut Vec<String>| {
            let mut locations = Vec::with_capacity(cfg.locations_per_site);
            for j in 0..cfg.locations_per_site {
                let id = glns.len();
                glns.push(format!("{id:013}"));
                loc_descs.push(format!("{name} location {j}"));
                loc_sites.push(name.clone());
                locations.push(id);
            }
            Site { name, locations }
        };
        for i in 0..cfg.num_dcs {
            sites.push(add_site(
                format!("distribution center {i}"),
                &mut glns,
                &mut loc_descs,
                &mut loc_sites,
            ));
        }
        for i in 0..cfg.num_warehouses {
            sites.push(add_site(
                format!("warehouse {i}"),
                &mut glns,
                &mut loc_descs,
                &mut loc_sites,
            ));
        }
        for i in 0..cfg.num_stores {
            sites.push(add_site(
                format!("store {i}"),
                &mut glns,
                &mut loc_descs,
                &mut loc_sites,
            ));
        }
        // Each warehouse receives from one DC; each store from one warehouse.
        let warehouse_dc = (0..cfg.num_warehouses)
            .map(|_| rng.gen_range(0..cfg.num_dcs))
            .collect();
        let store_warehouse = (0..cfg.num_stores)
            .map(|_| rng.gen_range(0..cfg.num_warehouses))
            .collect();
        Topology {
            sites,
            num_dcs: cfg.num_dcs,
            num_warehouses: cfg.num_warehouses,
            num_stores: cfg.num_stores,
            glns,
            loc_descs,
            loc_sites,
            warehouse_dc,
            store_warehouse,
        }
    }

    /// Site index of a store / warehouse / dc in `sites`.
    pub fn store_site(&self, store: usize) -> usize {
        self.num_dcs + self.num_warehouses + store
    }

    pub fn warehouse_site(&self, wh: usize) -> usize {
        self.num_dcs + wh
    }

    pub fn dc_site(&self, dc: usize) -> usize {
        dc
    }
}

/// One RFID read (indexes rather than strings; resolved on batch build).
#[derive(Debug, Clone)]
pub struct Read {
    pub rtime: i64,
    /// Location id (index into `Topology::glns`).
    pub loc: usize,
    /// Reader id; one reader per location, so this equals the location id
    /// unless an anomaly overrides it with the forklift reader.
    pub reader: ReaderId,
    /// Business step index.
    pub step: usize,
}

/// Reader attribution of a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReaderId {
    Location(usize),
    /// The forklift reader of the reader-rule scenario ("readerX").
    ReaderX,
}

/// One case trace: its pallet, and its reads (kept sorted by rtime).
#[derive(Debug)]
pub struct CaseTrace {
    pub pallet: usize,
    pub reads: Vec<Read>,
}

/// One pallet trace.
#[derive(Debug)]
pub struct PalletTrace {
    pub reads: Vec<Read>,
    /// Case indexes (into `CleanData::cases`) contained in this pallet.
    pub cases: Vec<usize>,
}

/// Everything generated before anomaly injection.
#[derive(Debug)]
pub struct CleanData {
    pub topology: Topology,
    pub pallets: Vec<PalletTrace>,
    pub cases: Vec<CaseTrace>,
    /// Product index per case.
    pub case_product: Vec<usize>,
    /// Manufacturer index per product.
    pub product_manufacturer: Vec<usize>,
}

/// Generate clean traces for `cfg.scale` pallets.
pub fn generate_clean(cfg: &GenConfig, rng: &mut StdRng) -> CleanData {
    let topology = Topology::build(cfg, rng);
    let product_manufacturer: Vec<usize> = (0..cfg.num_products)
        .map(|_| rng.gen_range(0..cfg.num_manufacturers))
        .collect();

    let mut pallets = Vec::with_capacity(cfg.scale);
    let mut cases = Vec::new();
    let mut case_product = Vec::new();

    for _ in 0..cfg.scale {
        // Route: DC -> warehouse -> store.
        let store = rng.gen_range(0..topology.num_stores);
        let wh = topology.store_warehouse[store];
        let dc = topology.warehouse_dc[wh];
        let path_sites = [
            topology.dc_site(dc),
            topology.warehouse_site(wh),
            topology.store_site(store),
        ];

        // Pallet stops: reads_per_site random locations per site, in order.
        let mut stops: Vec<(i64, usize)> = Vec::with_capacity(3 * cfg.reads_per_site);
        let mut t = rng.gen_range(0..cfg.time_window_secs);
        for &site in &path_sites {
            for _ in 0..cfg.reads_per_site {
                let locs = &topology.sites[site].locations;
                let loc = locs[rng.gen_range(0..locs.len())];
                stops.push((t, loc));
                t += rng.gen_range(cfg.min_latency_secs..=cfg.max_latency_secs);
            }
        }

        let pallet_reads: Vec<Read> = stops
            .iter()
            .map(|&(t, loc)| Read {
                rtime: t,
                loc,
                reader: ReaderId::Location(loc),
                step: rng.gen_range(0..cfg.num_steps),
            })
            .collect();

        let n_cases = rng.gen_range(cfg.min_cases_per_pallet..=cfg.max_cases_per_pallet);
        let mut case_ids = Vec::with_capacity(n_cases);
        for _ in 0..n_cases {
            let reads: Vec<Read> = stops
                .iter()
                .map(|&(t, loc)| Read {
                    rtime: t + rng.gen_range(1..=cfg.max_case_offset_secs),
                    loc,
                    reader: ReaderId::Location(loc),
                    step: rng.gen_range(0..cfg.num_steps),
                })
                .collect();
            case_ids.push(cases.len());
            cases.push(CaseTrace {
                pallet: pallets.len(),
                reads,
            });
            case_product.push(rng.gen_range(0..cfg.num_products));
        }
        pallets.push(PalletTrace {
            reads: pallet_reads,
            cases: case_ids,
        });
    }

    CleanData {
        topology,
        pallets,
        cases,
        case_product,
        product_manufacturer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn data(seed: u64) -> CleanData {
        let cfg = GenConfig::tiny(3, 0.0, seed);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        generate_clean(&cfg, &mut rng)
    }

    #[test]
    fn trace_shape() {
        let cfg = GenConfig::tiny(3, 0.0, 7);
        let d = data(7);
        assert_eq!(d.pallets.len(), 3);
        for p in &d.pallets {
            assert_eq!(p.reads.len(), 3 * cfg.reads_per_site);
            assert!(p.cases.len() >= cfg.min_cases_per_pallet);
            assert!(p.cases.len() <= cfg.max_cases_per_pallet);
        }
        for c in &d.cases {
            assert_eq!(c.reads.len(), 30);
            // Case reads strictly increase in time (latency >> case offset).
            assert!(c.reads.windows(2).all(|w| w[0].rtime < w[1].rtime));
        }
    }

    #[test]
    fn cases_travel_with_pallet() {
        let d = data(11);
        for (ci, c) in d.cases.iter().enumerate() {
            let p = &d.pallets[c.pallet];
            assert!(p.cases.contains(&ci));
            for (cr, pr) in c.reads.iter().zip(&p.reads) {
                assert_eq!(cr.loc, pr.loc);
                let dt = cr.rtime - pr.rtime;
                assert!((1..=599).contains(&dt), "case offset {dt}");
            }
        }
    }

    #[test]
    fn route_follows_topology_levels() {
        let d = data(13);
        let topo = &d.topology;
        for p in &d.pallets {
            let site_of = |loc: usize| topo.loc_sites[loc].clone();
            let first = site_of(p.reads[0].loc);
            let mid = site_of(p.reads[10].loc);
            let last = site_of(p.reads[20].loc);
            assert!(first.starts_with("distribution center"));
            assert!(mid.starts_with("warehouse"));
            assert!(last.starts_with("store"));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = data(5);
        let b = data(5);
        assert_eq!(a.cases.len(), b.cases.len());
        assert_eq!(a.cases[0].reads[0].rtime, b.cases[0].reads[0].rtime);
        let c = data(6);
        assert!(
            a.cases.len() != c.cases.len()
                || a.cases[0].reads[0].rtime != c.cases[0].reads[0].rtime
        );
    }

    #[test]
    fn gln_format() {
        let d = data(1);
        for g in &d.topology.glns {
            assert_eq!(g.len(), 13);
            assert!(g.chars().all(|c| c.is_ascii_digit()));
        }
    }
}
