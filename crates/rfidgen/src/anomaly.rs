//! Anomaly injection (paper §6.1): "We add five types of anomalies ... by
//! reversing the action of the cleansing rules", distributed evenly over the
//! types, on case reads only (pallets read reliably).

use crate::config::GenConfig;
use crate::gen::{CleanData, Read, ReaderId};
use rand::rngs::StdRng;
use rand::Rng;

/// How many injections of each type were performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnomalyCounts {
    pub duplicate: usize,
    pub reader: usize,
    pub replacing: usize,
    pub cycle: usize,
    pub missing: usize,
}

impl AnomalyCounts {
    pub fn total(&self) -> usize {
        self.duplicate + self.reader + self.replacing + self.cycle + self.missing
    }
}

/// Locations reserved for the replacing-rule scenario: reads at `loc2` that
/// are followed by a read at `loc_a` are cross reads whose true location is
/// `loc1` (paper Example 3). The injector uses the *last* three locations of
/// the last store so they rarely collide with organic traffic.
#[derive(Debug, Clone)]
pub struct SpecialLocations {
    pub loc1: usize,
    pub loc2: usize,
    pub loc_a: usize,
}

impl SpecialLocations {
    pub fn pick(data: &CleanData) -> SpecialLocations {
        let n = data.topology.glns.len();
        assert!(n >= 3, "topology too small");
        SpecialLocations {
            loc1: n - 3,
            loc2: n - 2,
            loc_a: n - 1,
        }
    }
}

/// Inject anomalies into the case traces, in place. Returns the injection
/// counts. `data.cases[..].reads` stay sorted by `rtime`.
pub fn inject_anomalies(
    cfg: &GenConfig,
    data: &mut CleanData,
    special: &SpecialLocations,
    rng: &mut StdRng,
) -> AnomalyCounts {
    let clean_reads: usize = data.cases.iter().map(|c| c.reads.len()).sum();
    let total = ((cfg.anomaly_pct / 100.0) * clean_reads as f64).round() as usize;
    let per_type = total / 5;
    let mut counts = AnomalyCounts::default();
    if data.cases.is_empty() {
        return counts;
    }

    let n_cases = data.cases.len();
    let pick_case_stop = |rng: &mut StdRng, data: &CleanData, min_len: usize| {
        // Reads never shrink below 2, so this terminates.
        loop {
            let ci = rng.gen_range(0..n_cases);
            let len = data.cases[ci].reads.len();
            if len >= min_len {
                return (ci, rng.gen_range(0..len));
            }
        }
    };

    // 1. Duplicate reads: a second read at the same location < t1 later.
    for _ in 0..per_type {
        let (ci, si) = pick_case_stop(rng, data, 2);
        let base = data.cases[ci].reads[si].clone();
        let dup = Read {
            rtime: base.rtime + rng.gen_range(1..300),
            ..base
        };
        insert_sorted(&mut data.cases[ci].reads, dup);
        counts.duplicate += 1;
    }

    // 2. Reader anomalies: a spurious read shortly before a forklift
    //    (readerX) read — the forklift carried the case past another reader.
    for _ in 0..per_type {
        let (ci, si) = pick_case_stop(rng, data, 2);
        let reads = &mut data.cases[ci].reads;
        reads[si].reader = ReaderId::ReaderX;
        let anchor = reads[si].clone();
        let other_loc = rng.gen_range(0..data.topology.glns.len());
        let spurious = Read {
            rtime: (anchor.rtime - rng.gen_range(30..300)).max(0),
            loc: other_loc,
            reader: ReaderId::Location(other_loc),
            step: anchor.step,
        };
        insert_sorted(reads, spurious);
        counts.reader += 1;
    }

    // 3. Replacing (cross reads): a pair [loc2@t, locA@t+<t3] where the loc2
    //    read's true location is loc1.
    for _ in 0..per_type {
        let (ci, si) = pick_case_stop(rng, data, 2);
        let reads = &mut data.cases[ci].reads;
        let t = reads[si].rtime + 1;
        let step = reads[si].step;
        let cross = Read {
            rtime: t,
            loc: special.loc2,
            reader: ReaderId::Location(special.loc2),
            step,
        };
        let confirm = Read {
            rtime: t + rng.gen_range(1..1200),
            loc: special.loc_a,
            reader: ReaderId::Location(special.loc_a),
            step,
        };
        insert_sorted(reads, cross);
        insert_sorted(reads, confirm);
        counts.replacing += 1;
    }

    // 4. Cycles: after a read at X, bounce to Y and back to X.
    for _ in 0..per_type {
        let (ci, si) = pick_case_stop(rng, data, 2);
        let reads = &mut data.cases[ci].reads;
        let x = reads[si].clone();
        let next_t = reads.get(si + 1).map(|r| r.rtime).unwrap_or(x.rtime + 3600);
        let gap = ((next_t - x.rtime) / 3).max(2);
        let other_loc = (x.loc + 1) % data.topology.glns.len();
        let y = Read {
            rtime: x.rtime + gap,
            loc: other_loc,
            reader: ReaderId::Location(other_loc),
            step: x.step,
        };
        let x2 = Read {
            rtime: x.rtime + 2 * gap,
            loc: x.loc,
            reader: ReaderId::Location(x.loc),
            step: x.step,
        };
        insert_sorted(reads, y);
        insert_sorted(reads, x2);
        counts.cycle += 1;
    }

    // 5. Missing reads: drop a case read at a non-final stop (the pallet
    //    read remains, so the missing rule can compensate).
    for _ in 0..per_type {
        loop {
            let ci = rng.gen_range(0..n_cases);
            let len = data.cases[ci].reads.len();
            if len >= 3 {
                let si = rng.gen_range(0..len - 1);
                data.cases[ci].reads.remove(si);
                counts.missing += 1;
                break;
            }
        }
    }

    counts
}

fn insert_sorted(reads: &mut Vec<Read>, read: Read) {
    let pos = reads.partition_point(|r| r.rtime <= read.rtime);
    reads.insert(pos, read);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_clean;
    use rand::SeedableRng;

    fn prepared(pct: f64, seed: u64) -> (GenConfig, CleanData, AnomalyCounts) {
        let cfg = GenConfig::tiny(3, pct, seed);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut data = generate_clean(&cfg, &mut rng);
        let special = SpecialLocations::pick(&data);
        let counts = inject_anomalies(&cfg, &mut data, &special, &mut rng);
        (cfg, data, counts)
    }

    #[test]
    fn counts_match_percentage() {
        let (_, data, counts) = prepared(20.0, 3);
        let clean: usize = data.cases.iter().map(|_| 30usize).sum();
        let expected_per_type = (clean as f64 * 0.2 / 5.0) as usize;
        // Each type within rounding of the even split.
        for c in [
            counts.duplicate,
            counts.reader,
            counts.replacing,
            counts.cycle,
            counts.missing,
        ] {
            assert!(
                (c as i64 - expected_per_type as i64).abs() <= 1,
                "{counts:?} vs per-type {expected_per_type}"
            );
        }
    }

    #[test]
    fn reads_remain_sorted() {
        let (_, data, _) = prepared(40.0, 9);
        for c in &data.cases {
            assert!(c.reads.windows(2).all(|w| w[0].rtime <= w[1].rtime));
        }
    }

    #[test]
    fn zero_percent_changes_nothing() {
        let (_, data, counts) = prepared(0.0, 5);
        assert_eq!(counts.total(), 0);
        for c in &data.cases {
            assert_eq!(c.reads.len(), 30);
        }
    }

    #[test]
    fn missing_reduces_and_insertions_grow() {
        let (_, data, counts) = prepared(30.0, 21);
        let total_reads: usize = data.cases.iter().map(|c| c.reads.len()).sum();
        let clean = data.cases.len() * 30;
        // duplicates + reader + 2*replacing + 2*cycle added, missing removed.
        let expected =
            clean + counts.duplicate + counts.reader + 2 * counts.replacing + 2 * counts.cycle
                - counts.missing;
        assert_eq!(total_reads, expected);
    }

    #[test]
    fn readerx_reads_present_after_reader_injection() {
        let (_, data, counts) = prepared(25.0, 8);
        let readerx = data
            .cases
            .iter()
            .flat_map(|c| &c.reads)
            .filter(|r| r.reader == ReaderId::ReaderX)
            .count();
        // Later missing-injections may remove a few readerX anchors.
        assert!(readerx * 2 >= counts.reader, "{readerx} vs {counts:?}");
    }
}
