//! # dc-rfidgen — RFIDGen, the synthetic RFID workload generator
//!
//! Reimplements the paper's RFIDGen (§6.1): a retailer's supply chain where
//! every shipment flows through a distribution center, a warehouse, and a
//! retail store, producing 30 reads per EPC; pallets carry 20–80 cases; case
//! reads trail their pallet's by under ten minutes. Five anomaly types
//! (duplicate, reader, replacing/cross-read, cycle, missing) are injected by
//! reversing the cleansing rules' actions, split evenly over a configured
//! percentage.
//!
//! [`generate_into`] loads the seven-table schema of Figure 5 — caseR,
//! palletR, parent, EPC_info, product, steps, locs — into a catalog with the
//! paper's indexes; the returned [`Dataset`] provides the benchmark rules,
//! queries (q1, q2, q2′), selectivity quantiles, and the derived input for
//! the missing rule.
//!
//! ```
//! use dc_relational::table::Catalog;
//! use dc_rfidgen::{generate_into, GenConfig};
//!
//! let catalog = Catalog::new();
//! let ds = generate_into(&catalog, GenConfig::tiny(2, 10.0, 42)).unwrap();
//! assert!(ds.case_reads > 0);
//! assert!(catalog.contains("caser"));
//! ```

pub mod anomaly;
pub mod config;
pub mod dataset;
pub mod gen;

pub use anomaly::{AnomalyCounts, SpecialLocations};
pub use config::GenConfig;
pub use dataset::{generate_into, Dataset};
