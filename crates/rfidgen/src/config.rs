//! Generator configuration (paper §6.1).

/// Configuration for RFIDGen. Defaults follow the paper's description of a
/// retailer *W*: goods flow through a distribution center, a warehouse, and
/// a retail store; every site has 100 readers/locations; every shipment is
/// read 10 times per site (30 reads total); consecutive reads are 1–36 h
/// apart; the first read falls in a 5-year window; a pallet carries 20–80
/// cases; 1,000 products from 50 manufacturers; 100 business steps in 10
/// types.
///
/// Note on the location count: the paper says both "1,000 retail stores"
/// and "the location table stores all 13,000 distinct locations". With 100
/// locations per site, 13,000 locations correspond to 5 + 25 + 100 sites, so
/// the defaults use 100 stores (the numbers cannot all hold at once; we keep
/// the *location-table cardinality*, which the evaluation depends on).
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Scale factor s = number of pallet EPCs (the paper's "s").
    pub scale: usize,
    /// Percentage of anomalies to inject over the clean case reads (the
    /// paper's D: 10, 20, 30, 40), split evenly over the five types.
    pub anomaly_pct: f64,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,

    pub num_dcs: usize,
    pub num_warehouses: usize,
    pub num_stores: usize,
    pub locations_per_site: usize,
    /// Reads per site on a shipment's path (3 sites ⇒ 3× this many reads).
    pub reads_per_site: usize,

    pub min_cases_per_pallet: usize,
    pub max_cases_per_pallet: usize,

    /// First-read window in seconds (5 years).
    pub time_window_secs: i64,
    /// Latency between consecutive reads of one shipment, in seconds.
    pub min_latency_secs: i64,
    pub max_latency_secs: i64,
    /// A case is read within this many seconds after its pallet.
    pub max_case_offset_secs: i64,

    pub num_products: usize,
    pub num_manufacturers: usize,
    pub num_steps: usize,
    pub num_step_types: usize,

    /// Target rows per caseR storage segment. The loader creates the
    /// table's indexes first and then appends reads in chunks of this
    /// size, so ingest exercises segment sealing, zone-map construction,
    /// and incremental index extension.
    pub segment_rows: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            scale: 100,
            anomaly_pct: 10.0,
            seed: 42,
            num_dcs: 5,
            num_warehouses: 25,
            num_stores: 100,
            locations_per_site: 100,
            reads_per_site: 10,
            min_cases_per_pallet: 20,
            max_cases_per_pallet: 80,
            time_window_secs: 5 * 365 * 24 * 3600,
            min_latency_secs: 3600,
            max_latency_secs: 36 * 3600,
            max_case_offset_secs: 599,
            num_products: 1000,
            num_manufacturers: 50,
            num_steps: 100,
            num_step_types: 10,
            segment_rows: 1024,
        }
    }
}

impl GenConfig {
    /// A small configuration for unit tests: ~`scale * 50 * 30` case reads.
    pub fn tiny(scale: usize, anomaly_pct: f64, seed: u64) -> Self {
        GenConfig {
            scale,
            anomaly_pct,
            seed,
            num_stores: 10,
            num_warehouses: 5,
            num_dcs: 2,
            locations_per_site: 10,
            ..GenConfig::default()
        }
    }

    /// Total number of sites.
    pub fn num_sites(&self) -> usize {
        self.num_dcs + self.num_warehouses + self.num_stores
    }

    /// Total number of locations (= rows of the locs table).
    pub fn num_locations(&self) -> usize {
        self.num_sites() * self.locations_per_site
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = GenConfig::default();
        assert_eq!(c.num_sites(), 130);
        assert_eq!(c.num_locations(), 13_000);
        assert_eq!(c.reads_per_site * 3, 30);
        assert_eq!(c.time_window_secs, 157_680_000);
    }

    #[test]
    fn tiny_is_smaller() {
        let c = GenConfig::tiny(2, 0.0, 1);
        assert!(c.num_locations() < 200);
        assert_eq!(c.scale, 2);
    }
}
