//! Building relational tables from generated traces, plus the benchmark
//! rule set and queries of the paper's §6.

use crate::anomaly::{inject_anomalies, AnomalyCounts, SpecialLocations};
use crate::config::GenConfig;
use crate::gen::{generate_clean, CleanData, ReaderId};
use dc_relational::batch::{schema_ref, Batch};
use dc_relational::column::ColumnBuilder;
use dc_relational::error::Result;
use dc_relational::schema::{Field, Schema};
use dc_relational::table::{Catalog, Table};
use dc_relational::value::{DataType, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Handle returned by [`generate_into`]: anomaly accounting, selectivity
/// helpers, and the paper's benchmark rules/queries instantiated against
/// this dataset.
#[derive(Debug)]
pub struct Dataset {
    pub config: GenConfig,
    pub counts: AnomalyCounts,
    /// GLNs of the replacing-rule locations (loc1, loc2, locA).
    pub loc1: String,
    pub loc2: String,
    pub loc_a: String,
    /// Number of rows loaded into caseR.
    pub case_reads: usize,
    /// Number of rows loaded into palletR.
    pub pallet_reads: usize,
    /// Sorted caseR read times, for selectivity targeting.
    rtimes: Vec<i64>,
}

fn reads_schema() -> Arc<Schema> {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("reader", DataType::Str),
        Field::new("biz_loc", DataType::Str),
        Field::new("biz_step", DataType::Str),
    ]))
}

fn input_schema() -> Arc<Schema> {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("reader", DataType::Str),
        Field::new("biz_loc", DataType::Str),
        Field::new("biz_step", DataType::Str),
        Field::new("is_pallet", DataType::Int),
    ]))
}

fn case_epc(i: usize) -> String {
    format!("urn:epc:case:{i:012}")
}

fn pallet_epc(i: usize) -> String {
    format!("urn:epc:pallet:{i:010}")
}

fn step_name(i: usize) -> String {
    format!("step{i:03}")
}

/// Generate the seven-table RFID schema of Figure 5 into `catalog`,
/// with anomalies injected per the configuration, and create the paper's
/// indexes (every caseR/palletR column except `reader`; parent on
/// child_epc; locs additionally on site; steps additionally on type).
pub fn generate_into(catalog: &Catalog, config: GenConfig) -> Result<Dataset> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut data = generate_clean(&config, &mut rng);
    let special = SpecialLocations::pick(&data);
    let counts = inject_anomalies(&config, &mut data, &special, &mut rng);

    let dataset = load_tables(catalog, &config, &data, &special, counts, &mut rng)?;
    Ok(dataset)
}

fn read_row(data: &CleanData, epc: &str, r: &crate::gen::Read) -> Vec<Value> {
    let reader = match r.reader {
        ReaderId::Location(l) => format!("rdr:{}", data.topology.glns[l]),
        ReaderId::ReaderX => "readerX".to_string(),
    };
    vec![
        Value::str(epc),
        Value::Int(r.rtime),
        Value::str(reader),
        Value::str(&data.topology.glns[r.loc]),
        Value::str(step_name(r.step)),
    ]
}

fn load_tables(
    catalog: &Catalog,
    config: &GenConfig,
    data: &CleanData,
    special: &SpecialLocations,
    counts: AnomalyCounts,
    rng: &mut StdRng,
) -> Result<Dataset> {
    // --- caseR ---
    let mut case_rows: Vec<Vec<Value>> = Vec::new();
    let mut rtimes: Vec<i64> = Vec::new();
    for (ci, c) in data.cases.iter().enumerate() {
        let epc = case_epc(ci);
        for r in &c.reads {
            case_rows.push(read_row(data, &epc, r));
            rtimes.push(r.rtime);
        }
    }
    rtimes.sort_unstable();
    let case_reads = case_rows.len();
    // caseR is loaded as a *segmented* table via append ingest: indexes
    // are created up front on the empty table and every appended chunk
    // seals one segment (zone maps included) and extends the indexes
    // incrementally — the arrival pattern of a live RFID feed.
    let full = Batch::from_rows(reads_schema(), &case_rows)?;
    let mut caser =
        Table::with_segment_rows("caser", Batch::empty(reads_schema()), config.segment_rows);
    // Case rows are generated case-by-case with reads in time order, so the
    // feed is (epc, rtime)-sorted; declaring that before ingest lets every
    // sealed segment verify and record the order, which window sorts over
    // caser later exploit as metadata-only run detection.
    caser.set_sequence_order(&["epc", "rtime"])?;
    for col in ["epc", "rtime", "biz_loc", "biz_step"] {
        caser.create_index(col)?;
    }
    let mut start = 0;
    while start < full.num_rows() {
        let end = start
            .saturating_add(config.segment_rows)
            .min(full.num_rows());
        let idx: Vec<usize> = (start..end).collect();
        caser.append(full.take(&idx))?;
        start = end;
    }
    catalog.register(caser);

    // --- palletR ---
    let mut pallet_rows: Vec<Vec<Value>> = Vec::new();
    for (pi, p) in data.pallets.iter().enumerate() {
        let epc = pallet_epc(pi);
        for r in &p.reads {
            pallet_rows.push(read_row(data, &epc, r));
        }
    }
    let pallet_reads = pallet_rows.len();
    let mut palletr = Table::new("palletr", Batch::from_rows(reads_schema(), &pallet_rows)?);
    for col in ["epc", "rtime", "biz_loc", "biz_step"] {
        palletr.create_index(col)?;
    }
    catalog.register(palletr);

    // --- parent ---
    let parent_schema = schema_ref(Schema::new(vec![
        Field::new("child_epc", DataType::Str),
        Field::new("parent_epc", DataType::Str),
    ]));
    let parent_rows: Vec<Vec<Value>> = data
        .cases
        .iter()
        .enumerate()
        .map(|(ci, c)| vec![Value::str(case_epc(ci)), Value::str(pallet_epc(c.pallet))])
        .collect();
    let mut parent = Table::new("parent", Batch::from_rows(parent_schema, &parent_rows)?);
    parent.create_index("child_epc")?;
    catalog.register(parent);

    // --- epc_info ---
    let info_schema = schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("product", DataType::Str),
        Field::new("lot", DataType::Int),
        Field::new("manu_date", DataType::Int),
        Field::new("exp_date", DataType::Int),
    ]));
    let info_rows: Vec<Vec<Value>> = data
        .cases
        .iter()
        .enumerate()
        .map(|(ci, _)| {
            let manu = rng.gen_range(0..config.time_window_secs);
            vec![
                Value::str(case_epc(ci)),
                Value::str(format!("prod{:04}", data.case_product[ci])),
                Value::Int(rng.gen_range(0..10_000)),
                Value::Int(manu),
                Value::Int(manu + 2 * 365 * 24 * 3600),
            ]
        })
        .collect();
    let mut info = Table::new("epc_info", Batch::from_rows(info_schema, &info_rows)?);
    info.create_index("epc")?;
    catalog.register(info);

    // --- product ---
    let product_schema = schema_ref(Schema::new(vec![
        Field::new("product", DataType::Str),
        Field::new("manufacturer", DataType::Str),
    ]));
    let product_rows: Vec<Vec<Value>> = data
        .product_manufacturer
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            vec![
                Value::str(format!("prod{i:04}")),
                Value::str(format!("mfr{m:02}")),
            ]
        })
        .collect();
    let mut product = Table::new("product", Batch::from_rows(product_schema, &product_rows)?);
    product.create_index("product")?;
    catalog.register(product);

    // --- steps ---
    let steps_schema = schema_ref(Schema::new(vec![
        Field::new("biz_step", DataType::Str),
        Field::new("type", DataType::Str),
    ]));
    let steps_rows: Vec<Vec<Value>> = (0..config.num_steps)
        .map(|i| {
            vec![
                Value::str(step_name(i)),
                Value::str(format!("type{}", i % config.num_step_types)),
            ]
        })
        .collect();
    let mut steps = Table::new("steps", Batch::from_rows(steps_schema, &steps_rows)?);
    steps.create_index("biz_step")?;
    steps.create_index("type")?;
    catalog.register(steps);

    // --- locs ---
    let locs_schema = schema_ref(Schema::new(vec![
        Field::new("gln", DataType::Str),
        Field::new("site", DataType::Str),
        Field::new("loc_desc", DataType::Str),
    ]));
    let locs_rows: Vec<Vec<Value>> = (0..data.topology.glns.len())
        .map(|i| {
            vec![
                Value::str(&data.topology.glns[i]),
                Value::str(&data.topology.loc_sites[i]),
                Value::str(&data.topology.loc_descs[i]),
            ]
        })
        .collect();
    let mut locs = Table::new("locs", Batch::from_rows(locs_schema, &locs_rows)?);
    locs.create_index("gln")?;
    locs.create_index("site")?;
    catalog.register(locs);

    Ok(Dataset {
        config: config.clone(),
        counts,
        loc1: data.topology.glns[special.loc1].clone(),
        loc2: data.topology.glns[special.loc2].clone(),
        loc_a: data.topology.glns[special.loc_a].clone(),
        case_reads,
        pallet_reads,
        rtimes,
    })
}

impl Dataset {
    /// EPC urn of the `i`-th generated case — for targeted point queries
    /// (e.g. demonstrating zone-map segment pruning on the epc column).
    pub fn case_epc_urn(&self, i: usize) -> String {
        case_epc(i)
    }

    /// The read time below which approximately `fraction` of caseR rows fall
    /// (for dialing predicate selectivity, §6.2).
    pub fn rtime_quantile(&self, fraction: f64) -> i64 {
        if self.rtimes.is_empty() {
            return 0;
        }
        let idx = ((self.rtimes.len() - 1) as f64 * fraction.clamp(0.0, 1.0)) as usize;
        self.rtimes[idx]
    }

    /// Materialize the derived input for the missing rule — the union of
    /// caseR (`is_pallet = 0`) and the expected case reads R′ derived from
    /// palletR ⋈ parent (`is_pallet = 1`, paper §4.3 Example 5 / §6.3) —
    /// as table `r_with_pallets`, indexed on epc and rtime.
    pub fn materialize_missing_input(&self, catalog: &Catalog) -> Result<()> {
        let caser = catalog.get("caser")?;
        let palletr = catalog.get("palletr")?;
        let parent = catalog.get("parent")?;

        // parent_epc -> child epcs.
        let mut children: std::collections::HashMap<String, Vec<String>> =
            std::collections::HashMap::new();
        let pdata = parent.data();
        for i in 0..pdata.num_rows() {
            let child = pdata.column(0).str_at(i).unwrap_or_default().to_string();
            let par = pdata.column(1).str_at(i).unwrap_or_default().to_string();
            children.entry(par).or_default().push(child);
        }

        let schema = input_schema();
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type, 0))
            .collect();
        let mut push_row = |vals: &[Value]| -> Result<()> {
            for (b, v) in builders.iter_mut().zip(vals) {
                b.push(v)?;
            }
            Ok(())
        };
        let cdata = caser.data();
        for i in 0..cdata.num_rows() {
            let mut row = cdata.row(i);
            row.push(Value::Int(0));
            push_row(&row)?;
        }
        let pdata = palletr.data();
        for i in 0..pdata.num_rows() {
            let row = pdata.row(i);
            let Some(par) = row[0].as_str() else { continue };
            if let Some(kids) = children.get(par) {
                for kid in kids {
                    let mut copy = row.clone();
                    copy[0] = Value::str(kid.as_str());
                    copy.push(Value::Int(1));
                    push_row(&copy)?;
                }
            }
        }
        let batch = Batch::new(
            schema,
            builders.into_iter().map(ColumnBuilder::finish).collect(),
        )?;
        let mut t = Table::new("r_with_pallets", batch);
        for col in ["epc", "rtime", "biz_loc", "biz_step"] {
            t.create_index(col)?;
        }
        catalog.register(t);
        Ok(())
    }

    /// The paper's five cleansing rules (§4.3 / Table 1 order: reader,
    /// duplicate, replacing, cycle, missing), instantiated for this dataset
    /// with t1 = 5 min, t2 = 5 min, t3 = 20 min.
    ///
    /// `n` is the number of *logical* rules to enable (1–5). The missing
    /// rule expands to two sub-rules (r1, r2). Because an application's
    /// rules must share one input (§4.4), enabling the missing rule switches
    /// every rule's FROM to `r_with_pallets` and adds `is_pallet = 0` guards
    /// to the other rules (call [`Dataset::materialize_missing_input`]
    /// first).
    ///
    /// Note: the paper sets t2 = 10 min in §4.3 but expands q1's predicate
    /// by 5 min in Table 1/§6.2; we use t2 = 5 min so Table 1 reproduces.
    pub fn benchmark_rules(&self, n: usize) -> Vec<String> {
        assert!((1..=5).contains(&n), "1..=5 logical rules");
        let with_missing = n >= 5;
        let from = if with_missing {
            " FROM r_with_pallets"
        } else {
            ""
        };
        let guard1 = |r: &str| {
            if with_missing {
                format!(" and {r}.is_pallet = 0")
            } else {
                String::new()
            }
        };
        let mut rules = vec![
            format!(
                "DEFINE reader ON caseR{from} CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
                 WHERE B.reader = 'readerX' and B.rtime - A.rtime < 5 mins{} ACTION DELETE A",
                guard1("A")
            ),
            format!(
                "DEFINE duplicate ON caseR{from} CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
                 WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins{}{} ACTION DELETE B",
                guard1("A"),
                guard1("B")
            ),
            format!(
                "DEFINE replacing ON caseR{from} CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
                 WHERE A.biz_loc = '{}' and B.biz_loc = '{}' and B.rtime - A.rtime < 20 mins{}{} \
                 ACTION MODIFY A.biz_loc = '{}'",
                self.loc2,
                self.loc_a,
                guard1("A"),
                guard1("B"),
                self.loc1
            ),
            format!(
                "DEFINE cycle ON caseR{from} CLUSTER BY epc SEQUENCE BY rtime AS (A, B, C) \
                 WHERE A.biz_loc = C.biz_loc and A.biz_loc != B.biz_loc{}{}{} ACTION DELETE B",
                guard1("A"),
                guard1("B"),
                guard1("C")
            ),
        ];
        rules.truncate(n.min(4));
        if with_missing {
            rules.push(format!(
                "DEFINE missing_r1 ON caseR{from} CLUSTER BY epc SEQUENCE BY rtime AS (X, A, Y) \
                 WHERE A.is_pallet = 1 and \
                   ((X.is_pallet = 0 and A.biz_loc = X.biz_loc and A.rtime - X.rtime < 10 mins) or \
                    (Y.is_pallet = 0 and A.biz_loc = Y.biz_loc and Y.rtime - A.rtime < 10 mins)) \
                 ACTION MODIFY A.has_case_nearby = 1"
            ));
            rules.push(format!(
                "DEFINE missing_r2 ON caseR{from} CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
                 WHERE A.is_pallet = 0 or (A.has_case_nearby = 0 and B.has_case_nearby = 1) \
                 ACTION KEEP A"
            ));
        }
        rules
    }

    /// q1 — "dwell" analysis (paper Figure 6), parameterized by T1.
    pub fn q1(&self, t1: i64) -> String {
        format!(
            "with v1 as ( \
               select biz_loc as current_loc, rtime, \
                 max(rtime) over (partition by epc order by rtime asc \
                   rows between 1 preceding and 1 preceding) as prev_time, \
                 max(biz_loc) over (partition by epc order by rtime asc \
                   rows between 1 preceding and 1 preceding) as prev_loc \
               from caser where rtime <= {t1} ) \
             select l1.loc_desc, l2.loc_desc, avg(rtime - prev_time) as dwell \
             from v1, locs l1, locs l2 \
             where v1.prev_loc = l1.gln and v1.current_loc = l2.gln \
             group by l1.loc_desc, l2.loc_desc"
        )
    }

    /// q2 — site analysis (paper Figure 6), parameterized by T2 and the DC.
    pub fn q2(&self, t2: i64, dc: usize) -> String {
        format!(
            "select p.manufacturer, count(distinct s.type) as step_types, \
                    count(distinct c.reader) as readers \
             from caser c, steps s, locs l, epc_info i, product p \
             where c.biz_step = s.biz_step and c.biz_loc = l.gln \
               and c.epc = i.epc and i.product = p.product \
               and c.rtime >= {t2} \
               and l.site = 'distribution center {dc}' \
             group by p.manufacturer"
        )
    }

    /// q2′ — q2 with the site predicate swapped for a step-type predicate
    /// that is uncorrelated with EPCs (paper Figure 8).
    pub fn q2_prime(&self, t2: i64, step_type: usize) -> String {
        format!(
            "select p.manufacturer, count(distinct l.site) as sites, \
                    count(distinct c.reader) as readers \
             from caser c, steps s, locs l, epc_info i, product p \
             where c.biz_step = s.biz_step and c.biz_loc = l.gln \
               and c.epc = i.epc and i.product = p.product \
               and c.rtime >= {t2} \
               and s.type = 'type{step_type}' \
             group by p.manufacturer"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::sql::run_sql;

    fn small() -> (Catalog, Dataset) {
        let cat = Catalog::new();
        let ds = generate_into(&cat, GenConfig::tiny(2, 20.0, 7)).unwrap();
        (cat, ds)
    }

    #[test]
    fn tables_registered_with_expected_cardinalities() {
        let (cat, ds) = small();
        let caser = cat.get("caser").unwrap();
        assert_eq!(caser.num_rows(), ds.case_reads);
        assert!(ds.case_reads > 2 * 20 * 25); // >= scale * min_cases * ~reads
        assert_eq!(cat.get("palletr").unwrap().num_rows(), 60);
        let n_cases = cat.get("parent").unwrap().num_rows();
        assert_eq!(cat.get("epc_info").unwrap().num_rows(), n_cases);
        assert_eq!(cat.get("product").unwrap().num_rows(), 1000);
        assert_eq!(cat.get("steps").unwrap().num_rows(), 100);
        assert_eq!(
            cat.get("locs").unwrap().num_rows(),
            ds.config.num_locations()
        );
    }

    #[test]
    fn indexes_created() {
        let (cat, _) = small();
        let caser = cat.get("caser").unwrap();
        assert_eq!(
            caser.indexed_columns(),
            vec!["biz_loc", "biz_step", "epc", "rtime"]
        );
        assert!(caser.index("reader").is_none());
        assert!(cat.get("locs").unwrap().index("site").is_some());
        assert!(cat.get("steps").unwrap().index("type").is_some());
    }

    #[test]
    fn quantiles_monotone() {
        let (_, ds) = small();
        let q10 = ds.rtime_quantile(0.1);
        let q50 = ds.rtime_quantile(0.5);
        let q90 = ds.rtime_quantile(0.9);
        assert!(q10 <= q50 && q50 <= q90);
        // Roughly 10% of reads at or below the 10% quantile.
        let (cat, ds) = small();
        let out = run_sql(
            &format!(
                "select count(*) as n from caser where rtime <= {}",
                ds.rtime_quantile(0.1)
            ),
            &cat,
        )
        .unwrap();
        let n = out.row(0)[0].as_int().unwrap() as f64;
        let frac = n / ds.case_reads as f64;
        assert!((0.05..=0.15).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn benchmark_queries_run() {
        let (cat, ds) = small();
        let t1 = ds.rtime_quantile(0.2);
        let out = run_sql(&ds.q1(t1), &cat).unwrap();
        assert!(out.num_rows() > 0);
        let t2 = ds.rtime_quantile(0.8);
        let out = run_sql(&ds.q2(t2, 0), &cat).unwrap();
        // Small data may produce few groups, but the query must plan + run.
        let _ = out.num_rows();
        let out = run_sql(&ds.q2_prime(t2, 3), &cat).unwrap();
        let _ = out.num_rows();
    }

    #[test]
    fn missing_input_materialization() {
        let (cat, ds) = small();
        ds.materialize_missing_input(&cat).unwrap();
        let t = cat.get("r_with_pallets").unwrap();
        // caseR rows + ~one pallet copy per (case, pallet read).
        assert!(t.num_rows() > ds.case_reads);
        let schema = t.schema();
        assert!(schema.index_of(None, "is_pallet").is_ok());
        // Case rows flagged 0, pallet copies 1.
        let out = run_sql(
            "select is_pallet, count(*) as n from r_with_pallets group by is_pallet",
            &cat,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn rules_parse_and_compile() {
        let (cat, ds) = small();
        ds.materialize_missing_input(&cat).unwrap();
        for n in 1..=5 {
            let rules = ds.benchmark_rules(n);
            assert_eq!(rules.len(), if n == 5 { 6 } else { n });
            for text in &rules {
                let def = dc_sqlts::parse_rule(text).unwrap();
                dc_sqlts::validate_rule_against_catalog(&def, &cat).unwrap();
                dc_rules::compile_rule(&def).unwrap();
            }
        }
    }

    #[test]
    fn caser_is_segmented_with_incremental_indexes() {
        let (cat, ds) = small();
        let caser = cat.get("caser").unwrap();
        let segs = caser.segments();
        assert!(
            segs.len() >= 2,
            "{} rows in {} segments",
            ds.case_reads,
            segs.len()
        );
        assert_eq!(segs.iter().map(|s| s.rows).sum::<usize>(), ds.case_reads);
        // Reads are emitted in case order, so a case's epc covers few
        // segments — the zone maps make its point query prunable.
        let covering = caser.covering_segments("epc", &Value::str(ds.case_epc_urn(0)));
        assert!(!covering.is_empty());
        assert!(covering.len() < segs.len());
        // Incrementally-extended indexes cover every appended row.
        for col in ["epc", "rtime", "biz_loc", "biz_step"] {
            assert_eq!(caser.index(col).unwrap().covered_rows(), ds.case_reads);
        }
        // The declared (epc, rtime) sequence order verified at every seal:
        // one metadata run per segment, available without touching rows.
        assert_eq!(caser.sequence_order(), &[0, 1]);
        let runs = caser.segment_runs(caser.sequence_order()).unwrap();
        assert_eq!(runs.len(), segs.len());
        // Segmented load returns exactly the same rows as a monolithic one.
        let mono_cat = Catalog::new();
        let mut cfg = GenConfig::tiny(2, 20.0, 7);
        cfg.segment_rows = usize::MAX;
        generate_into(&mono_cat, cfg).unwrap();
        assert_eq!(
            caser.data().sorted_rows(),
            mono_cat.get("caser").unwrap().data().sorted_rows()
        );
    }

    #[test]
    fn anomaly_counts_scale_with_pct() {
        let cat = Catalog::new();
        let ds10 = generate_into(&cat, GenConfig::tiny(2, 10.0, 3)).unwrap();
        let cat = Catalog::new();
        let ds40 = generate_into(&cat, GenConfig::tiny(2, 40.0, 3)).unwrap();
        assert!(ds40.counts.total() > 3 * ds10.counts.total());
    }
}
