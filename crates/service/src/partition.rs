//! Catalog partitioning and the shard router.
//!
//! Cleansing rules cluster by one key (the paper's `CLUSTER BY`, in
//! practice the EPC), and a rule only ever relates readings *within* one
//! cluster sequence. Partitioning every key-bearing table on that key
//! therefore never splits a sequence across shards: each shard cleanses
//! its clusters exactly as an unsharded system would, and cleansing is
//! embarrassingly parallel. Tables without the key column (dimension
//! tables) are **replicated** — every shard holds the same `Arc<Table>`,
//! so replication costs one map entry, not a copy.
//!
//! The [`Partitioner`] decides which shard owns a key value. It must be a
//! pure function of the value (the router applies it at initial partition
//! time *and* on every routed append), but is otherwise pluggable:
//! [`HashPartitioner`] for uniform spread, [`RangePartitioner`] for
//! locality-preserving splits.

use dc_relational::batch::Batch;
use dc_relational::error::{Error, Result};
use dc_relational::scatter::ShardingSpec;
use dc_relational::table::{Catalog, Table};
use dc_relational::value::Value;

/// Maps a cluster-key value to the shard that owns it. Implementations
/// must be deterministic: the same value always routes to the same shard.
pub trait Partitioner: Send + Sync {
    /// The owning shard for `key`, in `0..shards`.
    fn shard_of(&self, key: &Value, shards: usize) -> usize;

    /// Short label for diagnostics (`"hash"`, `"range"`).
    fn name(&self) -> &'static str;
}

/// Canonical byte form of a value for hashing: a type tag followed by the
/// value's natural encoding, so e.g. `Int(1)` and `Str("1")` never collide
/// structurally.
fn canonical_bytes(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            out.push(3);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// FNV-1a over the key's canonical bytes, reduced modulo the shard count.
/// Stable across processes and platforms (no per-process seed), so shard
/// assignment survives restarts and is reproducible in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn shard_of(&self, key: &Value, shards: usize) -> usize {
        let mut buf = Vec::with_capacity(16);
        canonical_bytes(key, &mut buf);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in &buf {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        (h % shards.max(1) as u64) as usize
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Range partitioning over the key's total order (NULLs first, the same
/// order sorts use): shard `i` owns keys strictly below `boundaries[i]`,
/// the last shard owns the rest. `boundaries` must be sorted ascending and
/// hold exactly `shards - 1` entries; extra boundaries are ignored and a
/// short list funnels the tail into the last listed shard.
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    boundaries: Vec<Value>,
}

impl RangePartitioner {
    /// A partitioner splitting at `boundaries` (ascending).
    pub fn new(boundaries: Vec<Value>) -> Self {
        RangePartitioner { boundaries }
    }
}

impl Partitioner for RangePartitioner {
    fn shard_of(&self, key: &Value, shards: usize) -> usize {
        let last = shards.max(1) - 1;
        for (i, b) in self.boundaries.iter().take(last).enumerate() {
            if key.total_cmp(b) == std::cmp::Ordering::Less {
                return i;
            }
        }
        self.boundaries.len().min(last)
    }

    fn name(&self) -> &'static str {
        "range"
    }
}

/// Split `batch` into `shards` batches by routing each row on its key
/// column. Row order is preserved within every output batch (routing is a
/// stable partition of the input), so per-shard append order matches the
/// order the rows arrived in.
pub fn split_batch(
    batch: &Batch,
    key_idx: usize,
    partitioner: &dyn Partitioner,
    shards: usize,
) -> Result<Vec<Batch>> {
    if key_idx >= batch.num_columns() {
        return Err(Error::Execution(format!(
            "split_batch: key column index {key_idx} out of bounds for batch with {} columns",
            batch.num_columns()
        )));
    }
    let key_col = batch.column(key_idx);
    let mut rows: Vec<Vec<Vec<Value>>> = vec![Vec::new(); shards.max(1)];
    for i in 0..batch.num_rows() {
        let shard = partitioner.shard_of(&key_col.value(i), shards);
        rows[shard].push(batch.row(i));
    }
    rows.into_iter()
        .map(|r| {
            if r.is_empty() {
                Ok(Batch::empty(batch.schema().clone()))
            } else {
                Batch::from_rows(batch.schema().clone(), &r)
            }
        })
        .collect()
}

/// Rebuild `table`'s data as a new table with the same name, secondary
/// indexes, and sequence-order declaration.
pub(crate) fn table_like(template: &Table, data: Batch) -> Result<Table> {
    let mut t = Table::new(template.name(), data);
    for col in template.indexed_columns() {
        t.create_index(col)?;
    }
    let seq: Vec<&str> = template
        .sequence_order()
        .iter()
        .map(|&i| template.schema().fields()[i].name.as_str())
        .collect();
    if !seq.is_empty() {
        t.set_sequence_order(&seq)?;
    }
    Ok(t)
}

/// Partition `catalog` into `shards` shard catalogs per `spec`: tables in
/// `spec.partitioned` are split row-wise on the key via `partitioner`
/// (order-preserving, with the source table's indexes and sequence order
/// rebuilt per shard); every other table is replicated by sharing its
/// `Arc<Table>`. The union of the shard catalogs is exactly the input
/// catalog's rows.
pub fn partition_catalog(
    catalog: &Catalog,
    spec: &ShardingSpec,
    partitioner: &dyn Partitioner,
    shards: usize,
) -> Result<Vec<Catalog>> {
    let out: Vec<Catalog> = (0..shards.max(1)).map(|_| Catalog::new()).collect();
    for name in catalog.table_names() {
        let table = catalog.get(&name)?;
        if spec.partitioned.contains(&name) {
            let key_idx = table.schema().index_of_name(&spec.key)?;
            let parts = split_batch(table.data(), key_idx, partitioner, out.len())?;
            for (cat, part) in out.iter().zip(parts) {
                cat.register(table_like(&table, part)?);
            }
        } else {
            for cat in &out {
                cat.register_shared(std::sync::Arc::clone(&table));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::batch::schema_ref;
    use dc_relational::schema::{Field, Schema};
    use dc_relational::value::DataType;
    use std::collections::BTreeSet;

    fn reads(n: i64) -> Batch {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::str(format!("e{}", i % 7)), Value::Int(i)])
            .collect();
        Batch::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn hash_partitioner_is_deterministic_and_total() {
        let p = HashPartitioner;
        for i in 0..100 {
            let v = Value::str(format!("epc-{i}"));
            let s = p.shard_of(&v, 4);
            assert!(s < 4);
            assert_eq!(s, p.shard_of(&v, 4));
        }
        // One shard swallows everything.
        assert_eq!(p.shard_of(&Value::str("x"), 1), 0);
    }

    #[test]
    fn range_partitioner_respects_boundaries() {
        let p = RangePartitioner::new(vec![Value::Int(10), Value::Int(20)]);
        assert_eq!(p.shard_of(&Value::Int(-5), 3), 0);
        assert_eq!(p.shard_of(&Value::Int(10), 3), 1);
        assert_eq!(p.shard_of(&Value::Int(19), 3), 1);
        assert_eq!(p.shard_of(&Value::Int(20), 3), 2);
        assert_eq!(p.shard_of(&Value::Int(1000), 3), 2);
        // NULLs sort first: they land in shard 0.
        assert_eq!(p.shard_of(&Value::Null, 3), 0);
        // More shards than boundaries: the tail stops at the last boundary.
        assert_eq!(p.shard_of(&Value::Int(1000), 5), 2);
    }

    #[test]
    fn split_batch_preserves_order_and_loses_nothing() {
        let batch = reads(50);
        let parts = split_batch(&batch, 0, &HashPartitioner, 3).unwrap();
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Batch::num_rows).sum();
        assert_eq!(total, 50);
        for part in &parts {
            // rtime is monotone in the input, so order-preservation means
            // it stays monotone in every split.
            let col = part.column(1);
            for i in 1..part.num_rows() {
                assert!(col.value(i - 1).total_cmp(&col.value(i)).is_lt());
            }
        }
    }

    #[test]
    fn split_batch_rejects_bad_key_index() {
        let err = split_batch(&reads(3), 9, &HashPartitioner, 2).unwrap_err();
        assert!(err.to_string().contains("key column index 9"));
    }

    #[test]
    fn partition_catalog_splits_keyed_and_shares_dimension_tables() {
        let catalog = Catalog::new();
        let mut t = Table::new("caser", reads(40));
        t.create_index("epc").unwrap();
        catalog.register(t);
        let dim_schema = schema_ref(Schema::new(vec![Field::new("loc", DataType::Str)]));
        catalog.register(Table::new(
            "dim",
            Batch::from_rows(dim_schema, &[vec![Value::str("dock")]]).unwrap(),
        ));

        let spec = ShardingSpec {
            key: "epc".into(),
            partitioned: BTreeSet::from(["caser".to_string()]),
        };
        let shards = partition_catalog(&catalog, &spec, &HashPartitioner, 4).unwrap();
        assert_eq!(shards.len(), 4);
        let total: usize = shards
            .iter()
            .map(|c| c.get("caser").unwrap().num_rows())
            .sum();
        assert_eq!(total, 40);
        for shard in &shards {
            // Indexes were rebuilt on the partitioned table.
            assert!(shard.get("caser").unwrap().index("epc").is_some());
            // The dimension table is the same allocation everywhere.
            assert!(std::sync::Arc::ptr_eq(
                &shard.get("dim").unwrap(),
                &catalog.get("dim").unwrap()
            ));
        }
    }
}
