//! A bounded multi-producer/multi-consumer admission queue.
//!
//! Backpressure policy: the queue **rejects** instead of blocking —
//! [`Bounded::try_push`] on a full queue fails immediately so the caller
//! can surface `Overloaded` to its client rather than stacking latency.
//! Consumers block on a condvar; closing the queue wakes everyone and
//! drains the remaining jobs before the `None` sentinel.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the value is handed back.
    Full(T),
    /// The queue was closed; the value is handed back.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC queue with reject-on-full semantics.
#[derive(Debug)]
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` queued items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently queued items.
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit an item, or reject immediately when full/closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.lock();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.queue.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        g.queue.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until an item is available or the queue is closed *and*
    /// drained; `None` means "no more work, ever".
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.queue.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue: further pushes fail, consumers drain what is
    /// queued and then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_drains_on_close() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err(PushError::Closed(4)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn consumers_wake_on_push_and_close() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for v in 0..4 {
            while q.try_push(v).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
