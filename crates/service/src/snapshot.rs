//! Epoch-stamped catalog snapshots and their publication cell.
//!
//! The storage layer already made every table copy-on-write
//! ([`Catalog::append`] clones, mutates, and swaps the `Arc<Table>`), so a
//! *catalog* snapshot only has to freeze the name → table map: an
//! [`Catalog::overlay`] shares every `Arc<Table>` and costs one shallow map
//! clone. The service stamps each published overlay with a monotonically
//! increasing **epoch** and swaps an `Arc<Snapshot>` pointer; queries load
//! the pointer once at dispatch and run entirely against that immutable
//! world.
//!
//! Publication discipline:
//!
//! * a snapshot's catalog is **never mutated after publish** — the ingest
//!   path builds the next overlay off the current snapshot, appends into
//!   it, and only then publishes;
//! * readers take the read side of the cell's lock only for the duration
//!   of one `Arc` clone, and the single writer holds the write side only
//!   for the pointer swap — the append work itself (row concatenation,
//!   segment sealing, index extension) happens strictly outside the
//!   critical section, so readers never wait on ingest work;
//! * epochs are dense: epoch *n+1* differs from epoch *n* by exactly one
//!   append.

use dc_relational::table::{Catalog, CatalogRef};
use std::sync::{Arc, RwLock};

// The epoch vector-clock now lives in `dc-stream` (every change set a
// standing query emits is tagged with one); the service re-exports it so
// existing callers keep their import path.
pub use dc_stream::EpochVector;

/// An immutable, epoch-stamped view of the whole catalog. Everything a
/// query needs is reachable from here and guaranteed not to change.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Dense publication counter; the initial snapshot is epoch 0.
    pub epoch: u64,
    /// The frozen catalog: shares `Arc<Table>` storage with every other
    /// epoch that has not diverged on that table.
    pub catalog: CatalogRef,
}

/// The publication point: a swap-only cell holding the current snapshot.
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<Snapshot>>,
}

impl SnapshotCell {
    /// Seal `catalog` as epoch 0.
    pub fn new(catalog: CatalogRef) -> Self {
        Self::at_epoch(catalog, 0)
    }

    /// Seal `catalog` as a specific starting epoch. Recovery uses this to
    /// resume publication exactly where the durable log left off, so
    /// post-restart epochs continue the same dense history.
    pub fn at_epoch(catalog: CatalogRef, epoch: u64) -> Self {
        SnapshotCell {
            current: RwLock::new(Arc::new(Snapshot { epoch, catalog })),
        }
    }

    /// The current snapshot. The read lock is held only while cloning the
    /// `Arc`; the returned handle stays valid (and immutable) forever.
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.load().epoch
    }

    /// Publish `catalog` as the next epoch and return the new snapshot.
    /// The write lock covers exactly one pointer swap. Callers must
    /// serialize publications (the service's ingest lock does) and must
    /// never mutate `catalog` afterwards.
    pub fn publish(&self, catalog: Catalog) -> Arc<Snapshot> {
        let mut cur = self.current.write().unwrap_or_else(|e| e.into_inner());
        let next = Arc::new(Snapshot {
            epoch: cur.epoch + 1,
            catalog: Arc::new(catalog),
        });
        *cur = Arc::clone(&next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::batch::{schema_ref, Batch};
    use dc_relational::schema::{Field, Schema};
    use dc_relational::table::Table;
    use dc_relational::value::{DataType, Value};

    fn catalog_with_rows(n: i64) -> CatalogRef {
        let schema = schema_ref(Schema::new(vec![Field::new("x", DataType::Int)]));
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int(i)]).collect();
        let cat = Catalog::new();
        cat.register(Table::new("t", Batch::from_rows(schema, &rows).unwrap()));
        Arc::new(cat)
    }

    #[test]
    fn publish_bumps_epoch_and_old_handles_stay_frozen() {
        let cell = SnapshotCell::new(catalog_with_rows(2));
        let s0 = cell.load();
        assert_eq!(s0.epoch, 0);

        let next = s0.catalog.overlay();
        next.append(
            "t",
            Batch::from_rows(
                s0.catalog.get("t").unwrap().schema().clone(),
                &[vec![Value::Int(99)]],
            )
            .unwrap(),
        )
        .unwrap();
        let s1 = cell.publish(next);
        assert_eq!(s1.epoch, 1);
        assert_eq!(cell.epoch(), 1);

        // The old snapshot still sees the pre-append world.
        assert_eq!(s0.catalog.get("t").unwrap().num_rows(), 2);
        assert_eq!(s1.catalog.get("t").unwrap().num_rows(), 3);
    }
}
