//! Durable backing for a [`crate::QueryService`]: a root manifest plus one
//! commit log per shard, written **before** any snapshot is published.
//!
//! Directory layout under [`DurableOptions::dir`]:
//!
//! ```text
//! root/
//!   MANIFEST.log          topology record, then one GlobalCommit per epoch
//!   shard-0/
//!     commit.log          TableCreated / SegmentAdded / EpochCommit / Rules
//!     seg/<table>.<id>.seg  immutable columnar segment files
//!   shard-1/ ...
//! ```
//!
//! Write protocol per append (WAL-before-publish):
//!
//! 1. every touched shard persists its new segment files (atomic tmp +
//!    fsync + rename), logs `SegmentAdded` records, and commits its next
//!    shard epoch with one fsync;
//! 2. the manifest appends `GlobalCommit { global, vector }` binding the
//!    new global epoch to the per-shard epoch vector, and fsyncs;
//! 3. only then are the in-memory snapshots published.
//!
//! A crash anywhere in that sequence loses at most the in-flight append —
//! which never returned success — and recovery
//! ([`crate::QueryService::recover`]) rolls the service back to the last
//! *globally* committed epoch: the newest manifest `GlobalCommit` whose
//! vector every shard log covers. Shard epochs beyond it (a crash between
//! steps 1 and 2) are truncated by compaction, so the histories stay dense
//! and agree with the manifest.
//!
//! The retained history is what makes **time travel** free: every global
//! epoch maps to a per-shard epoch vector, and each shard can materialize
//! its catalog *as of* any committed shard epoch from the log's segment
//! metadata — opening only the segment files that epoch actually contains.

use crate::snapshot::EpochVector;
use dc_core::durable::{
    compact_shard_log, decode_record, encode_record, materialize_catalog, recover_shard,
    segment_file_name, LogRecord, SegmentEntry, SegmentStore, ShardLog, ShardRecovery,
};
use dc_log::{frame_record, read_log, FailPoint, LogDir, LogError, LogWriter};
use dc_relational::error::Error;
use dc_relational::table::{CatalogRef, Table};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Relative name of the service's root manifest log.
pub const MANIFEST_LOG: &str = "MANIFEST.log";

/// Where (and how) a durable service keeps its logs.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Root directory of the manifest and the per-shard logs.
    pub dir: PathBuf,
    pub(crate) failpoint: Option<Arc<FailPoint>>,
}

impl DurableOptions {
    /// Durable state rooted at `dir` (created if absent).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            dir: dir.into(),
            failpoint: None,
        }
    }

    /// Fault injection for crash tests: every guarded write consumes ticks
    /// from `fp`, and the first exhausted tick kills the write exactly the
    /// way a power cut would.
    #[doc(hidden)]
    pub fn with_failpoint(mut self, fp: Arc<FailPoint>) -> Self {
        self.failpoint = Some(fp);
        self
    }

    fn open_root(&self) -> Result<LogDir, LogError> {
        match &self.failpoint {
            Some(fp) => LogDir::with_failpoint(&self.dir, Arc::clone(fp)),
            None => LogDir::create(&self.dir),
        }
    }
}

/// Durability counters of a recovered (or freshly bootstrapped) service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// The current global durable epoch (one per successful append).
    pub durable_epoch: u64,
    /// Global epochs restored by the last recovery (1 = bootstrap only).
    pub epochs_recovered: u64,
    /// Log records replayed by the last recovery, across the manifest and
    /// every shard log.
    pub log_records_replayed: u64,
    /// Segment files actually decoded from disk so far — materialization
    /// is lazy, so this stays below the number of recorded segments when
    /// queries only touch recent epochs.
    pub segments_loaded_lazy: u64,
    /// Segments skipped without opening their file because zone maps in
    /// the log refuted a predicate.
    pub segments_pruned_unopened: u64,
}

/// One staged shard publication, handed to [`DurableState::commit_append`]
/// before the snapshot swap.
pub(crate) struct StagedAppend<'a> {
    pub shard: usize,
    /// The table *after* the append, inside the not-yet-published overlay.
    pub table: &'a Table,
    /// Segment count before the append: everything past it is new.
    pub prev_segments: usize,
    /// The shard epoch this publication will become.
    pub epoch: u64,
}

/// Per-shard durable handles: the log writer, the lazy segment store, and
/// the committed history this shard's log encodes.
struct DurableShard {
    log: Mutex<ShardLog>,
    store: SegmentStore,
    recovery: Mutex<ShardRecovery>,
    /// Materialized historical catalogs, keyed by shard epoch.
    catalogs: Mutex<HashMap<u64, CatalogRef>>,
}

/// The global-epoch history: commit `g` ran at per-shard vector
/// `commits[g]`.
struct History {
    commits: Vec<EpochVector>,
}

/// All durable state of one service: root manifest, shard logs, and the
/// epoch history that backs `AS OF` queries.
pub(crate) struct DurableState {
    root: LogDir,
    manifest: Mutex<LogWriter>,
    shards: Vec<DurableShard>,
    history: Mutex<History>,
    replayed: u64,
    epochs_recovered: u64,
}

/// Map a log failure into the engine error surfaced to service callers.
pub(crate) fn log_err(e: LogError) -> Error {
    Error::Execution(format!("durable log: {e}"))
}

/// Split a top-level `AS OF epoch E` clause off `sql`, returning the
/// stripped statement and the epoch. `None` when the statement has no such
/// clause (or does not parse — the engine will report that itself).
pub(crate) fn split_as_of(sql: &str) -> Option<(String, u64)> {
    let mut query = dc_relational::sql::parse_query(sql).ok()?;
    let epoch = query.as_of.take()?;
    Some((query.to_string(), epoch))
}

impl DurableState {
    /// Bootstrap a fresh durable root: topology first, then every shard's
    /// initial catalog as its epoch 0, then `GlobalCommit { 0 }`. Refuses
    /// to run over an existing manifest — that state belongs to
    /// [`recover_state`].
    pub(crate) fn bootstrap(
        opts: &DurableOptions,
        shard_catalogs: &[&dc_relational::table::Catalog],
        key: &str,
        cache_capacity: u64,
        rules_json: &str,
    ) -> Result<DurableState, LogError> {
        let root = opts.open_root()?;
        if root.exists(MANIFEST_LOG) {
            return Err(LogError::malformed(
                "durable directory already holds a manifest; use QueryService::recover",
            ));
        }
        let mut manifest = LogWriter::open(&root, MANIFEST_LOG)?;
        manifest.append(&encode_record(&LogRecord::Topology {
            shards: shard_catalogs.len() as u32,
            key: key.to_string(),
            cache_capacity,
        }))?;
        manifest.sync()?;
        let mut shards = Vec::with_capacity(shard_catalogs.len());
        for (i, catalog) in shard_catalogs.iter().enumerate() {
            let dir = root.subdir(&format!("shard-{i}"))?;
            let mut log = ShardLog::create(dir.clone())?;
            log.log_bootstrap(catalog, 0, rules_json)?;
            // Re-reading the log we just wrote guarantees the in-memory
            // history is exactly what a restart would see.
            let recovery = recover_shard(&dir)?;
            shards.push(DurableShard {
                log: Mutex::new(log),
                store: SegmentStore::new(dir),
                recovery: Mutex::new(recovery),
                catalogs: Mutex::new(HashMap::new()),
            });
        }
        let zeros = EpochVector(vec![0; shard_catalogs.len()]);
        manifest.append(&encode_record(&LogRecord::GlobalCommit {
            global: 0,
            vector: zeros.0.clone(),
        }))?;
        manifest.sync()?;
        Ok(DurableState {
            root,
            manifest: Mutex::new(manifest),
            shards,
            history: Mutex::new(History {
                commits: vec![zeros],
            }),
            replayed: 0,
            epochs_recovered: 1,
        })
    }

    /// Make one append durable before anything is published: per touched
    /// shard, segment files + `SegmentAdded` records + the shard epoch
    /// commit; then the manifest's `GlobalCommit` binding the new global
    /// epoch to `vector_after`. Returns the new global epoch.
    pub(crate) fn commit_append(
        &self,
        staged: &[StagedAppend<'_>],
        vector_after: &EpochVector,
    ) -> Result<u64, LogError> {
        for s in staged {
            let mut log = self.shards[s.shard]
                .log
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            log.log_table_append(s.table, s.prev_segments, s.epoch)?;
            log.commit_epoch(s.epoch)?;
        }
        let global = {
            let h = self.history.lock().unwrap_or_else(|e| e.into_inner());
            h.commits.len() as u64
        };
        {
            let mut manifest = self.manifest.lock().unwrap_or_else(|e| e.into_inner());
            manifest.append(&encode_record(&LogRecord::GlobalCommit {
                global,
                vector: vector_after.0.clone(),
            }))?;
            manifest.sync()?;
        }
        // Everything is on disk: extend the in-memory history to match.
        let mut h = self.history.lock().unwrap_or_else(|e| e.into_inner());
        h.commits.push(vector_after.clone());
        for s in staged {
            let mut rec = self.shards[s.shard]
                .recovery
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for seg in &s.table.segments()[s.prev_segments..] {
                rec.segments.push(SegmentEntry {
                    table: s.table.name().to_string(),
                    epoch: s.epoch,
                    file: segment_file_name(s.table.name(), seg.id),
                    meta: seg.clone(),
                });
            }
            rec.durable_epoch = s.epoch;
        }
        Ok(global)
    }

    /// Persist a new rules version to every shard log.
    pub(crate) fn log_rules(&self, version: u64, json: &str) -> Result<(), LogError> {
        for shard in &self.shards {
            shard
                .log
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .log_rules(version, json)?;
            shard
                .recovery
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .rules = Some((version, json.to_string()));
        }
        Ok(())
    }

    /// The per-shard epoch vector global epoch `global` committed at.
    pub(crate) fn resolve_vector(&self, global: u64) -> Option<EpochVector> {
        self.history
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .commits
            .get(global as usize)
            .cloned()
    }

    /// The newest committed global epoch.
    pub(crate) fn latest_global(&self) -> u64 {
        let h = self.history.lock().unwrap_or_else(|e| e.into_inner());
        h.commits.len() as u64 - 1
    }

    /// Materialize (or fetch the cached) catalog of `shard` as of shard
    /// epoch `epoch`, opening only the segment files committed by then.
    pub(crate) fn historical_catalog(
        &self,
        shard: usize,
        epoch: u64,
    ) -> Result<CatalogRef, LogError> {
        let d = &self.shards[shard];
        if let Some(cat) = d
            .catalogs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&epoch)
        {
            return Ok(Arc::clone(cat));
        }
        // Copy the committed history out of the lock so a slow
        // materialization never stalls ingest.
        let rec = {
            let r = d.recovery.lock().unwrap_or_else(|e| e.into_inner());
            ShardRecovery {
                tables: r.tables.clone(),
                segments: r.segments.clone(),
                durable_epoch: r.durable_epoch,
                rules: r.rules.clone(),
                records_replayed: r.records_replayed,
                tail: r.tail.clone(),
            }
        };
        let catalog: CatalogRef = Arc::new(materialize_catalog(&rec, epoch, &d.store)?);
        d.catalogs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(epoch, Arc::clone(&catalog));
        Ok(catalog)
    }

    /// Current durability counters.
    pub(crate) fn stats(&self) -> DurableStats {
        DurableStats {
            durable_epoch: self.latest_global(),
            epochs_recovered: self.epochs_recovered,
            log_records_replayed: self.replayed,
            segments_loaded_lazy: self.shards.iter().map(|s| s.store.segments_loaded()).sum(),
            segments_pruned_unopened: self.shards.iter().map(|s| s.store.segments_pruned()).sum(),
        }
    }

    /// Root directory (tests inspect the layout through this).
    #[allow(dead_code)]
    pub(crate) fn root(&self) -> &LogDir {
        &self.root
    }
}

/// Everything [`crate::QueryService::recover`] needs to rebuild a live
/// service from a durable root.
pub(crate) struct Recovered {
    pub state: DurableState,
    pub key: String,
    pub cache_capacity: u64,
    /// Per-shard catalogs materialized at the recovered global epoch.
    pub catalogs: Vec<CatalogRef>,
    /// The per-shard epoch vector of the recovered global epoch.
    pub shard_epochs: Vec<u64>,
    /// Latest durable rules version, if any was ever logged.
    pub rules: Option<(u64, String)>,
}

/// Replay a durable root into a consistent service state.
///
/// The recovered point is the newest manifest `GlobalCommit` whose epoch
/// vector every shard log covers; anything beyond it — shard epochs a
/// crash left without a global commit, torn log tails, orphaned segment
/// files — is truncated by compaction before the logs reopen for appends.
pub(crate) fn recover_state(opts: &DurableOptions) -> Result<Recovered, LogError> {
    let root = opts.open_root()?;
    let (payloads, _tail) = read_log(&root, MANIFEST_LOG)?;
    let mut records = payloads.iter();
    let first = records.next().ok_or_else(|| {
        LogError::malformed("empty manifest: service bootstrap never became durable")
    })?;
    let (nshards, key, cache_capacity) = match decode_record(first)? {
        LogRecord::Topology {
            shards,
            key,
            cache_capacity,
        } => ((shards as usize).max(1), key, cache_capacity),
        other => {
            return Err(LogError::malformed(format!(
                "manifest must start with a topology record, found {other:?}"
            )))
        }
    };
    let mut commits: Vec<EpochVector> = Vec::new();
    for payload in records {
        match decode_record(payload)? {
            LogRecord::GlobalCommit { global, vector } => {
                if global != commits.len() as u64 {
                    return Err(LogError::malformed(format!(
                        "global commit {global}, expected {}: history not dense",
                        commits.len()
                    )));
                }
                if vector.len() != nshards {
                    return Err(LogError::malformed(format!(
                        "global commit {global} has {} shards, topology says {nshards}",
                        vector.len()
                    )));
                }
                commits.push(EpochVector(vector));
            }
            other => {
                return Err(LogError::malformed(format!(
                    "unexpected manifest record {other:?}"
                )))
            }
        }
    }
    if commits.is_empty() {
        return Err(LogError::malformed(
            "manifest has no global commit: bootstrap never became durable",
        ));
    }
    let manifest_records = payloads.len() as u64;

    let mut dirs = Vec::with_capacity(nshards);
    let mut recs = Vec::with_capacity(nshards);
    for i in 0..nshards {
        let dir = root.subdir(&format!("shard-{i}"))?;
        recs.push(recover_shard(&dir)?);
        dirs.push(dir);
    }

    // The recovered point: newest global commit covered by every shard.
    let global = commits
        .iter()
        .enumerate()
        .rev()
        .find(|(_, v)| v.0.iter().zip(&recs).all(|(&e, r)| e <= r.durable_epoch))
        .map(|(g, _)| g)
        .ok_or_else(|| LogError::malformed("no global commit is covered by every shard log"))?;
    commits.truncate(global + 1);
    let vector = commits[global].clone();

    // Truncate each shard to the recovered vector and compact everything,
    // so reopened logs never append after crash debris.
    let mut replayed = manifest_records;
    for (i, rec) in recs.iter_mut().enumerate() {
        replayed += rec.records_replayed;
        rec.segments.retain(|s| s.epoch <= vector.0[i]);
        rec.durable_epoch = vector.0[i];
        rec.tail = None;
        compact_shard_log(&dirs[i], rec)?;
    }
    let mut buf = Vec::new();
    let mut frame = |r: &LogRecord| buf.extend_from_slice(&frame_record(&encode_record(r)));
    frame(&LogRecord::Topology {
        shards: nshards as u32,
        key: key.clone(),
        cache_capacity,
    });
    for (g, v) in commits.iter().enumerate() {
        frame(&LogRecord::GlobalCommit {
            global: g as u64,
            vector: v.0.clone(),
        });
    }
    root.write_atomic(MANIFEST_LOG, &buf)?;

    let rules = recs[0].rules.clone();
    let mut catalogs = Vec::with_capacity(nshards);
    let mut shards = Vec::with_capacity(nshards);
    for (i, rec) in recs.into_iter().enumerate() {
        let store = SegmentStore::new(dirs[i].clone());
        let catalog: CatalogRef = Arc::new(materialize_catalog(&rec, rec.durable_epoch, &store)?);
        catalogs.push(catalog);
        let log = ShardLog::create(dirs[i].clone())?;
        shards.push(DurableShard {
            log: Mutex::new(log),
            store,
            recovery: Mutex::new(rec),
            catalogs: Mutex::new(HashMap::new()),
        });
    }
    let manifest = LogWriter::open(&root, MANIFEST_LOG)?;
    let epochs_recovered = commits.len() as u64;
    Ok(Recovered {
        state: DurableState {
            root,
            manifest: Mutex::new(manifest),
            shards,
            history: Mutex::new(History { commits }),
            replayed,
            epochs_recovered,
        },
        key,
        cache_capacity,
        catalogs,
        shard_epochs: vector.0,
        rules,
    })
}
