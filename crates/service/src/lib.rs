//! # dc-service — concurrent snapshot query service
//!
//! Serves deferred-cleansing queries from a worker pool while a live ingest
//! path appends new RFID reads, without readers ever blocking on writers.
//! The design leans entirely on the storage layer's copy-on-write tables:
//!
//! * every published catalog is an immutable, **epoch-stamped snapshot**
//!   ([`Snapshot`]); queries run start-to-finish against the epoch they were
//!   dispatched on;
//! * [`QueryService::append`] builds the next epoch on a private overlay and
//!   publishes it with a single pointer swap ([`SnapshotCell`]);
//! * every query runs under a [`QueryBudget`] — deadline (anchored at submit
//!   time, so queue wait counts), row limit, and cooperative cancellation
//!   via [`Ticket::cancel`] — and aborts with a typed error, never a panic
//!   or partial rows;
//! * admission is a bounded queue with **reject-on-full** backpressure
//!   ([`ServiceError::Overloaded`]);
//! * [`QueryService::subscribe`] registers a **standing query**: the caller
//!   gets the full result once, then one [`ChangeSet`] per published epoch,
//!   maintained incrementally by re-cleansing only the cluster keys each
//!   append touched (see the `dc-stream` crate). Slow consumers lag on a
//!   bounded queue ([`StreamError::Lagged`]) instead of stalling ingest.
//!
//! ```
//! use dc_core::DeferredCleansingSystem;
//! use dc_relational::prelude::*;
//! use dc_service::{QueryRequest, QueryService, ServiceConfig};
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(Catalog::new());
//! let schema = schema_ref(Schema::new(vec![
//!     Field::new("epc", DataType::Str),
//!     Field::new("rtime", DataType::Int),
//!     Field::new("biz_loc", DataType::Str),
//! ]));
//! catalog.register(Table::new("caser", Batch::from_rows(schema.clone(), &[
//!     vec![Value::str("e1"), Value::Int(0), Value::str("shelf")],
//!     vec![Value::str("e1"), Value::Int(60), Value::str("shelf")], // duplicate
//! ]).unwrap()));
//! let sys = DeferredCleansingSystem::with_catalog(catalog);
//! sys.define_rule("app",
//!     "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime \
//!      AS (A, B) WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins \
//!      ACTION DELETE B").unwrap();
//!
//! let svc = QueryService::start(sys, ServiceConfig::default());
//! let r0 = svc.execute(QueryRequest::new("app", "select epc from caser")).unwrap();
//! assert_eq!((r0.batch.num_rows(), r0.service.snapshot_epoch), (1, 0));
//!
//! // A concurrent append publishes epoch 1; new queries see it.
//! svc.append("caser", Batch::from_rows(schema, &[
//!     vec![Value::str("e2"), Value::Int(5), Value::str("dock")],
//! ]).unwrap()).unwrap();
//! let r1 = svc.execute(QueryRequest::new("app", "select epc from caser")).unwrap();
//! assert_eq!((r1.batch.num_rows(), r1.service.snapshot_epoch), (2, 1));
//! ```

pub mod durable;
pub mod partition;
pub mod queue;
pub mod service;
pub mod snapshot;

pub use dc_core::{AbortReason, QueryBudget};
pub use dc_log::{FailPoint, LogError};
pub use dc_stream::{ChangeChannel, ChangeSet, MaintenanceStats, PushOutcome, StreamError};
pub use durable::{DurableOptions, DurableStats, MANIFEST_LOG};
pub use partition::{
    partition_catalog, split_batch, HashPartitioner, Partitioner, RangePartitioner,
};
pub use queue::{Bounded, PushError};
pub use service::subscribe::{AppendOutcome, SubscribeOptions, SubscriptionHandle};
pub use service::{
    QueryRequest, QueryResponse, QueryService, ServiceConfig, ServiceCounters, ServiceError,
    ServiceStats, ShardConfig, Ticket,
};
pub use snapshot::{EpochVector, Snapshot, SnapshotCell};
