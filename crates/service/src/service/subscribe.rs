//! Standing-query subscriptions: registration, the per-publish maintenance
//! driver, and the snapshot-backed [`MaintenanceRunner`].
//!
//! A subscription is created under the ingest lock, so its initial result
//! and the change feed tile the epoch line exactly: every publish after the
//! subscribe produces one [`ChangeSet`] (or a counted lag drop), and folding
//! the feed over the initial result reproduces a cold re-execution at each
//! epoch vector. The maintenance step itself lives in `dc-stream`
//! ([`StandingState::maintain`]); this module supplies what it cannot know —
//! which snapshots to run plans against, which cluster keys an append
//! touched (threaded through [`AppendOutcome`], so maintenance never
//! rescans the batch), and where the resulting change sets go
//! (backpressure-bounded [`ChangeChannel`]s).

use super::{QueryService, RunDetail, Shared};
use crate::snapshot::{EpochVector, Snapshot};
use crate::ServiceError;
use dc_core::{QueryBudget, Strategy};
use dc_relational::batch::Batch;
use dc_relational::delta;
use dc_relational::error::{Error, Result};
use dc_relational::exec::ExecStats;
use dc_relational::plan::LogicalPlan;
use dc_relational::sql::{parse_query, plan_query};
use dc_relational::value::Value;
use dc_stream::maintain::MaintenanceRunner;
use dc_stream::{
    classify, ChangeChannel, ChangeSet, Classified, RowKey, StandingState, StreamError,
};
use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What one [`QueryService::append`] did: the published snapshot, the
/// epoch vector it advanced the service to, and — for the standing-query
/// maintainer — exactly which cluster keys and shards the batch touched.
#[derive(Debug, Clone)]
pub struct AppendOutcome {
    /// The last snapshot published by this call (shard 0's current
    /// snapshot when the batch published nothing).
    pub snapshot: Arc<Snapshot>,
    /// Per-shard epochs after the publish.
    pub epochs: EpochVector,
    /// The appended table, lowercased.
    pub table: String,
    /// Distinct cluster-key values present in the batch, in first-seen
    /// order. Empty when no single cluster-key column could be resolved
    /// for the table (maintenance then falls back to recompute-and-diff).
    pub touched_keys: Vec<Value>,
    /// Shards that published a new epoch for this append.
    pub touched_shards: Vec<usize>,
    /// Rows in the appended batch.
    pub rows: usize,
}

/// Knobs for [`QueryService::subscribe`].
#[derive(Debug, Clone)]
pub struct SubscribeOptions {
    /// Rewrite strategy for the initial run and every maintenance
    /// re-execution (default [`Strategy::Auto`]).
    pub strategy: Strategy,
    /// Bound on undelivered change sets before the feed lags
    /// (default 16, minimum 1).
    pub queue_capacity: usize,
}

impl Default for SubscribeOptions {
    fn default() -> Self {
        SubscribeOptions {
            strategy: Strategy::Auto,
            queue_capacity: 16,
        }
    }
}

impl SubscribeOptions {
    /// Pin the rewrite strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the change-queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }
}

/// A live subscription: the initial result plus a bounded change feed.
/// Dropping the handle closes the feed; the service reaps the registration
/// on its next publish.
pub struct SubscriptionHandle {
    pub(super) id: u64,
    pub(super) initial: Batch,
    pub(super) epochs: EpochVector,
    pub(super) chan: Arc<ChangeChannel>,
    pub(super) mode: &'static str,
    pub(super) fallback_reason: Option<String>,
}

impl SubscriptionHandle {
    /// Registration id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The full result at subscribe time — the base the change feed folds
    /// over.
    pub fn initial(&self) -> &Batch {
        &self.initial
    }

    /// Epoch vector the initial result was computed at.
    pub fn epochs(&self) -> &EpochVector {
        &self.epochs
    }

    /// Maintenance mode the subscription was classified into (`scoped`,
    /// `ordered`, `aggregate`, or `fallback`).
    pub fn mode(&self) -> &'static str {
        self.mode
    }

    /// Why the subscription maintains by recompute-and-diff, when it does.
    pub fn fallback_reason(&self) -> Option<&str> {
        self.fallback_reason.as_deref()
    }

    /// Non-blocking poll of the change feed. `Ok(None)` means healthy but
    /// idle; [`StreamError::Lagged`] means the feed gapped and
    /// [`QueryService::resync`] is required before further deltas.
    pub fn try_next(&self) -> std::result::Result<Option<ChangeSet>, StreamError> {
        self.chan.try_recv()
    }

    /// Blocking receive with a timeout.
    pub fn next_timeout(&self, timeout: Duration) -> std::result::Result<ChangeSet, StreamError> {
        self.chan.recv_timeout(timeout)
    }

    /// Whether the feed has lagged (queue overflow) and needs a resync.
    pub fn is_lagged(&self) -> bool {
        self.chan.is_lagged()
    }
}

impl Drop for SubscriptionHandle {
    fn drop(&mut self) {
        self.chan.close();
    }
}

/// One registered subscription, shared between the registry and the
/// maintenance driver.
pub(super) struct SubEntry {
    pub(super) id: u64,
    application: String,
    sql: String,
    strategy: Strategy,
    pub(super) chan: Arc<ChangeChannel>,
    maint: Mutex<SubMaint>,
}

/// The mutable maintenance side of a subscription: retained standing state,
/// the snapshots it was last maintained against, and the append-relevance
/// metadata derived at subscribe time.
struct SubMaint {
    state: StandingState,
    /// Per-shard snapshots the state is current as of (the `prev` side of
    /// the next scoped run).
    prev: Vec<Arc<Snapshot>>,
    /// Lowercased tables whose appends can change this result: everything
    /// the user plan reads plus the application's rule tables.
    tables: BTreeSet<String>,
    /// The cleansed reads table (lowercased; empty when unresolved).
    table: String,
    /// The rules' cluster key (lowercased; empty when unresolved).
    ckey: String,
}

/// [`MaintenanceRunner`] over service snapshots: scoped plans run per shard
/// through the full cleansing rewrite (`query_plan_snapshot`), the fallback
/// recompute goes through the service's own scatter-gather path.
struct SnapshotRunner<'a> {
    shared: &'a Shared,
    application: &'a str,
    sql: &'a str,
    strategy: Strategy,
    prev: &'a [Arc<Snapshot>],
    new: &'a [Arc<Snapshot>],
}

fn rows_of(batch: &Batch) -> Vec<Vec<Value>> {
    (0..batch.num_rows()).map(|i| batch.row(i)).collect()
}

fn run_plan_on(
    shared: &Shared,
    shard: usize,
    snap: &Snapshot,
    application: &str,
    plan: &LogicalPlan,
    strategy: Strategy,
) -> Result<(Vec<Vec<Value>>, ExecStats)> {
    let (batch, report) = shared.shards[shard].system.query_plan_snapshot(
        &snap.catalog,
        application,
        plan,
        strategy,
        QueryBudget::unlimited(),
    )?;
    Ok((rows_of(&batch), report.stats))
}

impl MaintenanceRunner for SnapshotRunner<'_> {
    fn shard_count(&self) -> usize {
        self.new.len()
    }

    fn run_prev(
        &mut self,
        shard: usize,
        plan: &LogicalPlan,
    ) -> Result<(Vec<Vec<Value>>, ExecStats)> {
        run_plan_on(
            self.shared,
            shard,
            &self.prev[shard],
            self.application,
            plan,
            self.strategy,
        )
    }

    fn run_new(
        &mut self,
        shard: usize,
        plan: &LogicalPlan,
    ) -> Result<(Vec<Vec<Value>>, ExecStats)> {
        run_plan_on(
            self.shared,
            shard,
            &self.new[shard],
            self.application,
            plan,
            self.strategy,
        )
    }

    fn run_full(&mut self) -> Result<(Vec<Vec<Value>>, ExecStats)> {
        let detail: RunDetail = self
            .shared
            .run_detail(
                self.new,
                self.application,
                self.sql,
                self.strategy,
                QueryBudget::unlimited(),
            )
            .map_err(|e| Error::Execution(format!("standing-query recompute failed: {e}")))?;
        Ok((rows_of(&detail.batch), detail.report.stats))
    }
}

/// Resolve the subscription's cleansing target: the single (reads table,
/// cluster key) pair the application's rules agree on, or `None` when there
/// are no rules or several targets (the subscription then maintains by
/// recompute-and-diff, which is always sound).
fn cleanse_target(shared: &Shared, application: &str) -> Option<(String, String)> {
    let mut targets: BTreeSet<(String, String)> = BTreeSet::new();
    for t in shared.coordinator().rules().rules_for(application) {
        targets.insert((
            t.def.on_table.to_ascii_lowercase(),
            t.def.cluster_by.to_ascii_lowercase(),
        ));
    }
    if targets.len() == 1 {
        targets.into_iter().next()
    } else {
        None
    }
}

/// Lowercased tables whose appends can change the subscription's result.
fn relevant_tables(shared: &Shared, application: &str, plan: &LogicalPlan) -> BTreeSet<String> {
    let mut tables = BTreeSet::new();
    delta::plan_tables(plan, &mut tables);
    for t in shared.coordinator().rules().rules_for(application) {
        tables.insert(t.def.on_table.to_ascii_lowercase());
        tables.insert(t.def.from_table.to_ascii_lowercase());
    }
    tables
}

impl QueryService {
    /// Register a standing query: run it once against the current
    /// snapshots, classify it into a maintenance mode, seed the retained
    /// state, and return the initial result plus a change feed that emits
    /// one [`ChangeSet`] per subsequent publish of a relevant table.
    ///
    /// Runs under the ingest lock, so the initial result and the feed tile
    /// the epoch line with no gap and no overlap.
    pub fn subscribe(
        &self,
        application: &str,
        sql: &str,
        opts: SubscribeOptions,
    ) -> std::result::Result<SubscriptionHandle, ServiceError> {
        let _serial = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        let shared = &self.shared;
        let snaps = shared.load_snapshots();
        let epochs = EpochVector(snaps.iter().map(|s| s.epoch).collect());
        let detail = shared.run_detail(
            &snaps,
            application,
            sql,
            opts.strategy,
            QueryBudget::unlimited(),
        )?;
        let initial_rows = rows_of(&detail.batch);
        let user_plan = plan_query(
            &parse_query(sql).map_err(ServiceError::from)?,
            &snaps[0].catalog,
        )
        .map_err(ServiceError::from)?;
        let tables = relevant_tables(shared, application, &user_plan);
        let (table, ckey) = cleanse_target(shared, application).unwrap_or_default();
        let classified = if table.is_empty() {
            Classified::Fallback {
                reason: "application has no single cleansing target".into(),
            }
        } else {
            classify(&user_plan, &snaps[0].catalog, &table, &ckey)
        };
        // Seed with both runner sides at the subscribe snapshots: ordered
        // and aggregate modes build their retained buffers from `run_new`.
        let mut seed = SnapshotRunner {
            shared,
            application,
            sql,
            strategy: opts.strategy,
            prev: &snaps,
            new: &snaps,
        };
        let state = StandingState::new(
            user_plan,
            &table,
            &ckey,
            classified,
            initial_rows,
            &mut seed,
        )
        .map_err(ServiceError::from)?;
        let id = shared.next_sub_id.fetch_add(1, Ordering::Relaxed);
        let chan = Arc::new(ChangeChannel::new(opts.queue_capacity));
        let mode = state.mode_name();
        let fallback_reason = state.fallback_reason().map(str::to_string);
        let entry = Arc::new(SubEntry {
            id,
            application: application.to_string(),
            sql: sql.to_string(),
            strategy: opts.strategy,
            chan: Arc::clone(&chan),
            maint: Mutex::new(SubMaint {
                state,
                prev: snaps,
                tables,
                table,
                ckey,
            }),
        });
        shared
            .subs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(entry);
        shared.subscriptions.fetch_add(1, Ordering::Relaxed);
        Ok(SubscriptionHandle {
            id,
            initial: detail.batch,
            epochs,
            chan,
            mode,
            fallback_reason,
        })
    }

    /// Close a subscription's feed and drop its registration immediately
    /// (a dropped handle achieves the same lazily, at the next publish).
    pub fn unsubscribe(&self, handle: &SubscriptionHandle) {
        handle.chan.close();
        self.shared
            .subs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|s| s.id != handle.id);
    }

    /// Recover a lagged subscription: re-execute the query in full against
    /// the current snapshots, rebuild the retained state, clear the lag
    /// gap, and return the fresh base result and its epoch vector. The
    /// feed resumes from exactly this point.
    pub fn resync(
        &self,
        handle: &SubscriptionHandle,
    ) -> std::result::Result<(Batch, EpochVector), ServiceError> {
        let _serial = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        let shared = &self.shared;
        let entry = shared
            .subs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .find(|s| s.id == handle.id)
            .cloned()
            .ok_or_else(|| {
                ServiceError::Engine(Error::Execution(format!(
                    "no live subscription with id {}",
                    handle.id
                )))
            })?;
        let snaps = shared.load_snapshots();
        let epochs = EpochVector(snaps.iter().map(|s| s.epoch).collect());
        let detail = shared.run_detail(
            &snaps,
            &entry.application,
            &entry.sql,
            entry.strategy,
            QueryBudget::unlimited(),
        )?;
        let user_plan = plan_query(
            &parse_query(&entry.sql).map_err(ServiceError::from)?,
            &snaps[0].catalog,
        )
        .map_err(ServiceError::from)?;
        let mut m = entry.maint.lock().unwrap_or_else(|e| e.into_inner());
        let classified = if m.table.is_empty() {
            Classified::Fallback {
                reason: "application has no single cleansing target".into(),
            }
        } else {
            classify(&user_plan, &snaps[0].catalog, &m.table, &m.ckey)
        };
        let mut seed = SnapshotRunner {
            shared,
            application: &entry.application,
            sql: &entry.sql,
            strategy: entry.strategy,
            prev: &snaps,
            new: &snaps,
        };
        m.state = StandingState::new(
            user_plan,
            &m.table,
            &m.ckey,
            classified,
            rows_of(&detail.batch),
            &mut seed,
        )
        .map_err(ServiceError::from)?;
        m.prev = snaps;
        entry.chan.mark_resynced();
        Ok((detail.batch, epochs))
    }

    /// The publish hook: advance every live subscription past `outcome`.
    /// Runs under the ingest lock (called from [`QueryService::append`]),
    /// so subscriptions observe publishes strictly in order.
    pub(super) fn maintain_subscriptions(&self, outcome: &AppendOutcome) {
        let shared = &self.shared;
        let mut subs = shared.subs.lock().unwrap_or_else(|e| e.into_inner());
        if subs.is_empty() || outcome.touched_shards.is_empty() {
            // Nothing registered, or nothing published (an empty batch on
            // a partitioned table): no epoch advanced, nothing to do.
            subs.retain(|s| !s.chan.is_closed());
            return;
        }
        let new_snaps = shared.load_snapshots();
        let epochs = EpochVector(new_snaps.iter().map(|s| s.epoch).collect());
        subs.retain(|sub| {
            if sub.chan.is_closed() {
                return false;
            }
            let mut m = sub.maint.lock().unwrap_or_else(|e| e.into_inner());
            // Split the guard into disjoint field borrows: the runner reads
            // `prev` while `state` is maintained mutably.
            let m = &mut *m;
            if !m.tables.contains(&outcome.table) {
                // Irrelevant table: the result is unchanged, so sliding the
                // prev snapshots forward is sound and keeps them current.
                m.prev = new_snaps.clone();
                return true;
            }
            if sub.chan.is_lagged() {
                // Gap already open — don't burn maintenance work the
                // consumer can never apply; count the skip.
                shared.dropped_for_lag.fetch_add(1, Ordering::Relaxed);
                m.prev = new_snaps.clone();
                return true;
            }
            let reads_touched = outcome.table == m.table && !outcome.touched_keys.is_empty();
            let mut runner = SnapshotRunner {
                shared,
                application: &sub.application,
                sql: &sub.sql,
                strategy: sub.strategy,
                prev: &m.prev,
                new: &new_snaps,
            };
            let step = m.state.maintain(
                &mut runner,
                epochs.clone(),
                &outcome.touched_keys,
                &outcome.touched_shards,
                reads_touched,
            );
            match step {
                Ok(cs) => {
                    shared.notifications.fetch_add(1, Ordering::Relaxed);
                    shared
                        .deltas
                        .fetch_add(cs.delta_rows() as u64, Ordering::Relaxed);
                    if cs.stats.fallback {
                        shared.fallbacks.fetch_add(1, Ordering::Relaxed);
                    }
                    if sub.chan.push(cs) == dc_stream::PushOutcome::Dropped {
                        shared.dropped_for_lag.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    // Even the recompute failed; the feed can no longer be
                    // proven gapless. Surface it as a lag so the consumer
                    // resyncs rather than silently diverging.
                    sub.chan.force_lag();
                    shared.dropped_for_lag.fetch_add(1, Ordering::Relaxed);
                }
            }
            m.prev = new_snaps.clone();
            true
        });
    }

    /// The cluster-key column appends to `table` are keyed on, when one can
    /// be resolved: the router's shard key in sharded mode, else the single
    /// `CLUSTER BY` column the defined rules use for this table.
    pub(super) fn cluster_key_column(&self, table: &str) -> Option<String> {
        if let Some(router) = &self.shared.router {
            return Some(router.spec.key.clone());
        }
        let rules = self.shared.coordinator().rules();
        let mut keys: BTreeSet<String> = BTreeSet::new();
        for app in rules.applications() {
            for t in rules.rules_for(&app) {
                if t.def.on_table.eq_ignore_ascii_case(table)
                    || t.def.from_table.eq_ignore_ascii_case(table)
                {
                    keys.insert(t.def.cluster_by.to_ascii_lowercase());
                }
            }
        }
        if keys.len() == 1 {
            keys.into_iter().next()
        } else {
            None
        }
    }
}

/// Distinct values of `col` in `batch`, in first-seen order. Empty when the
/// batch has no such column (e.g. a dimension-table append).
pub(super) fn distinct_keys(batch: &Batch, col: &str) -> Vec<Value> {
    let Ok(idx) = batch.schema().index_of_name(col) else {
        return Vec::new();
    };
    let column = batch.column(idx);
    let mut seen: BTreeSet<RowKey> = BTreeSet::new();
    let mut out = Vec::new();
    for i in 0..batch.num_rows() {
        let v = column.value(i);
        if seen.insert(RowKey(vec![v.clone()])) {
            out.push(v);
        }
    }
    out
}
