//! The query service: N workers over immutable snapshots, one ingest path,
//! and — when sharded — a scatter-gather coordinator over per-shard
//! catalogs.
//!
//! Life of a query:
//!
//! 1. [`QueryService::submit`] wraps the request in a job, stamps the submit
//!    time, and offers it to the bounded admission queue. A full queue is an
//!    immediate [`ServiceError::Overloaded`] — the service sheds load instead
//!    of stacking latency.
//! 2. A worker pops the job, loads the *current* snapshot of every shard
//!    once (an [`EpochVector`]), and runs the rewrite + execute pipeline
//!    against those frozen epochs under a [`QueryBudget`]. Deadlines are
//!    anchored at submit time, so queue wait counts against the budget.
//! 3. The reply — rows + rewrite report + [`ServiceStats`] — travels back
//!    through the job's channel; [`Ticket::wait`] hands it to the caller.
//!
//! Ingest ([`QueryService::append`]) serializes on its own lock, builds the
//! next catalog overlay *outside* the publication cell, appends into it, and
//! publishes with a pointer swap. In-flight queries keep their epochs; the
//! next dispatch sees the new ones. In a sharded service the append batch is
//! first split on the cluster key, and only the shards that received rows
//! publish a new epoch.
//!
//! ## Scatter-gather
//!
//! [`QueryService::start_sharded`] partitions the catalog on the rules'
//! cluster key ([`crate::partition`]): since a cleansing rule only relates
//! readings within one cluster sequence, every shard cleanses its clusters
//! exactly as an unsharded system would. A query is then:
//!
//! * **rewritten once** at the coordinator against shard 0's snapshot (all
//!   shard catalogs share one schema, so the plan is valid everywhere),
//! * **decomposed** by [`split_scatter`] — shard-complete plans fan out
//!   unchanged, aggregates over non-key groups are lowered to partials,
//! * **executed on every shard in parallel** under clones of the query's
//!   budget (shared deadline + cancellation token; the row budget bounds
//!   each shard's own work),
//! * **gathered** at the coordinator: sorted-stream k-way merge for
//!   ORDER BY, additive re-aggregation for partials, a final LIMIT cut.
//!
//! Plans touching no partitioned table run on shard 0 alone (every shard
//! replicates dimension tables); plans with no sound decomposition fall
//! back to executing at the coordinator over a merged view of the shards.
//! A shard executor lost mid-query surfaces as the typed
//! [`ServiceError::ShardUnavailable`], never a hang or a panic.
//!
//! Workers also **coalesce identical work**: queries with the same epoch
//! vector, rule-set version, application, SQL, and strategy are guaranteed
//! to produce byte-identical results, so concurrent duplicates share a
//! single execution — the first dispatcher leads, the rest wait on its
//! in-flight slot and clone the result (their own budgets are re-checked
//! before the reply, so deadlines and cancellation still bite). A leader
//! failure is never shared: followers fall back to executing independently.

use self::subscribe::{distinct_keys, AppendOutcome, SubEntry};
use crate::durable::{
    log_err, split_as_of, DurableOptions, DurableState, DurableStats, StagedAppend,
};
use crate::partition::{partition_catalog, split_batch, table_like, HashPartitioner, Partitioner};
use crate::queue::{Bounded, PushError};
use crate::snapshot::{EpochVector, Snapshot, SnapshotCell};
use dc_core::{AbortReason, DeferredCleansingSystem, QueryBudget, QueryReport, Strategy};
use dc_relational::batch::Batch;
use dc_relational::error::Error;
use dc_relational::exec::{ExecStats, Executor};
use dc_relational::physical::OperatorMetrics;
use dc_relational::plan::LogicalPlan;
use dc_relational::scatter::{gather, sharding_spec_for, split_scatter, ScatterPlan, ShardingSpec};
use dc_relational::table::Catalog;
use dc_rewrite::{Executed, Rewritten};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub mod subscribe;

/// Sizing and default-budget knobs for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads answering queries (minimum 1).
    pub workers: usize,
    /// Admission queue depth; submissions beyond it are rejected with
    /// [`ServiceError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied to requests that don't set their own.
    pub default_deadline: Option<Duration>,
    /// Row budget applied to requests that don't set their own.
    pub default_row_limit: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline: None,
            default_row_limit: None,
        }
    }
}

/// How to shard a service: shard count, the cluster-key column that
/// partitions every key-bearing table, and whether each shard keeps a
/// (shard-salted) cleansed-sequence cache.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards (minimum 1).
    pub shards: usize,
    /// The cluster-key column (the rules' `CLUSTER BY` key, e.g. `epc`).
    /// Tables carrying this column are partitioned; all others are
    /// replicated to every shard.
    pub key: String,
    /// When set, every shard runs its own cleansed-sequence cache of this
    /// capacity, salted with the shard id so entries never alias across
    /// shards (shards number their own segments independently from 0).
    pub cleanse_cache_capacity: Option<usize>,
}

impl ShardConfig {
    /// Shard on `key` across `shards` shards, no per-shard cache.
    pub fn new(shards: usize, key: impl Into<String>) -> Self {
        ShardConfig {
            shards,
            key: key.into(),
            cleanse_cache_capacity: None,
        }
    }

    /// Give every shard a cleansed-sequence cache of `capacity` entries.
    pub fn with_cleanse_cache(mut self, capacity: usize) -> Self {
        self.cleanse_cache_capacity = Some(capacity);
        self
    }
}

/// One query to run: application context, SQL, and per-query budget
/// overrides.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Application whose cleansing rules apply.
    pub application: String,
    /// The SQL text.
    pub sql: String,
    /// Rewrite strategy (default [`Strategy::Auto`]).
    pub strategy: Strategy,
    /// Deadline measured from **submit** time — queue wait counts.
    pub deadline: Option<Duration>,
    /// Abort once the executor has emitted this many rows.
    pub row_limit: Option<u64>,
}

impl QueryRequest {
    /// A request with the cost-based default strategy and no budget.
    pub fn new(application: impl Into<String>, sql: impl Into<String>) -> Self {
        QueryRequest {
            application: application.into(),
            sql: sql.into(),
            strategy: Strategy::Auto,
            deadline: None,
            row_limit: None,
        }
    }

    /// Pin the rewrite strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set a deadline, measured from submit time.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set a row budget.
    pub fn with_row_limit(mut self, rows: u64) -> Self {
        self.row_limit = Some(rows);
        self
    }
}

/// Per-query service-side observations, attached to every reply (and to
/// [`ServiceError::Aborted`], so a timed-out caller still learns where the
/// time went).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Total appends across all shards at dispatch — the dense epoch itself
    /// for an unsharded service (one shard), [`EpochVector::total`]
    /// otherwise.
    pub snapshot_epoch: u64,
    /// Per-shard epochs the query ran against (one entry per shard; a
    /// single entry for an unsharded service).
    pub epochs: EpochVector,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: Duration,
    /// Time from dispatch to reply (rewrite + execution).
    pub exec_time: Duration,
    /// Index of the worker that ran the query.
    pub worker: usize,
    /// Why the query aborted, when it did.
    pub abort_reason: Option<AbortReason>,
    /// The reply was cloned from an identical concurrent query's execution
    /// instead of being computed by this worker.
    pub coalesced: bool,
}

impl ServiceStats {
    /// One SQL-comment line for EXPLAIN ANALYZE output, e.g.
    /// `-- service: epoch=3 queue_wait_us=12 exec_us=480 worker=1`
    /// (plus ` epochs=1.0.2` when the service is sharded).
    pub fn render_comment(&self) -> String {
        let mut line = format!(
            "-- service: epoch={} queue_wait_us={} exec_us={} worker={}",
            self.snapshot_epoch,
            self.queue_wait.as_micros(),
            self.exec_time.as_micros(),
            self.worker
        );
        if self.epochs.shards() > 1 {
            line.push_str(&format!(" epochs={}", self.epochs));
        }
        if self.coalesced {
            line.push_str(" coalesced");
        }
        if let Some(r) = self.abort_reason {
            line.push_str(&format!(" aborted={r}"));
        }
        line
    }
}

/// A completed query: rows, the rewrite/execution report, and what the
/// service observed along the way.
#[derive(Debug)]
pub struct QueryResponse {
    /// Result rows.
    pub batch: Batch,
    /// Rewrite decision + executor counters (see [`QueryReport`]).
    pub report: QueryReport,
    /// Queue wait, snapshot epochs, worker.
    pub service: ServiceStats,
}

/// Everything that can go wrong between submit and reply.
#[derive(Debug)]
pub enum ServiceError {
    /// The admission queue was full; try again later.
    Overloaded {
        /// The configured queue capacity the submission bounced off.
        capacity: usize,
    },
    /// The query tripped its budget: no rows were returned, and the
    /// service stats say which checkpoint fired.
    Aborted {
        /// Which budget fired.
        reason: AbortReason,
        /// Service-side timings for the aborted attempt.
        service: ServiceStats,
    },
    /// The engine rejected or failed the query (parse, plan, execution).
    Engine(Error),
    /// A shard executor was lost mid-query (its thread panicked). The
    /// query returns no rows; other shards' work is discarded.
    ShardUnavailable {
        /// Index of the shard that died.
        shard: usize,
    },
    /// The service is shutting down; the queue no longer accepts work.
    ShutDown,
    /// A time-travel request (`AS OF epoch E` or
    /// [`QueryService::query_as_of`]) could not be served: the service has
    /// no durable log, the epoch is outside the committed history, or the
    /// historical snapshot failed to materialize.
    TimeTravel(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { capacity } => {
                write!(f, "service overloaded: admission queue full ({capacity})")
            }
            ServiceError::Aborted { reason, service } => {
                write!(
                    f,
                    "query aborted ({reason}) after {}us on epoch {}",
                    service.exec_time.as_micros(),
                    service.snapshot_epoch
                )
            }
            ServiceError::Engine(e) => write!(f, "{e}"),
            ServiceError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} unavailable: executor lost mid-query")
            }
            ServiceError::ShutDown => write!(f, "service shut down"),
            ServiceError::TimeTravel(msg) => write!(f, "time travel: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<Error> for ServiceError {
    fn from(e: Error) -> Self {
        match e {
            Error::Aborted(reason) => ServiceError::Aborted {
                reason,
                service: ServiceStats {
                    snapshot_epoch: 0,
                    epochs: EpochVector::default(),
                    queue_wait: Duration::ZERO,
                    exec_time: Duration::ZERO,
                    worker: 0,
                    abort_reason: Some(reason),
                    coalesced: false,
                },
            },
            other => ServiceError::Engine(other),
        }
    }
}

impl ServiceError {
    /// The abort reason, when this is a budget abort.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match self {
            ServiceError::Aborted { reason, .. } => Some(*reason),
            _ => None,
        }
    }
}

/// Lifetime counters of one service instance (monotone, relaxed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Jobs accepted into the queue.
    pub admitted: u64,
    /// Submissions bounced for a full queue.
    pub rejected: u64,
    /// Queries that returned rows.
    pub completed: u64,
    /// Queries that tripped a budget.
    pub aborted: u64,
    /// Queries that failed in the engine.
    pub failed: u64,
    /// Batches appended (each may publish epochs on several shards).
    pub appends: u64,
    /// Queries answered by cloning an identical concurrent query's result
    /// instead of executing (see the module docs on work coalescing).
    pub coalesced: u64,
    /// Standing-query subscriptions ever registered.
    pub subscriptions: u64,
    /// Change sets computed for subscribers (one per live subscription per
    /// relevant publish).
    pub notifications: u64,
    /// Delta rows carried by those change sets (each update counts its old
    /// and new row).
    pub delta_rows: u64,
    /// Maintenance steps that recomputed the full result: fallback-mode
    /// subscriptions, forced re-seeds (e.g. a dimension-table append), and
    /// incremental-error downgrades.
    pub fallbacks: u64,
    /// Notifications lost to subscriber lag: change sets dropped on a full
    /// queue, steps skipped while a feed was already gapped, and failed
    /// steps surfaced as lag.
    pub dropped_for_lag: u64,
}

struct Job {
    req: QueryRequest,
    submitted: Instant,
    cancel: Arc<AtomicBool>,
    reply: SyncSender<Result<QueryResponse, ServiceError>>,
}

/// Handle to an admitted query: await the reply, or cancel it.
pub struct Ticket {
    cancel: Arc<AtomicBool>,
    rx: Receiver<Result<QueryResponse, ServiceError>>,
}

impl Ticket {
    /// Block until the query finishes (or aborts). Consumes the ticket.
    pub fn wait(self) -> Result<QueryResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::ShutDown))
    }

    /// Request cooperative cancellation. The running query observes the
    /// flag at its next operator boundary and aborts with
    /// [`AbortReason::Cancelled`]; a queued query aborts at dispatch. In a
    /// sharded service the token is shared by every shard executor, so one
    /// cancel stops the whole fan-out.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// The cancellation token, for wiring into external timeouts.
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }
}

/// Identity of an execution whose result is a pure function of service
/// state: two jobs with equal keys must produce byte-identical batches, so
/// their executions may be shared. Sharded services key on the full epoch
/// vector — any shard advancing breaks the match.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FlightKey {
    epochs: EpochVector,
    rules_version: u64,
    application: String,
    sql: String,
    strategy: &'static str,
}

fn strategy_tag(s: Strategy) -> &'static str {
    match s {
        Strategy::Auto => "Auto",
        Strategy::Expanded => "Expanded",
        Strategy::JoinBack => "JoinBack",
        _ => "Other",
    }
}

/// One in-flight shared execution: the leader publishes, followers wait.
struct Flight {
    slot: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    Running,
    /// The leader failed or aborted — never shared; followers re-execute
    /// under their own budgets.
    NotShared,
    Done(Box<(Batch, QueryReport)>),
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(FlightState::Running),
            done: Condvar::new(),
        }
    }

    /// Block until the leader publishes; `None` means run it yourself.
    fn wait(&self) -> Option<(Batch, QueryReport)> {
        let mut s = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        while matches!(*s, FlightState::Running) {
            s = self.done.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        match &*s {
            FlightState::Done(shared) => Some((**shared).clone()),
            _ => None,
        }
    }

    fn publish(&self, result: Option<(Batch, QueryReport)>) {
        let mut s = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *s = match result {
            Some(pair) => FlightState::Done(Box::new(pair)),
            None => FlightState::NotShared,
        };
        self.done.notify_all();
    }
}

enum Role {
    Leader(Arc<Flight>),
    Follower(Arc<Flight>),
}

/// One shard: its own deferred-cleansing system (shard-local catalog,
/// rules copy, shard-salted cleanse cache) and snapshot publication cell.
struct ShardState {
    system: DeferredCleansingSystem,
    snapshots: SnapshotCell,
}

/// The ingest router of a sharded service.
struct Router {
    spec: ShardingSpec,
    partitioner: Arc<dyn Partitioner>,
}

/// What one query execution looked like, shard by shard.
struct ShardObservation {
    shard: usize,
    epoch: u64,
    rows: u64,
    segments_scanned: u64,
    segments_pruned: u64,
}

/// A finished run with enough detail for both the reply path and
/// EXPLAIN ANALYZE's `-- shards:` rendering.
struct RunDetail {
    batch: Batch,
    report: QueryReport,
    per_shard: Vec<ShardObservation>,
    /// `"local"` (unsharded), `"single-shard"`, `"scatter"`, or
    /// `"coordinator"` (unshardable fallback).
    mode: &'static str,
}

struct Shared {
    shards: Vec<ShardState>,
    router: Option<Router>,
    /// WAL + epoch history when the service is durable; `None` for a
    /// purely in-memory service.
    durable: Option<DurableState>,
    queue: Bounded<Job>,
    config: ServiceConfig,
    inflight: Mutex<HashMap<FlightKey, Arc<Flight>>>,
    rules_version: AtomicU64,
    /// Fault injection for tests: a shard index whose executor panics
    /// mid-query (`usize::MAX` = none).
    fail_shard: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    aborted: AtomicU64,
    failed: AtomicU64,
    appends: AtomicU64,
    coalesced: AtomicU64,
    /// Standing-query registry: advanced in publish order under the ingest
    /// lock, reaped when a subscriber's channel closes.
    pub(crate) subs: Mutex<Vec<Arc<SubEntry>>>,
    pub(crate) next_sub_id: AtomicU64,
    pub(crate) subscriptions: AtomicU64,
    pub(crate) notifications: AtomicU64,
    pub(crate) deltas: AtomicU64,
    pub(crate) fallbacks: AtomicU64,
    pub(crate) dropped_for_lag: AtomicU64,
}

impl Shared {
    /// The system queries are rewritten against (shard 0; the only shard
    /// of an unsharded service).
    fn coordinator(&self) -> &DeferredCleansingSystem {
        &self.shards[0].system
    }

    /// Load every shard's current snapshot, in shard order.
    fn load_snapshots(&self) -> Vec<Arc<Snapshot>> {
        self.shards.iter().map(|s| s.snapshots.load()).collect()
    }

    /// Per-shard snapshots as of global epoch `global`, materialized from
    /// the durable log (shards already at the requested epoch reuse their
    /// live snapshot). Historical tables carry the same segment ids as the
    /// live prefix, so shard cleanse caches stay sound across time travel.
    fn historical_snapshots(&self, global: u64) -> Result<Vec<Arc<Snapshot>>, ServiceError> {
        let durable = self.durable.as_ref().ok_or_else(|| {
            ServiceError::TimeTravel(
                "as of epoch requires a durable service (see QueryService::start_durable)".into(),
            )
        })?;
        let vector = durable.resolve_vector(global).ok_or_else(|| {
            ServiceError::TimeTravel(format!(
                "epoch {global} outside the committed history (0..={})",
                durable.latest_global()
            ))
        })?;
        let mut snaps = Vec::with_capacity(vector.0.len());
        for (i, &epoch) in vector.0.iter().enumerate() {
            let live = self.shards[i].snapshots.load();
            if live.epoch == epoch {
                snaps.push(live);
                continue;
            }
            let catalog = durable.historical_catalog(i, epoch).map_err(|e| {
                ServiceError::TimeTravel(format!("materialize shard {i} at epoch {epoch}: {e}"))
            })?;
            snaps.push(Arc::new(Snapshot { epoch, catalog }));
        }
        Ok(snaps)
    }

    /// The effective budget for a job: per-request overrides, else service
    /// defaults; deadline anchored at submit so queue wait is charged.
    fn budget_for(&self, job: &Job) -> QueryBudget {
        let mut budget = QueryBudget::unlimited().with_cancel(Arc::clone(&job.cancel));
        if let Some(d) = job.req.deadline.or(self.config.default_deadline) {
            budget = budget.with_deadline_at(job.submitted + d);
        }
        if let Some(rows) = job.req.row_limit.or(self.config.default_row_limit) {
            budget = budget.with_row_limit(rows);
        }
        budget
    }

    /// Join an identical in-flight execution as a follower, or register a
    /// new one and lead it.
    fn join_or_lead(&self, key: &FlightKey) -> Role {
        let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(key) {
            Some(f) => Role::Follower(Arc::clone(f)),
            None => {
                let f = Arc::new(Flight::new());
                map.insert(key.clone(), Arc::clone(&f));
                Role::Leader(f)
            }
        }
    }

    /// Remove a led flight so later duplicates execute afresh (results are
    /// only shared between *concurrent* queries; nothing is memoized across
    /// time).
    fn release(&self, key: &FlightKey) {
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key);
    }

    /// The rewrite + execute pipeline for one query against the loaded
    /// snapshots, via the legacy local path or scatter-gather.
    fn run_detail(
        &self,
        snaps: &[Arc<Snapshot>],
        application: &str,
        sql: &str,
        strategy: Strategy,
        budget: QueryBudget,
    ) -> Result<RunDetail, ServiceError> {
        match &self.router {
            None => {
                let (batch, report) = self.shards[0].system.query_snapshot(
                    &snaps[0].catalog,
                    application,
                    sql,
                    strategy,
                    budget,
                )?;
                Ok(RunDetail {
                    batch,
                    report,
                    per_shard: Vec::new(),
                    mode: "local",
                })
            }
            Some(router) => self.run_scatter(router, snaps, application, sql, strategy, budget),
        }
    }

    /// Scatter-gather execution: rewrite once at the coordinator, decompose,
    /// fan out, merge.
    fn run_scatter(
        &self,
        router: &Router,
        snaps: &[Arc<Snapshot>],
        application: &str,
        sql: &str,
        strategy: Strategy,
        budget: QueryBudget,
    ) -> Result<RunDetail, ServiceError> {
        let start = Instant::now();
        let coord = self.coordinator();
        let rewritten = coord.rewrite_snapshot(&snaps[0].catalog, application, sql, strategy)?;
        match split_scatter(&rewritten.plan, &router.spec) {
            ScatterPlan::SingleShard => {
                // Replicated inputs only: shard 0 holds the full answer.
                let run =
                    coord.execute_rewritten_snapshot(&snaps[0].catalog, &rewritten, budget)?;
                let per = vec![ShardObservation {
                    shard: 0,
                    epoch: snaps[0].epoch,
                    rows: run.batch.num_rows() as u64,
                    segments_scanned: run.stats.segments_scanned,
                    segments_pruned: run.stats.segments_pruned,
                }];
                let report = scatter_report(
                    &rewritten,
                    strategy,
                    run.stats,
                    run.window_eval_nanos,
                    run.metrics,
                    run.batch.num_rows(),
                    start,
                    coord.exec_options().parallelism,
                    vec!["scatter: replicated-only plan, answered by shard 0".into()],
                );
                Ok(RunDetail {
                    batch: run.batch,
                    report,
                    per_shard: per,
                    mode: "single-shard",
                })
            }
            ScatterPlan::Scatter {
                shard_plan,
                steps,
                reuses_plan,
            } => {
                let parts =
                    self.execute_on_shards(&rewritten, &shard_plan, reuses_plan, snaps, &budget)?;
                let shard_batches: Vec<Batch> = parts.iter().map(|e| e.batch.clone()).collect();
                let (batch, outcome) =
                    gather(&shard_batches, &steps).map_err(ServiceError::from)?;
                let mut stats = ExecStats::default();
                let mut window_eval_nanos = 0u64;
                for e in &parts {
                    stats.add(&e.stats);
                    window_eval_nanos += e.window_eval_nanos;
                }
                stats.shard_rows_merged += outcome.shard_rows_merged;
                stats.sort_comparisons += outcome.sort_comparisons;
                stats.merge_runs_used += outcome.merge_runs_used;
                stats.add_hash(&outcome.hash);
                let metrics = combine_metrics(&parts);
                let per = parts
                    .iter()
                    .enumerate()
                    .map(|(i, e)| ShardObservation {
                        shard: i,
                        epoch: snaps[i].epoch,
                        rows: e.batch.num_rows() as u64,
                        segments_scanned: e.stats.segments_scanned,
                        segments_pruned: e.stats.segments_pruned,
                    })
                    .collect();
                let report = scatter_report(
                    &rewritten,
                    strategy,
                    stats,
                    window_eval_nanos,
                    metrics,
                    batch.num_rows(),
                    start,
                    coord.exec_options().parallelism,
                    vec![format!(
                        "scatter: {} shards, {} gather step(s){}",
                        self.shards.len(),
                        steps.len(),
                        if reuses_plan {
                            ", cached shard path"
                        } else {
                            ""
                        }
                    )],
                );
                Ok(RunDetail {
                    batch,
                    report,
                    per_shard: per,
                    mode: "scatter",
                })
            }
            ScatterPlan::Unshardable => {
                // No sound decomposition: merge the partitioned tables into
                // a coordinator-side view and execute there, bypassing the
                // shard caches (the merged tables are transient, so their
                // segment ids must never validate cached entries).
                let merged = merged_catalog(router, snaps).map_err(ServiceError::from)?;
                let rewritten = coord.rewrite_snapshot(&merged, application, sql, strategy)?;
                let run = coord.execute_rewritten_snapshot_uncached(&merged, &rewritten, budget)?;
                let per = snaps
                    .iter()
                    .enumerate()
                    .map(|(i, s)| ShardObservation {
                        shard: i,
                        epoch: s.epoch,
                        rows: 0,
                        segments_scanned: 0,
                        segments_pruned: 0,
                    })
                    .collect();
                let rows = run.batch.num_rows();
                let report = scatter_report(
                    &rewritten,
                    strategy,
                    run.stats,
                    run.window_eval_nanos,
                    run.metrics,
                    rows,
                    start,
                    coord.exec_options().parallelism,
                    vec![
                        "scatter: unshardable plan, executed at coordinator over merged shards"
                            .into(),
                    ],
                );
                Ok(RunDetail {
                    batch: run.batch,
                    report,
                    per_shard: per,
                    mode: "coordinator",
                })
            }
        }
    }

    /// Fan `shard_plan` out to every shard in parallel. With `reuses_plan`
    /// the shard plan is byte-identical to the coordinator's rewritten
    /// plan, so each shard runs it through its own system (and shard-local
    /// cleanse cache); otherwise the decomposed plan executes directly. A
    /// panicking shard thread becomes [`ServiceError::ShardUnavailable`].
    fn execute_on_shards(
        &self,
        rewritten: &Rewritten,
        shard_plan: &LogicalPlan,
        reuses_plan: bool,
        snaps: &[Arc<Snapshot>],
        budget: &QueryBudget,
    ) -> Result<Vec<Executed>, ServiceError> {
        let fail = self.fail_shard.load(Ordering::Relaxed);
        let joined: Vec<std::thread::Result<Result<Executed, Error>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .enumerate()
                    .map(|(i, shard)| {
                        let b = budget.clone();
                        scope.spawn(move || {
                            assert!(i != fail, "injected shard failure");
                            if reuses_plan {
                                shard.system.execute_rewritten_snapshot(
                                    &snaps[i].catalog,
                                    rewritten,
                                    b,
                                )
                            } else {
                                let mut ex = Executor::with_budget(
                                    &snaps[i].catalog,
                                    shard.system.exec_options(),
                                    b,
                                );
                                let batch = ex.execute(shard_plan)?;
                                Ok(Executed {
                                    batch,
                                    stats: ex.stats,
                                    window_eval_nanos: ex.window_eval_nanos,
                                    metrics: ex.metrics,
                                })
                            }
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
        let mut out = Vec::with_capacity(joined.len());
        for (i, r) in joined.into_iter().enumerate() {
            match r {
                Ok(Ok(e)) => out.push(e),
                Ok(Err(e)) => return Err(ServiceError::from(e)),
                Err(_) => return Err(ServiceError::ShardUnavailable { shard: i }),
            }
        }
        Ok(out)
    }
}

/// Build the coordinator's [`QueryReport`] for a scatter-gather run.
#[allow(clippy::too_many_arguments)]
fn scatter_report(
    rewritten: &Rewritten,
    strategy: Strategy,
    stats: ExecStats,
    window_eval_nanos: u64,
    metrics: Option<OperatorMetrics>,
    result_rows: usize,
    start: Instant,
    parallelism: usize,
    extra_notes: Vec<String>,
) -> QueryReport {
    let mut notes = rewritten.notes.clone();
    notes.extend(extra_notes);
    QueryReport {
        strategy: format!("{strategy:?}"),
        chosen: rewritten.chosen.clone(),
        candidates: rewritten.candidates.clone(),
        expanded_condition: rewritten.expanded_condition.as_ref().map(|e| e.to_string()),
        context_condition: rewritten.context_condition.as_ref().map(|e| e.to_string()),
        notes,
        stats,
        elapsed: start.elapsed(),
        plan: rewritten.plan.display_indent(),
        result_rows,
        window_eval_nanos,
        parallelism,
        metrics,
    }
}

/// Merge per-shard metrics trees into one combined view when every shard
/// executed the same operator shape; `None` otherwise (per-shard trees are
/// not comparable, so no tree beats a wrong tree).
fn combine_metrics(parts: &[Executed]) -> Option<OperatorMetrics> {
    let mut iter = parts.iter();
    let mut combined = iter.next()?.metrics.clone()?;
    for e in iter {
        match &e.metrics {
            Some(m) if combined.merge_same_shape(m) => {}
            _ => return None,
        }
    }
    Some(combined)
}

/// A transient coordinator-side catalog where every partitioned table is
/// the shard-order concatenation of its shard parts (replicated tables are
/// shared from shard 0). Used for the unshardable fallback only.
fn merged_catalog(router: &Router, snaps: &[Arc<Snapshot>]) -> Result<Catalog, Error> {
    let merged = snaps[0].catalog.overlay();
    for name in &router.spec.partitioned {
        let mut parts = Vec::with_capacity(snaps.len());
        let template = snaps[0].catalog.get(name)?;
        for s in snaps {
            parts.push(s.catalog.get(name)?.data().clone());
        }
        let all = Batch::concat(&parts)?;
        merged.register(table_like(&template, all)?);
    }
    Ok(merged)
}

/// A concurrent query service over one or more [`DeferredCleansingSystem`]s.
///
/// Readers (the worker pool) answer rewritten queries against immutable
/// epoch-stamped snapshots; a single ingest path appends and publishes new
/// epochs without ever blocking a reader on append work. Sharded services
/// ([`QueryService::start_sharded`]) scatter each query over per-shard
/// catalogs and gather the partials at the coordinator. Dropping the
/// service closes the queue, drains queued jobs, and joins the workers.
pub struct QueryService {
    shared: Arc<Shared>,
    ingest: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Take ownership of `system`, freeze its current catalog as epoch 0,
    /// and start the worker pool (unsharded: one shard, no router).
    pub fn start(system: DeferredCleansingSystem, config: ServiceConfig) -> Self {
        let epoch0 = Arc::new(system.catalog().overlay());
        let shard = ShardState {
            system,
            snapshots: SnapshotCell::new(epoch0),
        };
        Self::start_inner(vec![shard], None, config, None)
    }

    /// [`QueryService::start`] with a durable commit log under
    /// `opts.dir`: the initial catalog and rules are persisted as epoch 0,
    /// every append is logged and fsynced **before** its snapshot
    /// publishes, and the full epoch history stays queryable with
    /// `AS OF epoch E` (or [`QueryService::query_as_of`]). Restart with
    /// [`QueryService::recover`].
    pub fn start_durable(
        system: DeferredCleansingSystem,
        config: ServiceConfig,
        opts: DurableOptions,
    ) -> Result<Self, Error> {
        let rules_json = system.rules_to_json();
        let state = DurableState::bootstrap(&opts, &[system.catalog()], "", 0, &rules_json)
            .map_err(log_err)?;
        let epoch0 = Arc::new(system.catalog().overlay());
        let shard = ShardState {
            system,
            snapshots: SnapshotCell::new(epoch0),
        };
        Ok(Self::start_inner(vec![shard], None, config, Some(state)))
    }

    /// [`QueryService::start`] with default sizing.
    pub fn with_defaults(system: DeferredCleansingSystem) -> Self {
        Self::start(system, ServiceConfig::default())
    }

    /// Partition `system`'s catalog on `shard.key` with the default
    /// [`HashPartitioner`] and start a scatter-gather service. Each shard
    /// gets its own system (shard catalog, copy of the rules, optional
    /// shard-salted cleanse cache), ingest epoch history, and snapshot
    /// cell. Results are byte-identical (up to row order, exact under
    /// ORDER BY) to an unsharded service at the same epochs.
    pub fn start_sharded(
        system: DeferredCleansingSystem,
        config: ServiceConfig,
        shard: ShardConfig,
    ) -> Result<Self, Error> {
        Self::start_sharded_with(system, config, shard, Arc::new(HashPartitioner))
    }

    /// [`QueryService::start_sharded`] with a custom [`Partitioner`]
    /// (e.g. [`crate::partition::RangePartitioner`]).
    pub fn start_sharded_with(
        system: DeferredCleansingSystem,
        config: ServiceConfig,
        shard: ShardConfig,
        partitioner: Arc<dyn Partitioner>,
    ) -> Result<Self, Error> {
        let (shards, router) = Self::build_shards(system, shard, partitioner)?;
        Ok(Self::start_inner(shards, Some(router), config, None))
    }

    /// [`QueryService::start_sharded`] with a durable root: the manifest
    /// records the topology, each shard keeps its own commit log + segment
    /// files, and every append commits on all touched shard logs *and* the
    /// manifest before any shard publishes. Restart with
    /// [`QueryService::recover`], which rebuilds the same topology.
    pub fn start_sharded_durable(
        system: DeferredCleansingSystem,
        config: ServiceConfig,
        shard: ShardConfig,
        opts: DurableOptions,
    ) -> Result<Self, Error> {
        let cache_capacity = shard.cleanse_cache_capacity.unwrap_or(0) as u64;
        let key = shard.key.clone();
        let rules_json = system.rules_to_json();
        let (shards, router) = Self::build_shards(system, shard, Arc::new(HashPartitioner))?;
        let catalogs: Vec<&Catalog> = shards.iter().map(|s| s.system.catalog()).collect();
        let state = DurableState::bootstrap(&opts, &catalogs, &key, cache_capacity, &rules_json)
            .map_err(log_err)?;
        Ok(Self::start_inner(shards, Some(router), config, Some(state)))
    }

    /// Reopen a durable root written by [`QueryService::start_durable`] /
    /// [`QueryService::start_sharded_durable`]: replay the manifest and
    /// every shard log, roll back to the newest globally committed epoch,
    /// compact away crash debris, and resume serving (and appending) right
    /// where the durable history ends. The entire history remains
    /// addressable through `AS OF epoch E`.
    pub fn recover(opts: DurableOptions, config: ServiceConfig) -> Result<Self, Error> {
        let rec = crate::durable::recover_state(&opts).map_err(log_err)?;
        let sharded = !rec.key.is_empty();
        let mut shards = Vec::with_capacity(rec.catalogs.len());
        for (i, catalog) in rec.catalogs.iter().enumerate() {
            let mut sys = DeferredCleansingSystem::with_catalog(Arc::clone(catalog));
            if let Some((_, json)) = &rec.rules {
                sys.load_rules_from_json(json)?;
            }
            if rec.cache_capacity > 0 {
                sys.enable_cleanse_cache_for_shard(rec.cache_capacity as usize, i as u64);
            }
            let frozen = Arc::new(sys.catalog().overlay());
            shards.push(ShardState {
                system: sys,
                snapshots: SnapshotCell::at_epoch(frozen, rec.shard_epochs[i]),
            });
        }
        let router = if sharded {
            let spec = sharding_spec_for(shards[0].system.catalog(), &rec.key);
            Some(Router {
                spec,
                partitioner: Arc::new(HashPartitioner) as Arc<dyn Partitioner>,
            })
        } else {
            None
        };
        let rules_version = rec.rules.as_ref().map_or(0, |(v, _)| *v);
        let svc = Self::start_inner(shards, router, config, Some(rec.state));
        svc.shared
            .rules_version
            .store(rules_version, Ordering::Relaxed);
        Ok(svc)
    }

    /// Partition `system` into shard states plus the ingest router (shared
    /// by the in-memory and durable sharded constructors).
    fn build_shards(
        system: DeferredCleansingSystem,
        shard: ShardConfig,
        partitioner: Arc<dyn Partitioner>,
    ) -> Result<(Vec<ShardState>, Router), Error> {
        let n = shard.shards.max(1);
        let spec = sharding_spec_for(system.catalog(), &shard.key);
        let catalogs = partition_catalog(system.catalog(), &spec, partitioner.as_ref(), n)?;
        let rules_json = system.rules_to_json();
        let parallelism = system.exec_options().parallelism;
        let shards = catalogs
            .into_iter()
            .enumerate()
            .map(|(i, cat)| {
                let mut sys = DeferredCleansingSystem::with_catalog(Arc::new(cat));
                sys.set_parallelism(parallelism);
                sys.load_rules_from_json(&rules_json)?;
                if let Some(cap) = shard.cleanse_cache_capacity {
                    sys.enable_cleanse_cache_for_shard(cap, i as u64);
                }
                let epoch0 = Arc::new(sys.catalog().overlay());
                Ok(ShardState {
                    system: sys,
                    snapshots: SnapshotCell::new(epoch0),
                })
            })
            .collect::<Result<Vec<_>, Error>>()?;
        Ok((shards, Router { spec, partitioner }))
    }

    fn start_inner(
        shards: Vec<ShardState>,
        router: Option<Router>,
        config: ServiceConfig,
        durable: Option<DurableState>,
    ) -> Self {
        let shared = Arc::new(Shared {
            shards,
            router,
            durable,
            queue: Bounded::new(config.queue_capacity),
            config,
            inflight: Mutex::new(HashMap::new()),
            rules_version: AtomicU64::new(0),
            fail_shard: AtomicUsize::new(usize::MAX),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            subs: Mutex::new(Vec::new()),
            next_sub_id: AtomicU64::new(0),
            subscriptions: AtomicU64::new(0),
            notifications: AtomicU64::new(0),
            deltas: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            dropped_for_lag: AtomicU64::new(0),
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dc-service-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn service worker")
            })
            .collect();
        QueryService {
            shared,
            ingest: Mutex::new(()),
            workers,
        }
    }

    /// Submit a query for asynchronous execution. Rejects immediately when
    /// the admission queue is full.
    pub fn submit(&self, req: QueryRequest) -> Result<Ticket, ServiceError> {
        let cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::sync_channel(1);
        let job = Job {
            req,
            submitted: Instant::now(),
            cancel: Arc::clone(&cancel),
            reply: tx,
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { cancel, rx })
            }
            Err(PushError::Full(_)) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Overloaded {
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServiceError::ShutDown),
        }
    }

    /// Submit and wait: the synchronous convenience path.
    pub fn execute(&self, req: QueryRequest) -> Result<QueryResponse, ServiceError> {
        self.submit(req)?.wait()
    }

    /// Append `batch` to `table` and publish the next epoch(s). All the
    /// append work (key routing, row concatenation, segment sealing, index
    /// extension, cleanse cache invalidation) happens on private overlays
    /// outside the publication cells — readers never wait on it.
    ///
    /// Sharded services route the rows on the cluster key first: only the
    /// shards that received rows publish a new epoch (appends to a
    /// replicated table publish on every shard). Returns an
    /// [`AppendOutcome`]: the last snapshot published by this call (shard
    /// 0's current snapshot if the batch was empty), the epoch vector it
    /// advanced to, and the cluster keys and shards the batch touched —
    /// computed once here so standing-query maintenance never rescans the
    /// batch.
    ///
    /// Before returning, every live subscription is advanced past the
    /// publish (still under the ingest lock), pushing one change set per
    /// relevant feed.
    pub fn append(&self, table: &str, batch: Batch) -> Result<AppendOutcome, Error> {
        let _serial = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        self.shared.appends.fetch_add(1, Ordering::Relaxed);
        let lowered = table.to_ascii_lowercase();
        let rows = batch.num_rows();
        let touched_keys = match self.cluster_key_column(&lowered) {
            Some(col) => distinct_keys(&batch, &col),
            None => Vec::new(),
        };
        // Stage every touched shard's next overlay first, publishing
        // nothing: a durable service must land the whole append in the
        // write-ahead logs (all shard commits, then the manifest's global
        // commit) before any reader can observe it.
        struct Staged {
            shard: usize,
            next: Catalog,
            table: Arc<dc_relational::table::Table>,
            prev_segments: usize,
            epoch: u64,
        }
        let mut staged: Vec<Staged> = Vec::new();
        let mut stage = |shard: usize, part: Batch| -> Result<(), Error> {
            let current = self.shared.shards[shard].snapshots.load();
            let prev_segments = current.catalog.get(&lowered)?.segments().len();
            let next = current.catalog.overlay();
            let appended = next.append(table, part)?;
            staged.push(Staged {
                shard,
                next,
                table: appended,
                prev_segments,
                epoch: current.epoch + 1,
            });
            Ok(())
        };
        match &self.shared.router {
            Some(router) if router.spec.partitioned.contains(&lowered) => {
                let key_idx = batch.schema().index_of_name(&router.spec.key)?;
                let parts = split_batch(
                    &batch,
                    key_idx,
                    router.partitioner.as_ref(),
                    self.shared.shards.len(),
                )?;
                for (i, part) in parts.into_iter().enumerate() {
                    if part.num_rows() > 0 {
                        stage(i, part)?;
                    }
                }
            }
            Some(_) => {
                // Replicated table: every shard gets the same rows.
                for i in 0..self.shared.shards.len() {
                    stage(i, batch.clone())?;
                }
            }
            None => stage(0, batch)?,
        }
        if let Some(durable) = &self.shared.durable {
            if !staged.is_empty() {
                let mut vector = self.epoch_vector();
                for s in &staged {
                    vector.0[s.shard] = s.epoch;
                }
                let entries: Vec<StagedAppend<'_>> = staged
                    .iter()
                    .map(|s| StagedAppend {
                        shard: s.shard,
                        table: &s.table,
                        prev_segments: s.prev_segments,
                        epoch: s.epoch,
                    })
                    .collect();
                // On failure nothing publishes: readers keep the last
                // durable epoch, exactly what a restart would recover.
                durable.commit_append(&entries, &vector).map_err(log_err)?;
            }
        }
        let mut touched_shards = Vec::with_capacity(staged.len());
        let mut last = None;
        for s in staged {
            last = Some(self.shared.shards[s.shard].snapshots.publish(s.next));
            touched_shards.push(s.shard);
        }
        let snapshot = last.unwrap_or_else(|| self.shared.shards[0].snapshots.load());
        let outcome = AppendOutcome {
            snapshot,
            epochs: EpochVector(
                self.shared
                    .shards
                    .iter()
                    .map(|s| s.snapshots.epoch())
                    .collect(),
            ),
            table: lowered,
            touched_keys,
            touched_shards,
            rows,
        };
        self.maintain_subscriptions(&outcome);
        Ok(outcome)
    }

    /// The snapshot new dispatches currently see on shard 0 (the only
    /// shard of an unsharded service). See [`QueryService::shard_snapshot`]
    /// for the others.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.shards[0].snapshots.load()
    }

    /// The current snapshot of one shard.
    pub fn shard_snapshot(&self, shard: usize) -> Arc<Snapshot> {
        self.shared.shards[shard].snapshots.load()
    }

    /// Number of shards (1 for an unsharded service).
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The current per-shard epochs.
    pub fn epoch_vector(&self) -> EpochVector {
        EpochVector(
            self.shared
                .shards
                .iter()
                .map(|s| s.snapshots.epoch())
                .collect(),
        )
    }

    /// Total appends published across all shards — the dense publication
    /// epoch itself for an unsharded service.
    pub fn epoch(&self) -> u64 {
        self.epoch_vector().total()
    }

    /// Define a cleansing rule on every shard (schemas are identical, so
    /// validation agrees everywhere; a rule rejected on shard 0 is applied
    /// nowhere). Bumps the rule-set version so in-flight work coalescing
    /// never pairs queries across a rule change.
    /// On a durable service the new rules version is logged (and fsynced)
    /// to every shard's commit log before this returns, so a restart
    /// restores the same rule set.
    pub fn define_rule(&self, application: &str, rule_text: &str) -> Result<u64, Error> {
        // Serialize with appends so logged rules versions interleave with
        // epoch commits in a single order.
        let _serial = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        let mut id = 0;
        for shard in &self.shared.shards {
            id = shard.system.define_rule(application, rule_text)?;
        }
        let version = self.shared.rules_version.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(durable) = &self.shared.durable {
            let json = self.shared.coordinator().rules_to_json();
            durable.log_rules(version, &json).map_err(log_err)?;
        }
        Ok(id)
    }

    /// The coordinator's system (shard 0; the only system of an unsharded
    /// service): rules table, cache stats, exec options.
    pub fn system(&self) -> &DeferredCleansingSystem {
        self.shared.coordinator()
    }

    /// One shard's system, for inspecting shard-local state (e.g. its
    /// cleanse cache counters).
    pub fn shard_system(&self, shard: usize) -> &DeferredCleansingSystem {
        &self.shared.shards[shard].system
    }

    /// Lifetime counters so far.
    pub fn counters(&self) -> ServiceCounters {
        let s = &self.shared;
        ServiceCounters {
            admitted: s.admitted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            aborted: s.aborted.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            appends: s.appends.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
            subscriptions: s.subscriptions.load(Ordering::Relaxed),
            notifications: s.notifications.load(Ordering::Relaxed),
            delta_rows: s.deltas.load(Ordering::Relaxed),
            fallbacks: s.fallbacks.load(Ordering::Relaxed),
            dropped_for_lag: s.dropped_for_lag.load(Ordering::Relaxed),
        }
    }

    /// Fault injection for tests: make shard `shard`'s executor panic on
    /// its next dispatch, exercising the
    /// [`ServiceError::ShardUnavailable`] path.
    #[doc(hidden)]
    pub fn inject_shard_failure(&self, shard: usize) {
        self.shared.fail_shard.store(shard, Ordering::Relaxed);
    }

    /// Clear [`QueryService::inject_shard_failure`].
    #[doc(hidden)]
    pub fn clear_shard_failure(&self) {
        self.shared.fail_shard.store(usize::MAX, Ordering::Relaxed);
    }

    /// EXPLAIN ANALYZE through the service: runs inline (not queued)
    /// against the current snapshots under the request's budget, and
    /// prefixes the engine's report with the service comment line
    /// (`-- service: epoch=… queue_wait_us=… …`). Sharded services add a
    /// `-- shards:` header and one `-- shard i:` line per shard with its
    /// epoch, partial rows, and segment-prune counters.
    pub fn explain_analyze(&self, req: &QueryRequest) -> Result<String, ServiceError> {
        // `AS OF epoch E` runs the analysis against the historical
        // snapshots of global epoch E instead of the live ones.
        let (sql, snaps) = match split_as_of(&req.sql) {
            Some((stripped, epoch)) => (stripped, self.shared.historical_snapshots(epoch)?),
            None => (req.sql.clone(), self.shared.load_snapshots()),
        };
        let epochs = EpochVector(snaps.iter().map(|s| s.epoch).collect());
        let start = Instant::now();
        let mut budget = QueryBudget::unlimited();
        if let Some(d) = req.deadline.or(self.shared.config.default_deadline) {
            budget = budget.with_deadline(d);
        }
        if let Some(rows) = req.row_limit.or(self.shared.config.default_row_limit) {
            budget = budget.with_row_limit(rows);
        }
        match &self.shared.router {
            None => {
                let report = self
                    .shared
                    .coordinator()
                    .explain_snapshot(
                        &snaps[0].catalog,
                        &req.application,
                        &sql,
                        req.strategy,
                        true,
                        budget,
                    )
                    .map_err(ServiceError::from)?;
                let stats = ServiceStats {
                    snapshot_epoch: epochs.total(),
                    epochs,
                    queue_wait: Duration::ZERO,
                    exec_time: start.elapsed(),
                    worker: usize::MAX, // inline, not a pool worker
                    abort_reason: None,
                    coalesced: false,
                };
                Ok(format!("{}\n{}", stats.render_comment(), report.text()))
            }
            Some(router) => {
                let detail =
                    self.shared
                        .run_detail(&snaps, &req.application, &sql, req.strategy, budget)?;
                let stats = ServiceStats {
                    snapshot_epoch: epochs.total(),
                    epochs,
                    queue_wait: Duration::ZERO,
                    exec_time: start.elapsed(),
                    worker: usize::MAX,
                    abort_reason: None,
                    coalesced: false,
                };
                let mut out = String::new();
                out.push_str(&stats.render_comment());
                out.push('\n');
                out.push_str(&format!(
                    "-- shards: n={} mode={} partitioner={} key={} rows_merged={}\n",
                    self.shared.shards.len(),
                    detail.mode,
                    router.partitioner.name(),
                    router.spec.key,
                    detail.report.stats.shard_rows_merged,
                ));
                for o in &detail.per_shard {
                    out.push_str(&format!(
                        "-- shard {}: epoch={} rows={} segments_scanned={} segments_pruned={}\n",
                        o.shard, o.epoch, o.rows, o.segments_scanned, o.segments_pruned,
                    ));
                }
                // Decision trace + plans from a no-execute explain at the
                // coordinator (the execution above already paid analyze).
                let report = self
                    .shared
                    .coordinator()
                    .explain_snapshot(
                        &snaps[0].catalog,
                        &req.application,
                        &sql,
                        req.strategy,
                        false,
                        QueryBudget::unlimited(),
                    )
                    .map_err(ServiceError::from)?;
                out.push_str(&format!("-- result rows: {}\n", detail.batch.num_rows()));
                out.push_str(&report.text());
                Ok(out)
            }
        }
    }

    /// Run one query against the service as of global epoch `epoch`,
    /// reconstructed from the durable log: shard snapshots materialize at
    /// the per-shard epoch vector that global epoch committed, opening
    /// only the segment files those epochs contain. Runs inline (not
    /// queued) under the request's budget. Requires a durable service;
    /// the equivalent SQL form is an `AS OF epoch E` suffix on any
    /// submitted query.
    pub fn query_as_of(
        &self,
        req: &QueryRequest,
        epoch: u64,
    ) -> Result<QueryResponse, ServiceError> {
        // An AS OF clause in the SQL itself is stripped; the explicit
        // `epoch` argument wins.
        let sql = match split_as_of(&req.sql) {
            Some((stripped, _)) => stripped,
            None => req.sql.clone(),
        };
        let snaps = self.shared.historical_snapshots(epoch)?;
        let epochs = EpochVector(snaps.iter().map(|s| s.epoch).collect());
        let start = Instant::now();
        let mut budget = QueryBudget::unlimited();
        if let Some(d) = req.deadline.or(self.shared.config.default_deadline) {
            budget = budget.with_deadline(d);
        }
        if let Some(rows) = req.row_limit.or(self.shared.config.default_row_limit) {
            budget = budget.with_row_limit(rows);
        }
        let detail =
            self.shared
                .run_detail(&snaps, &req.application, &sql, req.strategy, budget)?;
        self.shared.completed.fetch_add(1, Ordering::Relaxed);
        Ok(QueryResponse {
            batch: detail.batch,
            report: detail.report,
            service: ServiceStats {
                snapshot_epoch: epochs.total(),
                epochs,
                queue_wait: Duration::ZERO,
                exec_time: start.elapsed(),
                worker: usize::MAX, // inline, not a pool worker
                abort_reason: None,
                coalesced: false,
            },
        })
    }

    /// Durability counters — `None` for a purely in-memory service.
    pub fn durable_stats(&self) -> Option<DurableStats> {
        self.shared.durable.as_ref().map(|d| d.stats())
    }

    /// Close the queue, drain outstanding jobs, and join the workers.
    /// Also runs on drop; calling it explicitly surfaces worker panics.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    while let Some(job) = shared.queue.pop() {
        let queue_wait = job.submitted.elapsed();
        // A top-level `AS OF epoch E` clause redirects the job to the
        // historical snapshots of global epoch E (durable services only);
        // everything else — budgets, coalescing, stats — is unchanged.
        let (sql, snaps) = match split_as_of(&job.req.sql) {
            Some((stripped, epoch)) => match shared.historical_snapshots(epoch) {
                Ok(snaps) => (stripped, snaps),
                Err(e) => {
                    shared.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(e));
                    continue;
                }
            },
            None => (job.req.sql.clone(), shared.load_snapshots()),
        };
        let epochs = EpochVector(snaps.iter().map(|s| s.epoch).collect());
        let budget = shared.budget_for(&job);
        let start = Instant::now();
        let key = FlightKey {
            epochs: epochs.clone(),
            rules_version: shared.rules_version.load(Ordering::Relaxed),
            application: job.req.application.clone(),
            sql: sql.clone(),
            strategy: strategy_tag(job.req.strategy),
        };
        let mut coalesced = false;
        // Pre-check: queue wait alone may have blown the deadline, and a
        // cancelled job should never start executing.
        let result = budget.check().map_err(ServiceError::from).and_then(|()| {
            match shared.join_or_lead(&key) {
                Role::Leader(flight) => {
                    let res = shared
                        .run_detail(
                            &snaps,
                            &job.req.application,
                            &sql,
                            job.req.strategy,
                            budget.clone(),
                        )
                        .map(|d| (d.batch, d.report));
                    flight.publish(res.as_ref().ok().cloned());
                    shared.release(&key);
                    res
                }
                Role::Follower(flight) => match flight.wait() {
                    // The shared result is only handed out if this job's own
                    // budget still allows a reply.
                    Some(shared_result) => {
                        coalesced = true;
                        budget
                            .check()
                            .map_err(ServiceError::from)
                            .map(|()| shared_result)
                    }
                    // Leader failed or aborted: outcomes of failures depend on
                    // the failing job's budget, so run independently.
                    None => shared
                        .run_detail(
                            &snaps,
                            &job.req.application,
                            &sql,
                            job.req.strategy,
                            budget.clone(),
                        )
                        .map(|d| (d.batch, d.report)),
                },
            }
        });
        if coalesced {
            shared.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        let stats = ServiceStats {
            snapshot_epoch: epochs.total(),
            epochs,
            queue_wait,
            exec_time: start.elapsed(),
            worker,
            abort_reason: None,
            coalesced,
        };
        let reply = match result {
            Ok((batch, report)) => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                Ok(QueryResponse {
                    batch,
                    report,
                    service: stats,
                })
            }
            Err(ServiceError::Aborted { reason, .. }) => {
                shared.aborted.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Aborted {
                    reason,
                    service: ServiceStats {
                        abort_reason: Some(reason),
                        ..stats
                    },
                })
            }
            Err(other) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
                Err(other)
            }
        };
        // The caller may have dropped its ticket; losing the reply is fine.
        let _ = job.reply.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::batch::schema_ref;
    use dc_relational::schema::{Field, Schema};
    use dc_relational::table::{Catalog, Table};
    use dc_relational::value::{DataType, Value};
    use dc_stream::StreamError;

    const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
        WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";

    fn reads_schema() -> dc_relational::schema::SchemaRef {
        schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
        ]))
    }

    fn row(epc: &str, rtime: i64, loc: &str) -> Vec<Value> {
        vec![Value::str(epc), Value::Int(rtime), Value::str(loc)]
    }

    fn service() -> QueryService {
        let catalog = Arc::new(Catalog::new());
        catalog.register(Table::new(
            "caser",
            Batch::from_rows(
                reads_schema(),
                &[
                    row("e1", 0, "shelf"),
                    row("e1", 60, "shelf"),
                    row("e2", 10, "dock"),
                ],
            )
            .unwrap(),
        ));
        let sys = DeferredCleansingSystem::with_catalog(catalog);
        sys.define_rule("app", DUP).unwrap();
        QueryService::start(
            sys,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        )
    }

    /// A larger catalog and a sharded service over it, plus an unsharded
    /// twin for equivalence checks.
    fn sharded_pair(shards: usize) -> (QueryService, QueryService) {
        let rows: Vec<Vec<Value>> = (0..240)
            .map(|i| {
                row(
                    &format!("e{}", i % 24),
                    i,
                    if i % 3 == 0 { "shelf" } else { "dock" },
                )
            })
            .collect();
        let build = || {
            let catalog = Arc::new(Catalog::new());
            catalog.register(Table::new(
                "caser",
                Batch::from_rows(reads_schema(), &rows).unwrap(),
            ));
            let sys = DeferredCleansingSystem::with_catalog(catalog);
            sys.define_rule("app", DUP).unwrap();
            sys
        };
        let sharded = QueryService::start_sharded(
            build(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
            ShardConfig::new(shards, "epc"),
        )
        .unwrap();
        let unsharded = QueryService::start(
            build(),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        (sharded, unsharded)
    }

    #[test]
    fn execute_answers_cleansed_and_reports_epoch() {
        let svc = service();
        let resp = svc
            .execute(QueryRequest::new("app", "select epc, rtime from caser"))
            .unwrap();
        assert_eq!(resp.batch.num_rows(), 2); // duplicate removed
        assert_eq!(resp.service.snapshot_epoch, 0);
        assert_eq!(resp.service.epochs, EpochVector(vec![0]));
        assert!(resp.service.abort_reason.is_none());
        assert_eq!(svc.counters().completed, 1);
    }

    #[test]
    fn append_publishes_new_epoch_and_queries_see_it() {
        let svc = service();
        let before = svc
            .execute(QueryRequest::new("app", "select epc from caser"))
            .unwrap();
        assert_eq!(before.service.snapshot_epoch, 0);

        let outcome = svc
            .append(
                "caser",
                Batch::from_rows(reads_schema(), &[row("e3", 700, "gate")]).unwrap(),
            )
            .unwrap();
        assert_eq!(outcome.snapshot.epoch, 1);
        assert_eq!(outcome.epochs.total(), 1);
        assert_eq!(outcome.table, "caser");
        assert_eq!(outcome.touched_keys, vec![Value::str("e3")]);
        assert_eq!(outcome.touched_shards, vec![0]);
        assert_eq!(svc.epoch(), 1);

        let after = svc
            .execute(QueryRequest::new("app", "select epc from caser"))
            .unwrap();
        assert_eq!(after.service.snapshot_epoch, 1);
        assert_eq!(after.batch.num_rows(), before.batch.num_rows() + 1);
        assert_eq!(svc.counters().appends, 1);
    }

    fn rows_of(batch: &Batch) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = (0..batch.num_rows()).map(|i| batch.row(i)).collect();
        rows.sort_by(|a, b| dc_relational::delta::cmp_rows(a, b));
        rows
    }

    #[test]
    fn subscribe_streams_incremental_deltas() {
        let svc = service();
        let sub = svc
            .subscribe(
                "app",
                "select epc, rtime from caser",
                crate::SubscribeOptions::default(),
            )
            .unwrap();
        assert_eq!(sub.mode(), "scoped");
        assert_eq!(sub.initial().num_rows(), 2); // duplicate removed
        assert_eq!(*sub.epochs(), EpochVector(vec![0]));

        // A new reading for e1, far outside the duplicate window.
        svc.append(
            "caser",
            Batch::from_rows(reads_schema(), &[row("e1", 700, "gate")]).unwrap(),
        )
        .unwrap();
        let cs = sub.try_next().unwrap().expect("one change set");
        assert_eq!(cs.epochs, EpochVector(vec![1]));
        assert_eq!(cs.inserted, vec![vec![Value::str("e1"), Value::Int(700)]]);
        assert!(cs.deleted.is_empty() && cs.updated.is_empty());
        assert!(!cs.stats.fallback);
        assert!(cs
            .render_comment()
            .starts_with("-- stream: epochs=1 mode=scoped ckeys=1"));

        // Folding the delta over the initial result reproduces a cold run.
        let mut folded: Vec<Vec<Value>> = (0..sub.initial().num_rows())
            .map(|i| sub.initial().row(i))
            .collect();
        cs.apply(&mut folded).unwrap();
        folded.sort_by(|a, b| dc_relational::delta::cmp_rows(a, b));
        let cold = svc
            .execute(QueryRequest::new("app", "select epc, rtime from caser"))
            .unwrap();
        assert_eq!(folded, rows_of(&cold.batch));

        let c = svc.counters();
        assert_eq!(c.subscriptions, 1);
        assert_eq!(c.notifications, 1);
        assert_eq!(c.delta_rows, 1);
        assert_eq!(c.fallbacks, 0);
        assert_eq!(c.dropped_for_lag, 0);
    }

    #[test]
    fn lagged_subscription_resyncs_and_resumes() {
        let svc = service();
        let sub = svc
            .subscribe(
                "app",
                "select epc, rtime from caser",
                crate::SubscribeOptions::default().with_queue_capacity(1),
            )
            .unwrap();
        for t in [700, 1400, 2100] {
            svc.append(
                "caser",
                Batch::from_rows(reads_schema(), &[row("e9", t, "gate")]).unwrap(),
            )
            .unwrap();
        }
        // Queued prefix first, then the gap error.
        assert!(sub.try_next().unwrap().is_some());
        assert!(matches!(
            sub.try_next().unwrap_err(),
            StreamError::Lagged { missed } if missed >= 1
        ));
        assert!(svc.counters().dropped_for_lag >= 1);

        // Resync restarts the feed from a fresh full result.
        let (base, epochs) = svc.resync(&sub).unwrap();
        assert_eq!(epochs, EpochVector(vec![3]));
        let cold = svc
            .execute(QueryRequest::new("app", "select epc, rtime from caser"))
            .unwrap();
        assert_eq!(rows_of(&base), rows_of(&cold.batch));
        svc.append(
            "caser",
            Batch::from_rows(reads_schema(), &[row("e9", 2800, "gate")]).unwrap(),
        )
        .unwrap();
        let cs = sub.try_next().unwrap().expect("feed resumed");
        assert_eq!(cs.epochs, EpochVector(vec![4]));
        assert_eq!(cs.inserted, vec![vec![Value::str("e9"), Value::Int(2800)]]);
    }

    #[test]
    fn unsubscribe_stops_notifications() {
        let svc = service();
        let sub = svc
            .subscribe(
                "app",
                "select epc from caser",
                crate::SubscribeOptions::default(),
            )
            .unwrap();
        svc.unsubscribe(&sub);
        svc.append(
            "caser",
            Batch::from_rows(reads_schema(), &[row("e3", 700, "gate")]).unwrap(),
        )
        .unwrap();
        assert_eq!(svc.counters().notifications, 0);
        assert!(matches!(sub.try_next().unwrap_err(), StreamError::Closed));
    }

    #[test]
    fn cancelled_ticket_aborts_without_rows() {
        let svc = service();
        let ticket = svc
            .submit(QueryRequest::new("app", "select epc from caser"))
            .unwrap();
        ticket.cancel();
        // The pre-set token either catches the job before dispatch or at
        // the first operator boundary — both must yield Aborted, not rows.
        match ticket.wait() {
            Ok(_) => {
                // Raced: the query finished before the flag was observed.
                // Acceptable only if cancel landed after completion; in
                // practice with 2 workers this is rare but not impossible.
            }
            Err(ServiceError::Aborted { reason, service }) => {
                assert_eq!(reason, AbortReason::Cancelled);
                assert_eq!(service.abort_reason, Some(AbortReason::Cancelled));
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn overload_rejects_with_capacity() {
        let catalog = Arc::new(Catalog::new());
        catalog.register(Table::new(
            "caser",
            Batch::from_rows(reads_schema(), &[row("e1", 0, "shelf")]).unwrap(),
        ));
        let sys = DeferredCleansingSystem::with_catalog(catalog);
        let svc = QueryService::start(
            sys,
            ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                ..ServiceConfig::default()
            },
        );
        // Saturate: submissions beyond worker + queue slots must bounce.
        let tickets: Vec<_> = (0..16)
            .map(|_| svc.submit(QueryRequest::new("app", "select epc from caser")))
            .collect();
        let rejected = tickets.iter().filter(|t| t.is_err()).count();
        for t in &tickets {
            if let Err(e) = t {
                assert!(matches!(e, ServiceError::Overloaded { capacity: 1 }));
            }
        }
        // Everyone admitted still gets an answer.
        for t in tickets.into_iter().flatten() {
            t.wait().unwrap();
        }
        assert_eq!(svc.counters().rejected, rejected as u64);
        assert!(svc.counters().admitted >= 1);
    }

    #[test]
    fn concurrent_duplicates_coalesce_and_match() {
        let catalog = Arc::new(Catalog::new());
        let rows: Vec<Vec<Value>> = (0..512)
            .map(|i| {
                row(
                    &format!("e{}", i % 64),
                    i,
                    if i % 2 == 0 { "shelf" } else { "dock" },
                )
            })
            .collect();
        catalog.register(Table::new(
            "caser",
            Batch::from_rows(reads_schema(), &rows).unwrap(),
        ));
        let sys = DeferredCleansingSystem::with_catalog(catalog);
        sys.define_rule("app", DUP).unwrap();
        let svc = QueryService::start(
            sys,
            ServiceConfig {
                workers: 4,
                queue_capacity: 32,
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<_> = (0..16)
            .map(|_| {
                svc.submit(QueryRequest::new("app", "select epc, rtime from caser"))
                    .unwrap()
            })
            .collect();
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        // Coalesced or not, every reply is byte-identical.
        let expected = responses[0].batch.sorted_rows();
        for r in &responses {
            assert_eq!(r.batch.sorted_rows(), expected);
        }
        // With 4 workers draining 16 identical queued jobs, some must have
        // overlapped with a leader's execution.
        assert!(
            svc.counters().coalesced > 0,
            "expected at least one coalesced reply: {:?}",
            svc.counters()
        );
        assert!(responses.iter().any(|r| r.service.coalesced));
    }

    #[test]
    fn explain_analyze_carries_service_line() {
        let svc = service();
        let text = svc
            .explain_analyze(&QueryRequest::new("app", "select epc from caser"))
            .unwrap();
        assert!(text.starts_with("-- service: epoch=0 "), "got: {text}");
        assert!(text.contains("-- chosen:"));
        assert!(text.contains("rows_out="));
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let svc = service();
        let shared = Arc::clone(&svc.shared);
        svc.shutdown();
        assert!(matches!(
            shared.queue.try_push(Job {
                req: QueryRequest::new("app", "select epc from caser"),
                submitted: Instant::now(),
                cancel: Arc::new(AtomicBool::new(false)),
                reply: mpsc::sync_channel(1).0,
            }),
            Err(PushError::Closed(_))
        ));
    }

    #[test]
    fn sharded_service_matches_unsharded() {
        for shards in [1, 2, 4] {
            let (sharded, unsharded) = sharded_pair(shards);
            assert_eq!(sharded.shard_count(), shards);
            for sql in [
                "select epc, rtime from caser",
                "select epc, count(*) as n from caser group by epc",
                "select count(*) as n, sum(rtime) as s, avg(rtime) as a from caser",
                "select epc, rtime from caser where rtime < 100 order by rtime, epc",
            ] {
                let a = sharded.execute(QueryRequest::new("app", sql)).unwrap();
                let b = unsharded.execute(QueryRequest::new("app", sql)).unwrap();
                assert_eq!(
                    a.batch.sorted_rows(),
                    b.batch.sorted_rows(),
                    "shards={shards} sql={sql}"
                );
                assert_eq!(a.service.epochs.shards(), shards);
            }
            // ORDER BY reproduces the exact global order, not just the set.
            let sql = "select epc, rtime from caser order by rtime, epc";
            let a = sharded.execute(QueryRequest::new("app", sql)).unwrap();
            let b = unsharded.execute(QueryRequest::new("app", sql)).unwrap();
            let rows = |batch: &Batch| -> Vec<Vec<Value>> {
                (0..batch.num_rows()).map(|i| batch.row(i)).collect()
            };
            assert_eq!(rows(&a.batch), rows(&b.batch), "shards={shards}");
        }
    }

    #[test]
    fn sharded_scatter_reports_merge_counters() {
        let (sharded, _) = sharded_pair(4);
        let resp = sharded
            .execute(QueryRequest::new("app", "select epc, rtime from caser"))
            .unwrap();
        assert!(
            resp.report.stats.shard_rows_merged > 0,
            "scatter runs count merged partials: {:?}",
            resp.report.stats
        );
        assert!(resp
            .report
            .notes
            .iter()
            .any(|n| n.starts_with("scatter: 4 shards")));
    }

    #[test]
    fn sharded_append_routes_by_key() {
        let (sharded, unsharded) = sharded_pair(3);
        let extra: Vec<Vec<Value>> = (0..30)
            .map(|i| row(&format!("e{}", i % 24), 1000 + i, "gate"))
            .collect();
        let batch = Batch::from_rows(reads_schema(), &extra).unwrap();
        sharded.append("caser", batch.clone()).unwrap();
        unsharded.append("caser", batch).unwrap();
        // Epochs advanced on the shards that received rows; total rows match.
        assert!(sharded.epoch() >= 1);
        assert_eq!(sharded.counters().appends, 1);
        let total: usize = (0..sharded.shard_count())
            .map(|i| {
                sharded
                    .shard_snapshot(i)
                    .catalog
                    .get("caser")
                    .unwrap()
                    .num_rows()
            })
            .sum();
        assert_eq!(total, 240 + 30);
        let a = sharded
            .execute(QueryRequest::new("app", "select epc, rtime from caser"))
            .unwrap();
        let b = unsharded
            .execute(QueryRequest::new("app", "select epc, rtime from caser"))
            .unwrap();
        assert_eq!(a.batch.sorted_rows(), b.batch.sorted_rows());
    }

    #[test]
    fn sharded_rule_definition_broadcasts() {
        let (sharded, unsharded) = sharded_pair(2);
        // A second rule tightens cleansing on both services identically.
        const RULE2: &str = "DEFINE dup2 ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
            WHERE B.rtime - A.rtime < 1 mins ACTION DELETE B";
        sharded.define_rule("app", RULE2).unwrap();
        unsharded.define_rule("app", RULE2).unwrap();
        let a = sharded
            .execute(QueryRequest::new("app", "select epc, rtime from caser"))
            .unwrap();
        let b = unsharded
            .execute(QueryRequest::new("app", "select epc, rtime from caser"))
            .unwrap();
        assert_eq!(a.batch.sorted_rows(), b.batch.sorted_rows());
    }

    #[test]
    fn shard_failure_is_typed() {
        let (sharded, _) = sharded_pair(3);
        sharded.inject_shard_failure(1);
        let err = sharded
            .execute(QueryRequest::new("app", "select epc, rtime from caser"))
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::ShardUnavailable { shard: 1 }),
            "got: {err}"
        );
        assert_eq!(sharded.counters().failed, 1);
        // Recovery: clearing the fault restores service.
        sharded.clear_shard_failure();
        sharded
            .execute(QueryRequest::new("app", "select epc, rtime from caser"))
            .unwrap();
    }

    #[test]
    fn sharded_explain_analyze_carries_shard_lines() {
        let (sharded, _) = sharded_pair(2);
        let text = sharded
            .explain_analyze(&QueryRequest::new("app", "select epc, rtime from caser"))
            .unwrap();
        assert!(text.starts_with("-- service: epoch=0 "), "got: {text}");
        assert!(
            text.contains("-- shards: n=2 mode=scatter partitioner=hash key=epc"),
            "got: {text}"
        );
        assert!(text.contains("-- shard 0: epoch=0 rows="), "got: {text}");
        assert!(text.contains("-- shard 1: epoch=0 rows="), "got: {text}");
        assert!(text.contains("-- chosen:"));
    }

    #[test]
    fn epoch_vector_renders_and_totals() {
        let v = EpochVector(vec![0, 3, 1, 2]);
        assert_eq!(v.to_string(), "0.3.1.2");
        assert_eq!(v.total(), 6);
        assert_eq!(v.shards(), 4);
    }
}
