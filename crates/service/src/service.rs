//! The query service: N workers over immutable snapshots, one ingest path.
//!
//! Life of a query:
//!
//! 1. [`QueryService::submit`] wraps the request in a job, stamps the submit
//!    time, and offers it to the bounded admission queue. A full queue is an
//!    immediate [`ServiceError::Overloaded`] — the service sheds load instead
//!    of stacking latency.
//! 2. A worker pops the job, loads the *current* snapshot once, and runs the
//!    full rewrite + execute pipeline against that frozen epoch under a
//!    [`QueryBudget`]. Deadlines are anchored at submit time, so queue wait
//!    counts against the budget.
//! 3. The reply — rows + rewrite report + [`ServiceStats`] — travels back
//!    through the job's channel; [`Ticket::wait`] hands it to the caller.
//!
//! Ingest ([`QueryService::append`]) serializes on its own lock, builds the
//! next catalog overlay *outside* the publication cell, appends into it, and
//! publishes with a pointer swap. In-flight queries keep their epoch; the
//! next dispatch sees the new one.
//!
//! Workers also **coalesce identical work**: queries with the same snapshot
//! epoch, rule-set version, application, SQL, and strategy are guaranteed to
//! produce byte-identical results, so concurrent duplicates share a single
//! execution — the first dispatcher leads, the rest wait on its in-flight
//! slot and clone the result (their own budgets are re-checked before the
//! reply, so deadlines and cancellation still bite). A leader failure is
//! never shared: followers fall back to executing independently.

use crate::queue::{Bounded, PushError};
use crate::snapshot::{Snapshot, SnapshotCell};
use dc_core::{AbortReason, DeferredCleansingSystem, QueryBudget, QueryReport, Strategy};
use dc_relational::batch::Batch;
use dc_relational::error::Error;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing and default-budget knobs for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads answering queries (minimum 1).
    pub workers: usize,
    /// Admission queue depth; submissions beyond it are rejected with
    /// [`ServiceError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied to requests that don't set their own.
    pub default_deadline: Option<Duration>,
    /// Row budget applied to requests that don't set their own.
    pub default_row_limit: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline: None,
            default_row_limit: None,
        }
    }
}

/// One query to run: application context, SQL, and per-query budget
/// overrides.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Application whose cleansing rules apply.
    pub application: String,
    /// The SQL text.
    pub sql: String,
    /// Rewrite strategy (default [`Strategy::Auto`]).
    pub strategy: Strategy,
    /// Deadline measured from **submit** time — queue wait counts.
    pub deadline: Option<Duration>,
    /// Abort once the executor has emitted this many rows.
    pub row_limit: Option<u64>,
}

impl QueryRequest {
    /// A request with the cost-based default strategy and no budget.
    pub fn new(application: impl Into<String>, sql: impl Into<String>) -> Self {
        QueryRequest {
            application: application.into(),
            sql: sql.into(),
            strategy: Strategy::Auto,
            deadline: None,
            row_limit: None,
        }
    }

    /// Pin the rewrite strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set a deadline, measured from submit time.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set a row budget.
    pub fn with_row_limit(mut self, rows: u64) -> Self {
        self.row_limit = Some(rows);
        self
    }
}

/// Per-query service-side observations, attached to every reply (and to
/// [`ServiceError::Aborted`], so a timed-out caller still learns where the
/// time went).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Epoch of the snapshot the query ran against.
    pub snapshot_epoch: u64,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: Duration,
    /// Time from dispatch to reply (rewrite + execution).
    pub exec_time: Duration,
    /// Index of the worker that ran the query.
    pub worker: usize,
    /// Why the query aborted, when it did.
    pub abort_reason: Option<AbortReason>,
    /// The reply was cloned from an identical concurrent query's execution
    /// instead of being computed by this worker.
    pub coalesced: bool,
}

impl ServiceStats {
    /// One SQL-comment line for EXPLAIN ANALYZE output, e.g.
    /// `-- service: epoch=3 queue_wait_us=12 exec_us=480 worker=1`.
    pub fn render_comment(&self) -> String {
        let mut line = format!(
            "-- service: epoch={} queue_wait_us={} exec_us={} worker={}",
            self.snapshot_epoch,
            self.queue_wait.as_micros(),
            self.exec_time.as_micros(),
            self.worker
        );
        if self.coalesced {
            line.push_str(" coalesced");
        }
        if let Some(r) = self.abort_reason {
            line.push_str(&format!(" aborted={r}"));
        }
        line
    }
}

/// A completed query: rows, the rewrite/execution report, and what the
/// service observed along the way.
#[derive(Debug)]
pub struct QueryResponse {
    /// Result rows.
    pub batch: Batch,
    /// Rewrite decision + executor counters (see [`QueryReport`]).
    pub report: QueryReport,
    /// Queue wait, snapshot epoch, worker.
    pub service: ServiceStats,
}

/// Everything that can go wrong between submit and reply.
#[derive(Debug)]
pub enum ServiceError {
    /// The admission queue was full; try again later.
    Overloaded {
        /// The configured queue capacity the submission bounced off.
        capacity: usize,
    },
    /// The query tripped its budget: no rows were returned, and the
    /// service stats say which checkpoint fired.
    Aborted {
        /// Which budget fired.
        reason: AbortReason,
        /// Service-side timings for the aborted attempt.
        service: ServiceStats,
    },
    /// The engine rejected or failed the query (parse, plan, execution).
    Engine(Error),
    /// The service is shutting down; the queue no longer accepts work.
    ShutDown,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { capacity } => {
                write!(f, "service overloaded: admission queue full ({capacity})")
            }
            ServiceError::Aborted { reason, service } => {
                write!(
                    f,
                    "query aborted ({reason}) after {}us on epoch {}",
                    service.exec_time.as_micros(),
                    service.snapshot_epoch
                )
            }
            ServiceError::Engine(e) => write!(f, "{e}"),
            ServiceError::ShutDown => write!(f, "service shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<Error> for ServiceError {
    fn from(e: Error) -> Self {
        match e {
            Error::Aborted(reason) => ServiceError::Aborted {
                reason,
                service: ServiceStats {
                    snapshot_epoch: 0,
                    queue_wait: Duration::ZERO,
                    exec_time: Duration::ZERO,
                    worker: 0,
                    abort_reason: Some(reason),
                    coalesced: false,
                },
            },
            other => ServiceError::Engine(other),
        }
    }
}

impl ServiceError {
    /// The abort reason, when this is a budget abort.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match self {
            ServiceError::Aborted { reason, .. } => Some(*reason),
            _ => None,
        }
    }
}

/// Lifetime counters of one service instance (monotone, relaxed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Jobs accepted into the queue.
    pub admitted: u64,
    /// Submissions bounced for a full queue.
    pub rejected: u64,
    /// Queries that returned rows.
    pub completed: u64,
    /// Queries that tripped a budget.
    pub aborted: u64,
    /// Queries that failed in the engine.
    pub failed: u64,
    /// Batches appended (== current epoch).
    pub appends: u64,
    /// Queries answered by cloning an identical concurrent query's result
    /// instead of executing (see the module docs on work coalescing).
    pub coalesced: u64,
}

struct Job {
    req: QueryRequest,
    submitted: Instant,
    cancel: Arc<AtomicBool>,
    reply: SyncSender<Result<QueryResponse, ServiceError>>,
}

/// Handle to an admitted query: await the reply, or cancel it.
pub struct Ticket {
    cancel: Arc<AtomicBool>,
    rx: Receiver<Result<QueryResponse, ServiceError>>,
}

impl Ticket {
    /// Block until the query finishes (or aborts). Consumes the ticket.
    pub fn wait(self) -> Result<QueryResponse, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::ShutDown))
    }

    /// Request cooperative cancellation. The running query observes the
    /// flag at its next operator boundary and aborts with
    /// [`AbortReason::Cancelled`]; a queued query aborts at dispatch.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// The cancellation token, for wiring into external timeouts.
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }
}

/// Identity of an execution whose result is a pure function of service
/// state: two jobs with equal keys must produce byte-identical batches, so
/// their executions may be shared.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FlightKey {
    epoch: u64,
    rules_version: u64,
    application: String,
    sql: String,
    strategy: &'static str,
}

fn strategy_tag(s: Strategy) -> &'static str {
    match s {
        Strategy::Auto => "Auto",
        Strategy::Expanded => "Expanded",
        Strategy::JoinBack => "JoinBack",
        _ => "Other",
    }
}

/// One in-flight shared execution: the leader publishes, followers wait.
struct Flight {
    slot: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    Running,
    /// The leader failed or aborted — never shared; followers re-execute
    /// under their own budgets.
    NotShared,
    Done(Box<(Batch, QueryReport)>),
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(FlightState::Running),
            done: Condvar::new(),
        }
    }

    /// Block until the leader publishes; `None` means run it yourself.
    fn wait(&self) -> Option<(Batch, QueryReport)> {
        let mut s = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        while matches!(*s, FlightState::Running) {
            s = self.done.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        match &*s {
            FlightState::Done(shared) => Some((**shared).clone()),
            _ => None,
        }
    }

    fn publish(&self, result: Option<(Batch, QueryReport)>) {
        let mut s = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *s = match result {
            Some(pair) => FlightState::Done(Box::new(pair)),
            None => FlightState::NotShared,
        };
        self.done.notify_all();
    }
}

enum Role {
    Leader(Arc<Flight>),
    Follower(Arc<Flight>),
}

struct Shared {
    system: DeferredCleansingSystem,
    snapshots: SnapshotCell,
    queue: Bounded<Job>,
    config: ServiceConfig,
    inflight: Mutex<HashMap<FlightKey, Arc<Flight>>>,
    rules_version: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    aborted: AtomicU64,
    failed: AtomicU64,
    appends: AtomicU64,
    coalesced: AtomicU64,
}

impl Shared {
    /// The effective budget for a job: per-request overrides, else service
    /// defaults; deadline anchored at submit so queue wait is charged.
    fn budget_for(&self, job: &Job) -> QueryBudget {
        let mut budget = QueryBudget::unlimited().with_cancel(Arc::clone(&job.cancel));
        if let Some(d) = job.req.deadline.or(self.config.default_deadline) {
            budget = budget.with_deadline_at(job.submitted + d);
        }
        if let Some(rows) = job.req.row_limit.or(self.config.default_row_limit) {
            budget = budget.with_row_limit(rows);
        }
        budget
    }

    /// Join an identical in-flight execution as a follower, or register a
    /// new one and lead it.
    fn join_or_lead(&self, key: &FlightKey) -> Role {
        let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(key) {
            Some(f) => Role::Follower(Arc::clone(f)),
            None => {
                let f = Arc::new(Flight::new());
                map.insert(key.clone(), Arc::clone(&f));
                Role::Leader(f)
            }
        }
    }

    /// Remove a led flight so later duplicates execute afresh (results are
    /// only shared between *concurrent* queries; nothing is memoized across
    /// time).
    fn release(&self, key: &FlightKey) {
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key);
    }

    /// The full rewrite + execute pipeline for one job against `snap`.
    fn run(
        &self,
        snap: &Snapshot,
        job: &Job,
        budget: QueryBudget,
    ) -> Result<(Batch, QueryReport), Error> {
        self.system.query_snapshot(
            &snap.catalog,
            &job.req.application,
            &job.req.sql,
            job.req.strategy,
            budget,
        )
    }
}

/// A concurrent query service over one [`DeferredCleansingSystem`].
///
/// Readers (the worker pool) answer rewritten queries against immutable
/// epoch-stamped snapshots; a single ingest path appends and publishes new
/// epochs without ever blocking a reader on append work. Dropping the
/// service closes the queue, drains queued jobs, and joins the workers.
pub struct QueryService {
    shared: Arc<Shared>,
    ingest: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Take ownership of `system`, freeze its current catalog as epoch 0,
    /// and start the worker pool.
    pub fn start(system: DeferredCleansingSystem, config: ServiceConfig) -> Self {
        let epoch0 = Arc::new(system.catalog().overlay());
        let shared = Arc::new(Shared {
            system,
            snapshots: SnapshotCell::new(epoch0),
            queue: Bounded::new(config.queue_capacity),
            config,
            inflight: Mutex::new(HashMap::new()),
            rules_version: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dc-service-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn service worker")
            })
            .collect();
        QueryService {
            shared,
            ingest: Mutex::new(()),
            workers,
        }
    }

    /// [`QueryService::start`] with default sizing.
    pub fn with_defaults(system: DeferredCleansingSystem) -> Self {
        Self::start(system, ServiceConfig::default())
    }

    /// Submit a query for asynchronous execution. Rejects immediately when
    /// the admission queue is full.
    pub fn submit(&self, req: QueryRequest) -> Result<Ticket, ServiceError> {
        let cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::sync_channel(1);
        let job = Job {
            req,
            submitted: Instant::now(),
            cancel: Arc::clone(&cancel),
            reply: tx,
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(Ticket { cancel, rx })
            }
            Err(PushError::Full(_)) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Overloaded {
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServiceError::ShutDown),
        }
    }

    /// Submit and wait: the synchronous convenience path.
    pub fn execute(&self, req: QueryRequest) -> Result<QueryResponse, ServiceError> {
        self.submit(req)?.wait()
    }

    /// Append `batch` to `table` and publish the next epoch. All the append
    /// work (row concatenation, segment sealing, index extension, cleanse
    /// cache invalidation) happens on a private overlay outside the
    /// publication cell — readers never wait on it. Returns the published
    /// snapshot.
    pub fn append(&self, table: &str, batch: Batch) -> Result<Arc<Snapshot>, Error> {
        let _serial = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        let current = self.shared.snapshots.load();
        let next = current.catalog.overlay();
        next.append(table, batch)?;
        self.shared.appends.fetch_add(1, Ordering::Relaxed);
        Ok(self.shared.snapshots.publish(next))
    }

    /// The snapshot new dispatches currently see.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.snapshots.load()
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.snapshots.epoch()
    }

    /// Define a cleansing rule (passes through to the system; rules are
    /// validated against the *live* catalog, which shares table schemas
    /// with every snapshot). Bumps the rule-set version so in-flight work
    /// coalescing never pairs queries across a rule change.
    pub fn define_rule(&self, application: &str, rule_text: &str) -> Result<u64, Error> {
        let id = self.shared.system.define_rule(application, rule_text)?;
        self.shared.rules_version.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// The wrapped system (rules table, cache stats, exec options).
    pub fn system(&self) -> &DeferredCleansingSystem {
        &self.shared.system
    }

    /// Lifetime counters so far.
    pub fn counters(&self) -> ServiceCounters {
        let s = &self.shared;
        ServiceCounters {
            admitted: s.admitted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            aborted: s.aborted.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            appends: s.appends.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
        }
    }

    /// EXPLAIN ANALYZE through the service: runs inline (not queued)
    /// against the current snapshot under the request's budget, and
    /// prefixes the engine's report with the service comment line
    /// (`-- service: epoch=… queue_wait_us=… …`).
    pub fn explain_analyze(&self, req: &QueryRequest) -> Result<String, ServiceError> {
        let snap = self.shared.snapshots.load();
        let start = Instant::now();
        let mut budget = QueryBudget::unlimited();
        if let Some(d) = req.deadline.or(self.shared.config.default_deadline) {
            budget = budget.with_deadline(d);
        }
        if let Some(rows) = req.row_limit.or(self.shared.config.default_row_limit) {
            budget = budget.with_row_limit(rows);
        }
        let report = self
            .shared
            .system
            .explain_snapshot(
                &snap.catalog,
                &req.application,
                &req.sql,
                req.strategy,
                true,
                budget,
            )
            .map_err(ServiceError::from)?;
        let stats = ServiceStats {
            snapshot_epoch: snap.epoch,
            queue_wait: Duration::ZERO,
            exec_time: start.elapsed(),
            worker: usize::MAX, // inline, not a pool worker
            abort_reason: None,
            coalesced: false,
        };
        Ok(format!("{}\n{}", stats.render_comment(), report.text()))
    }

    /// Close the queue, drain outstanding jobs, and join the workers.
    /// Also runs on drop; calling it explicitly surfaces worker panics.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    while let Some(job) = shared.queue.pop() {
        let queue_wait = job.submitted.elapsed();
        let snap = shared.snapshots.load();
        let budget = shared.budget_for(&job);
        let start = Instant::now();
        let key = FlightKey {
            epoch: snap.epoch,
            rules_version: shared.rules_version.load(Ordering::Relaxed),
            application: job.req.application.clone(),
            sql: job.req.sql.clone(),
            strategy: strategy_tag(job.req.strategy),
        };
        let mut coalesced = false;
        // Pre-check: queue wait alone may have blown the deadline, and a
        // cancelled job should never start executing.
        let result = budget
            .check()
            .and_then(|()| match shared.join_or_lead(&key) {
                Role::Leader(flight) => {
                    let res = shared.run(&snap, &job, budget.clone());
                    flight.publish(res.as_ref().ok().cloned());
                    shared.release(&key);
                    res
                }
                Role::Follower(flight) => match flight.wait() {
                    // The shared result is only handed out if this job's own
                    // budget still allows a reply.
                    Some(shared_result) => {
                        coalesced = true;
                        budget.check().map(|()| shared_result)
                    }
                    // Leader failed or aborted: outcomes of failures depend on
                    // the failing job's budget, so run independently.
                    None => shared.run(&snap, &job, budget.clone()),
                },
            });
        if coalesced {
            shared.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        let stats = ServiceStats {
            snapshot_epoch: snap.epoch,
            queue_wait,
            exec_time: start.elapsed(),
            worker,
            abort_reason: None,
            coalesced,
        };
        let reply = match result {
            Ok((batch, report)) => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                Ok(QueryResponse {
                    batch,
                    report,
                    service: stats,
                })
            }
            Err(Error::Aborted(reason)) => {
                shared.aborted.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Aborted {
                    reason,
                    service: ServiceStats {
                        abort_reason: Some(reason),
                        ..stats
                    },
                })
            }
            Err(e) => {
                shared.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Engine(e))
            }
        };
        // The caller may have dropped its ticket; losing the reply is fine.
        let _ = job.reply.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::batch::schema_ref;
    use dc_relational::schema::{Field, Schema};
    use dc_relational::table::{Catalog, Table};
    use dc_relational::value::{DataType, Value};

    const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
        WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";

    fn reads_schema() -> dc_relational::schema::SchemaRef {
        schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
        ]))
    }

    fn row(epc: &str, rtime: i64, loc: &str) -> Vec<Value> {
        vec![Value::str(epc), Value::Int(rtime), Value::str(loc)]
    }

    fn service() -> QueryService {
        let catalog = Arc::new(Catalog::new());
        catalog.register(Table::new(
            "caser",
            Batch::from_rows(
                reads_schema(),
                &[
                    row("e1", 0, "shelf"),
                    row("e1", 60, "shelf"),
                    row("e2", 10, "dock"),
                ],
            )
            .unwrap(),
        ));
        let sys = DeferredCleansingSystem::with_catalog(catalog);
        sys.define_rule("app", DUP).unwrap();
        QueryService::start(
            sys,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn execute_answers_cleansed_and_reports_epoch() {
        let svc = service();
        let resp = svc
            .execute(QueryRequest::new("app", "select epc, rtime from caser"))
            .unwrap();
        assert_eq!(resp.batch.num_rows(), 2); // duplicate removed
        assert_eq!(resp.service.snapshot_epoch, 0);
        assert!(resp.service.abort_reason.is_none());
        assert_eq!(svc.counters().completed, 1);
    }

    #[test]
    fn append_publishes_new_epoch_and_queries_see_it() {
        let svc = service();
        let before = svc
            .execute(QueryRequest::new("app", "select epc from caser"))
            .unwrap();
        assert_eq!(before.service.snapshot_epoch, 0);

        let snap = svc
            .append(
                "caser",
                Batch::from_rows(reads_schema(), &[row("e3", 700, "gate")]).unwrap(),
            )
            .unwrap();
        assert_eq!(snap.epoch, 1);
        assert_eq!(svc.epoch(), 1);

        let after = svc
            .execute(QueryRequest::new("app", "select epc from caser"))
            .unwrap();
        assert_eq!(after.service.snapshot_epoch, 1);
        assert_eq!(after.batch.num_rows(), before.batch.num_rows() + 1);
        assert_eq!(svc.counters().appends, 1);
    }

    #[test]
    fn cancelled_ticket_aborts_without_rows() {
        let svc = service();
        let ticket = svc
            .submit(QueryRequest::new("app", "select epc from caser"))
            .unwrap();
        ticket.cancel();
        // The pre-set token either catches the job before dispatch or at
        // the first operator boundary — both must yield Aborted, not rows.
        match ticket.wait() {
            Ok(_) => {
                // Raced: the query finished before the flag was observed.
                // Acceptable only if cancel landed after completion; in
                // practice with 2 workers this is rare but not impossible.
            }
            Err(ServiceError::Aborted { reason, service }) => {
                assert_eq!(reason, AbortReason::Cancelled);
                assert_eq!(service.abort_reason, Some(AbortReason::Cancelled));
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn overload_rejects_with_capacity() {
        let catalog = Arc::new(Catalog::new());
        catalog.register(Table::new(
            "caser",
            Batch::from_rows(reads_schema(), &[row("e1", 0, "shelf")]).unwrap(),
        ));
        let sys = DeferredCleansingSystem::with_catalog(catalog);
        let svc = QueryService::start(
            sys,
            ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                ..ServiceConfig::default()
            },
        );
        // Saturate: submissions beyond worker + queue slots must bounce.
        let tickets: Vec<_> = (0..16)
            .map(|_| svc.submit(QueryRequest::new("app", "select epc from caser")))
            .collect();
        let rejected = tickets.iter().filter(|t| t.is_err()).count();
        for t in &tickets {
            if let Err(e) = t {
                assert!(matches!(e, ServiceError::Overloaded { capacity: 1 }));
            }
        }
        // Everyone admitted still gets an answer.
        for t in tickets.into_iter().flatten() {
            t.wait().unwrap();
        }
        assert_eq!(svc.counters().rejected, rejected as u64);
        assert!(svc.counters().admitted >= 1);
    }

    #[test]
    fn concurrent_duplicates_coalesce_and_match() {
        let catalog = Arc::new(Catalog::new());
        let rows: Vec<Vec<Value>> = (0..512)
            .map(|i| {
                row(
                    &format!("e{}", i % 64),
                    i,
                    if i % 2 == 0 { "shelf" } else { "dock" },
                )
            })
            .collect();
        catalog.register(Table::new(
            "caser",
            Batch::from_rows(reads_schema(), &rows).unwrap(),
        ));
        let sys = DeferredCleansingSystem::with_catalog(catalog);
        sys.define_rule("app", DUP).unwrap();
        let svc = QueryService::start(
            sys,
            ServiceConfig {
                workers: 4,
                queue_capacity: 32,
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<_> = (0..16)
            .map(|_| {
                svc.submit(QueryRequest::new("app", "select epc, rtime from caser"))
                    .unwrap()
            })
            .collect();
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        // Coalesced or not, every reply is byte-identical.
        let expected = responses[0].batch.sorted_rows();
        for r in &responses {
            assert_eq!(r.batch.sorted_rows(), expected);
        }
        // With 4 workers draining 16 identical queued jobs, some must have
        // overlapped with a leader's execution.
        assert!(
            svc.counters().coalesced > 0,
            "expected at least one coalesced reply: {:?}",
            svc.counters()
        );
        assert!(responses.iter().any(|r| r.service.coalesced));
    }

    #[test]
    fn explain_analyze_carries_service_line() {
        let svc = service();
        let text = svc
            .explain_analyze(&QueryRequest::new("app", "select epc from caser"))
            .unwrap();
        assert!(text.starts_with("-- service: epoch=0 "), "got: {text}");
        assert!(text.contains("-- chosen:"));
        assert!(text.contains("rows_out="));
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let svc = service();
        let shared = Arc::clone(&svc.shared);
        svc.shutdown();
        assert!(matches!(
            shared.queue.try_push(Job {
                req: QueryRequest::new("app", "select epc from caser"),
                submitted: Instant::now(),
                cancel: Arc::new(AtomicBool::new(false)),
                reply: mpsc::sync_channel(1).0,
            }),
            Err(PushError::Closed(_))
        ));
    }
}
