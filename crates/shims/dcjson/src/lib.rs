//! A tiny, dependency-free JSON library: a [`Json`] value tree, a
//! pretty-printer, and a recursive-descent parser. The build environment has
//! no crates.io access, so this replaces `serde_json` for the workspace's
//! modest needs (rule-catalog persistence, benchmark result emission).
//!
//! Object member order is preserved (insertion order), which keeps emitted
//! reports stable across runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers, kept as f64 (integral values render without ".0").
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/append a member (builder style).
    pub fn set(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        if let Json::Obj(members) = &mut self {
            members.push((key.into(), value.into()));
        }
        self
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation (serde_json-compatible shape).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Compact single-line rendering.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        let pad = |out: &mut String, d: usize| {
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(d));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write(out, depth + 1, pretty);
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, depth + 1, pretty);
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our payloads;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Order-insensitive structural equality helper for tests: objects compared
/// as maps.
pub fn structurally_equal(a: &Json, b: &Json) -> bool {
    match (a, b) {
        (Json::Obj(x), Json::Obj(y)) => {
            let mx: BTreeMap<_, _> = x.iter().map(|(k, v)| (k, v)).collect();
            let my: BTreeMap<_, _> = y.iter().map(|(k, v)| (k, v)).collect();
            mx.len() == my.len()
                && mx
                    .iter()
                    .all(|(k, v)| my.get(k).is_some_and(|w| structurally_equal(v, w)))
        }
        (Json::Arr(x), Json::Arr(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(v, w)| structurally_equal(v, w))
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let doc = Json::obj()
            .set("name", "dup \"rule\"")
            .set("id", 7u64)
            .set("enabled", true)
            .set("ratio", Json::Num(0.5))
            .set("tags", Json::Arr(vec![Json::from("a"), Json::Null]));
        let text = doc.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(doc, back);
        let compact = doc.compact();
        assert_eq!(parse(&compact).unwrap(), doc);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::from(42u64).compact(), "42");
        assert_eq!(Json::Num(1.5).compact(), "1.5");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("true false").is_err());
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"rules": [{"id": 0, "text": "DEFINE x\nON r"}], "next_id": 3}"#).unwrap();
        assert_eq!(v.get("next_id").and_then(Json::as_u64), Some(3));
        let rules = v.get("rules").and_then(Json::as_arr).unwrap();
        assert_eq!(
            rules[0].get("text").and_then(Json::as_str),
            Some("DEFINE x\nON r")
        );
    }
}
