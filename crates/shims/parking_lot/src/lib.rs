//! Minimal stand-in for the parts of `parking_lot` this workspace uses.
//! The build environment has no crates.io access, so the workspace points the
//! `parking_lot` dependency at this shim: thin wrappers over the std locks
//! with `parking_lot`'s no-poisoning, guard-returning API.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::RwLock`-shaped wrapper over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// `parking_lot::Mutex`-shaped wrapper over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
